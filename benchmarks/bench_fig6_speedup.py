"""Regenerates Figure 6: per-benchmark speedup over the baseline.

Paper reference: speedups range 0.98-1.28; mediabench shows the
largest improvement; mcf is 2-3x its SPECint peers; untoast is the
best mediabench benchmark.
"""

from conftest import publish, rows_data

from repro.experiments import speedup


def test_fig6_speedup_over_baseline(benchmark, smoke):
    kwargs = {"workloads_per_suite": 1} if smoke else {}
    rows = benchmark.pedantic(speedup.run, rounds=1, iterations=1,
                              kwargs=kwargs)
    assert len(rows) == (3 if smoke else 22)
    values = [row.speedup for row in rows]
    assert all(v > 0 for v in values)
    if not smoke:
        # Shape: nearly all benchmarks at or above break-even, a clear
        # win at the top, nothing catastrophically slower.
        assert min(values) > 0.90
        assert max(values) > 1.08
        averages = speedup.suite_averages(rows)
        assert all(avg > 0.97 for avg in averages.values())
    publish("fig6_speedup", speedup.format(rows), smoke,
            data={"rows": rows_data(rows)})
