"""Experiment runner: a thin in-memory cache over :mod:`repro.engine`.

All experiment modules funnel through :func:`run_workload`.  Lookups
go memory -> artifact store -> compute:

* the **in-memory caches** memoize traces and stats for the life of
  the process (one emulation per workload/scale, one simulation per
  workload/scale/machine configuration), keyed by the configs'
  explicit :meth:`~repro.uarch.config.MachineConfig.cache_key` so
  identity never depends on interpreter-local ``__hash__``;
* the optional **persistent store** (:func:`configure` with a
  directory, or ``repro --store DIR``) makes results survive across
  processes, so re-running a figure after a sweep costs nothing;
* :func:`prewarm` hands a whole grid to the engine's process pool
  (``--jobs N``) and back-fills the in-memory cache, so experiment
  modules keep their simple serial loops but fan the actual work out
  across cores.
"""

from __future__ import annotations

import atexit
import math
import shutil
import tempfile
from dataclasses import dataclass

from ..engine.backend import BACKEND_NAMES, ExecutionBackend
from ..engine.campaign import SweepPoint
from ..engine.pool import resolve_jobs, run_sweep, run_trace_prewarm
from ..engine.segments import SegmentPolicy
from ..engine.store import ArtifactStore
from ..functional.emulator import PackedTrace
from ..uarch.config import MachineConfig
from ..uarch.pipeline import simulate_trace
from ..uarch.stats import PipelineStats
from ..workloads import ALL_WORKLOADS, build_trace, get_workload

_trace_cache: dict[tuple[str, int], PackedTrace] = {}
#: keyed (workload, scale, config cache_key, segment-policy token) —
#: the last element keeps monolithic and each segmented flavour's
#: results distinct (their cycle counts legitimately differ, and a
#: sampled run's are estimates).
_stats_cache: dict[tuple[str, int, str, str], PipelineStats] = {}
_store: ArtifactStore | None = None
_default_jobs: int = 1
_segment_policy: SegmentPolicy | None = None
_scratch_store: ArtifactStore | None = None
_backend: ExecutionBackend | str | None = None


def _policy_token() -> str:
    """The stats-cache key element for the active segment policy."""
    return _segment_policy.token() if _segment_policy is not None else ""


def _fans_out(jobs: int) -> bool:
    """Whether a prewarm would reach more than one execution slot.

    Prewarming only pays off when work actually fans out; otherwise
    the lazy serial path costs less.  With no configured backend (or
    an explicit inline one) that is the classic ``jobs > 1`` test; a
    configured pool fans out by construction, and a live backend
    instance knows its own parallelism.
    """
    if _backend is None or _backend == "inline":
        return jobs > 1
    if isinstance(_backend, str):
        return True
    return _backend.parallelism > 1


def _prewarm_store_dir() -> str:
    """Where parallel prewarms exchange artifacts with their workers.

    The configured store when there is one; otherwise a process-lifetime
    scratch store, so consecutive prewarms (e.g. ``repro --jobs N all``)
    emulate each oracle trace once instead of once per experiment.
    """
    global _scratch_store
    if _store is not None:
        return str(_store.root)
    if _scratch_store is None:
        scratch_dir = tempfile.mkdtemp(prefix="repro-scratch-")
        atexit.register(shutil.rmtree, scratch_dir, ignore_errors=True)
        _scratch_store = ArtifactStore(scratch_dir)
    return str(_scratch_store.root)


def configure(store_dir: str | None = None,
              jobs: int | None = None,
              segment_insns: int | None = None,
              segment_policy: SegmentPolicy | dict | int | None = None,
              backend: ExecutionBackend | str | None = None
              ) -> None:
    """Set the process-wide artifact store and default parallelism.

    ``store_dir=None`` leaves the store untouched; ``jobs=None``
    leaves the default job count untouched; ``segment_policy`` turns
    on segmented simulation under a :class:`SegmentPolicy` (fixed /
    adaptive / sampled — see :mod:`repro.engine.segments`).
    ``segment_insns`` is the deprecated fixed-mode spelling of the
    same thing.  ``backend`` pins the execution backend every engine
    call routes through: ``"inline"``/``"pool"`` by name, or a live
    :class:`~repro.engine.backend.ExecutionBackend` instance (the only
    way to attach socket workers — a ``"workers"`` string has no lease
    server behind it).  The CLI calls this once from its global
    ``--store`` / ``--jobs`` / ``--backend`` / segmentation options.
    """
    global _store, _default_jobs, _segment_policy, _backend
    if store_dir is not None:
        _store = ArtifactStore(store_dir)
    if jobs is not None:
        _default_jobs = resolve_jobs(jobs)
    if segment_policy is not None and segment_insns is not None:
        raise ValueError("give either segment_policy or the deprecated "
                         "segment_insns, not both")
    if segment_policy is None:
        segment_policy = segment_insns
    if segment_policy is not None:
        _segment_policy = SegmentPolicy.coerce(segment_policy)
    if backend is not None:
        if isinstance(backend, str):
            if backend not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of "
                    f"{', '.join(BACKEND_NAMES)}")
            if backend == "workers":
                raise ValueError(
                    "the workers backend needs a live lease server; "
                    "configure() with a SocketWorkerBackend instance "
                    "(the CLI's --backend workers does this)")
        _backend = backend


def active_store() -> ArtifactStore | None:
    """The configured artifact store, if any."""
    return _store


def default_jobs() -> int:
    """The configured default worker count (1 = serial)."""
    return _default_jobs


def default_segment_policy() -> SegmentPolicy | None:
    """The configured segment policy (None = monolithic simulation)."""
    return _segment_policy


def default_backend() -> ExecutionBackend | str | None:
    """The configured execution backend (None = auto-pick from jobs)."""
    return _backend


def default_segment_insns() -> int | None:
    """Deprecated: the configured fixed segment size, if any.

    Kept for callers predating :class:`SegmentPolicy`; adaptive-mode
    policies have no fixed size and report ``None`` here.
    """
    return (_segment_policy.segment_insns
            if _segment_policy is not None else None)


def clear_caches(*, detach_store: bool = False) -> None:
    """Drop all memoized traces and simulation results.

    ``detach_store=True`` additionally forgets the configured store,
    the scratch store, the default job count, the segment policy, and
    the configured backend (the backend is *detached*, not closed —
    whoever constructed it owns its lifetime; the scratch directory
    itself is removed at process exit).
    """
    global _store, _scratch_store, _default_jobs, _segment_policy, \
        _backend
    _trace_cache.clear()
    _stats_cache.clear()
    if detach_store:
        _store = None
        _scratch_store = None
        _default_jobs = 1
        _segment_policy = None
        _backend = None


def get_trace(name: str, scale: int = 1) -> PackedTrace:
    """The oracle trace for a workload (memory -> store -> emulate)."""
    # Canonicalize abbreviations and default-equivalent synth
    # spellings: cache and store keys must name one program one way.
    name = get_workload(name).name
    key = (name, scale)
    trace = _trace_cache.get(key)
    if trace is None and _store is not None:
        trace = _store.load_trace(name, scale)
    if trace is None and _scratch_store is not None:
        trace = _scratch_store.load_trace(name, scale)
    if trace is None:
        trace = build_trace(name, scale).trace
        if _store is not None:
            _store.save_trace(name, scale, trace)
    _trace_cache[key] = trace
    return trace


def run_workload(name: str, config: MachineConfig,
                 scale: int = 1) -> PipelineStats:
    """Simulate one workload on one machine configuration (cached).

    With a configured segment policy the simulation runs segmented
    (per-segment artifacts land in the store, merged stats are
    returned — sampled-mode policies return *estimates*); otherwise
    monolithically.
    """
    name = get_workload(name).name
    key = (name, scale, config.cache_key(), _policy_token())
    stats = _stats_cache.get(key)
    if stats is not None:
        return stats
    if _segment_policy is not None:
        from ..engine.segments import simulate_workload_segmented
        if _store is None:
            _prewarm_store_dir()  # materializes the scratch store
        store = _store if _store is not None else _scratch_store
        stats = simulate_workload_segmented(name, config, scale,
                                            _segment_policy, store=store)
    else:
        if _store is not None:
            stats = _store.load_stats(name, scale, config)
        if stats is None:
            stats = simulate_trace(get_trace(name, scale), config)
            if _store is not None:
                _store.save_stats(name, scale, config, stats)
    _stats_cache[key] = stats
    return stats


def prewarm(names: list[str], configs: list[MachineConfig],
            scale: int = 1, jobs: int | None = None) -> dict | None:
    """Fan a (workload x config) grid out to worker processes.

    Runs every not-yet-cached point through the engine's process pool
    and back-fills the in-memory stats cache, so subsequent
    :func:`run_workload` calls for the grid are pure lookups.  A no-op
    (returns ``None``) when the effective job count is 1 — the lazy
    serial path handles that case with no pool overhead.  Returns the
    sweep counters otherwise.
    """
    jobs = _default_jobs if jobs is None else resolve_jobs(jobs)
    if not _fans_out(jobs):
        return None
    token = _policy_token()
    unique_configs: dict[str, MachineConfig] = {}
    for config in configs:
        unique_configs.setdefault(config.cache_key(), config)
    points = [
        SweepPoint(workload=name, scale=scale, variant=key, config=config)
        for name in dict.fromkeys(names)
        for key, config in unique_configs.items()
        if (name, scale, key, token) not in _stats_cache
    ]
    if not points:
        return None
    result = run_sweep(points, jobs=jobs, store_dir=_prewarm_store_dir(),
                       segment_policy=_segment_policy, backend=_backend)
    for point_result in result.results:
        point = point_result.point
        _stats_cache[(point.workload, point.scale, point.variant,
                      token)] = point_result.stats
    return result.counters


def prewarm_traces(names: list[str], scale: int = 1,
                   jobs: int | None = None) -> dict | None:
    """Emulate missing oracle traces in parallel into a store.

    Workers hand traces back through the configured store (or the
    process-lifetime scratch store), where :func:`get_trace` picks
    them up as unpickles instead of emulations.  A no-op with one job.
    """
    jobs = _default_jobs if jobs is None else resolve_jobs(jobs)
    if not _fans_out(jobs):
        return None
    pairs = [(name, scale) for name in dict.fromkeys(names)
             if (name, scale) not in _trace_cache]
    if not pairs:
        return None
    return run_trace_prewarm(pairs, jobs=jobs,
                             store_dir=_prewarm_store_dir(),
                             backend=_backend)


def speedup(name: str, baseline: MachineConfig, variant: MachineConfig,
            scale: int = 1) -> float:
    """Cycle-count speedup of *variant* over *baseline* for a workload.

    Degenerate zero-cycle runs (an empty program retires nothing, so
    both machines take zero cycles) count as speedup 1.0 instead of
    dividing by zero; adversarial synthetic programs surface exactly
    this case.
    """
    base = run_workload(name, baseline, scale)
    opt = run_workload(name, variant, scale)
    if opt.cycles == 0:
        return 1.0 if base.cycles == 0 else math.inf
    return base.cycles / opt.cycles


def geomean(values: list[float], floor: float | None = None) -> float:
    """Geometric mean (the conventional speedup aggregate).

    Raises a descriptive :class:`ValueError` for the two inputs the
    formula cannot handle (instead of a bare ``ZeroDivisionError`` /
    "math domain error"): an empty list and non-positive values.

    ``floor`` opts into clamping instead of raising: every value below
    it (including zero-IPC degenerate points from adversarial
    synthetic workloads) is replaced by ``floor``, so one empty
    program drags an aggregate toward the floor without poisoning it
    into an exception or a hard zero.
    """
    if not values:
        raise ValueError("geomean() requires at least one value")
    if floor is not None:
        if floor <= 0:
            raise ValueError(f"geomean() floor must be > 0, got {floor}")
        values = [max(v, floor) for v in values]
    bad = [v for v in values if v <= 0]
    if bad:
        raise ValueError(f"geomean() requires strictly positive values; "
                         f"got {bad}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def suite_lists(workloads_per_suite: int | None = None) -> dict[str, list]:
    """Per-suite workload lists honouring the ``--per-suite`` bound.

    The shared prelude of every per-suite figure: all suites' workload
    objects, each list optionally truncated to the first N entries.
    """
    from ..workloads import SUITES, suite_workloads
    lists = {suite: suite_workloads(suite) for suite in SUITES}
    if workloads_per_suite is not None:
        lists = {suite: wl[:workloads_per_suite]
                 for suite, wl in lists.items()}
    return lists


def prewarm_suites(configs: list[MachineConfig], scale: int = 1,
                   jobs: int | None = None,
                   workloads_per_suite: int | None = None
                   ) -> dict[str, list]:
    """Prewarm a per-suite figure's whole grid; returns its suite lists.

    The common opening move of every sensitivity figure: fan the
    (suite workloads x configs) grid out to workers, then iterate the
    returned lists serially against the warm cache.
    """
    lists = suite_lists(workloads_per_suite)
    prewarm([w.name for wl in lists.values() for w in wl],
            configs, scale, jobs)
    return lists


def workload_names(suite: str | None = None,
                   subset: list[str] | None = None) -> list[str]:
    """Workload names, optionally filtered to a suite or explicit subset."""
    if subset is not None:
        return [get_workload(n).name for n in subset]
    names = [w.name for w in ALL_WORKLOADS]
    if suite is not None:
        names = [w.name for w in ALL_WORKLOADS if w.suite == suite]
    return names


@dataclass(frozen=True)
class SuiteAverages:
    """Per-suite aggregate of one metric across its workloads."""

    suite: str
    workloads: tuple[str, ...]
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def geomean(self) -> float:
        return geomean(list(self.values))
