"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import (AssemblerError, DATA_BASE, Imm, Opcode, Reg,
                       TEXT_BASE, assemble)


def first(source: str):
    return assemble(".text\n" + source).instructions[0]


class TestAluFormats:
    def test_three_operand_add(self):
        instr = first("add r3, r1, r2")
        assert instr.opcode is Opcode.ADD
        assert instr.dst == 3
        assert instr.srcs == (Reg(1), Reg(2))

    def test_immediate_second_source(self):
        instr = first("add r3, r1, 42")
        assert instr.srcs == (Reg(1), Imm(42))

    def test_hex_immediate(self):
        instr = first("and r3, r1, 0xff")
        assert instr.srcs[1] == Imm(255)

    def test_negative_immediate(self):
        instr = first("add r3, r1, -8")
        assert instr.srcs[1] == Imm(-8)

    def test_char_immediate(self):
        instr = first("mov r1, 'a'")
        assert instr.srcs[0] == Imm(ord("a"))

    def test_mov_register(self):
        instr = first("mov r1, r2")
        assert instr.opcode is Opcode.MOV
        assert instr.dst == 1
        assert instr.srcs == (Reg(2),)

    def test_lda(self):
        instr = first("lda r2, 8(r3)")
        assert instr.opcode is Opcode.LDA
        assert instr.dst == 2
        assert instr.disp == 8
        assert instr.srcs == (Reg(3),)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            first("add r1, r2")

    def test_fp_registers(self):
        instr = first("fadd f3, f1, f2")
        assert instr.dst == 32 + 3
        assert instr.srcs == (Reg(33), Reg(34))


class TestPseudoOps:
    def test_ldi(self):
        instr = first("ldi r1, 100")
        assert instr.opcode is Opcode.MOV
        assert instr.srcs == (Imm(100),)

    def test_clr(self):
        instr = first("clr r5")
        assert instr.opcode is Opcode.MOV
        assert instr.srcs == (Imm(0),)

    def test_neg(self):
        instr = first("neg r1, r2")
        assert instr.opcode is Opcode.SUB
        assert instr.srcs == (Reg(31), Reg(2))

    def test_not(self):
        instr = first("not r1, r2")
        assert instr.opcode is Opcode.XOR
        assert instr.srcs == (Reg(2), Imm(-1))


class TestMemoryFormats:
    def test_load(self):
        instr = first("ldq r1, 16(r2)")
        assert instr.opcode is Opcode.LDQ
        assert instr.dst == 1
        assert instr.disp == 16
        assert instr.srcs == (Reg(2),)

    def test_load_no_disp(self):
        instr = first("ldl r1, (r2)")
        assert instr.disp == 0

    def test_negative_disp(self):
        instr = first("ldq r1, -8(r2)")
        assert instr.disp == -8

    def test_store_operand_order(self):
        instr = first("stq r1, 8(r2)")
        assert instr.opcode is Opcode.STQ
        assert instr.dst is None
        assert instr.srcs == (Reg(1), Reg(2))  # data, base

    def test_label_displacement(self):
        program = assemble(""".data
val:    .quad 7
.text
        ldq r1, val(r31)
""")
        assert program.instructions[0].disp == DATA_BASE

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            first("ldq r1, r2")

    def test_all_sizes(self):
        for mnem, op in [("ldb", Opcode.LDB), ("ldbu", Opcode.LDBU),
                         ("ldw", Opcode.LDW), ("ldl", Opcode.LDL),
                         ("ldq", Opcode.LDQ), ("ldf", Opcode.LDF)]:
            assert first(f"{mnem} r1, 0(r2)").opcode is op


class TestControlFlow:
    def test_branch_target_resolution(self):
        program = assemble(""".text
start:  bne r1, start
""")
        instr = program.instructions[0]
        assert instr.opcode is Opcode.BNE
        assert instr.target == TEXT_BASE

    def test_forward_branch(self):
        program = assemble(""".text
        beq r1, end
        nop
end:    halt
""")
        assert program.instructions[0].target == TEXT_BASE + 8

    def test_undefined_target(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nbeq r1, nowhere\n")

    def test_jsr_default_link(self):
        program = assemble(""".text
        jsr func
func:   ret
""")
        assert program.instructions[0].dst == 26
        assert program.instructions[0].target == TEXT_BASE + 4

    def test_jsr_explicit_link(self):
        program = assemble(""".text
        jsr r5, func
func:   ret
""")
        assert program.instructions[0].dst == 5

    def test_ret_default_register(self):
        instr = first("ret")
        assert instr.srcs == (Reg(26),)

    def test_jmp_register(self):
        instr = first("jmp r7")
        assert instr.srcs == (Reg(7),)

    def test_br(self):
        program = assemble(".text\nhere: br here\n")
        assert program.instructions[0].target == TEXT_BASE


class TestLabelsAndLayout:
    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nx: nop\nx: nop\n")

    def test_label_on_own_line(self):
        program = assemble(""".text
alone:
        nop
""")
        assert program.labels["alone"] == TEXT_BASE

    def test_multiple_labels_same_address(self):
        program = assemble(".text\na: b: nop\n")
        assert program.labels["a"] == program.labels["b"] == TEXT_BASE

    def test_pc_assignment(self):
        program = assemble(".text\nnop\nnop\nnop\n")
        assert [i.pc for i in program.instructions] == [
            TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]

    def test_comments_stripped(self):
        program = assemble(".text\nnop # comment\nnop ; also\n")
        assert len(program.instructions) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError) as info:
            first("frobnicate r1, r2")
        assert "frobnicate" in str(info.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as info:
            assemble(".text\nnop\nbogus r1\n")
        assert "line 3" in str(info.value)

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nadd r1, r2, r3\n")


class TestDataDirectives:
    def test_quad_layout(self):
        program = assemble(".data\nvals: .quad 1, 2\n")
        assert program.data[DATA_BASE] == 1
        assert program.data[DATA_BASE + 8] == 2
        assert program.labels["vals"] == DATA_BASE

    def test_little_endian(self):
        program = assemble(".data\nv: .quad 0x0102030405060708\n")
        assert program.data[DATA_BASE] == 0x08
        assert program.data[DATA_BASE + 7] == 0x01

    def test_negative_quad_two_complement(self):
        program = assemble(".data\nv: .quad -1\n")
        assert all(program.data[DATA_BASE + i] == 0xFF for i in range(8))

    def test_sizes(self):
        program = assemble(".data\na: .byte 1\nb: .word 2\nc: .long 3\n")
        assert program.labels["b"] == DATA_BASE + 1
        assert program.labels["c"] == DATA_BASE + 3

    def test_space_zero_filled(self):
        program = assemble(".data\nbuf: .space 16\nafter: .quad 1\n")
        assert program.labels["after"] == DATA_BASE + 16
        assert program.data[DATA_BASE] == 0

    def test_align(self):
        program = assemble(".data\na: .byte 1\n.align 8\nb: .quad 2\n")
        assert program.labels["b"] == DATA_BASE + 8

    def test_align_non_power_of_two_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.align 3\n")

    def test_double_directive(self):
        import struct
        program = assemble(".data\nd: .double 1.5\n")
        raw = bytes(program.data[DATA_BASE + i] for i in range(8))
        assert struct.unpack("<d", raw)[0] == 1.5

    def test_backward_label_reference_in_data(self):
        program = assemble(""".data
first:  .quad 7
ptr:    .quad first
""")
        base = program.labels["ptr"]
        value = sum(program.data[base + i] << (8 * i) for i in range(8))
        assert value == program.labels["first"]

    def test_label_as_immediate_in_text(self):
        program = assemble(""".data
arr:    .quad 0
.text
        ldi r1, arr
""")
        assert program.instructions[0].srcs == (Imm(DATA_BASE),)

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.bogus 1\n")

    def test_directive_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n.quad 1\n")


class TestProgramContainer:
    def test_pc_index_roundtrip(self):
        program = assemble(".text\nnop\nnop\n")
        for index in range(2):
            pc = program.index_to_pc(index)
            assert program.pc_to_index(pc) == index

    def test_at_fetches_instruction(self):
        program = assemble(".text\nnop\nhalt\n")
        assert program.at(TEXT_BASE + 4).opcode is Opcode.HALT

    def test_pc_outside_text_rejected(self):
        program = assemble(".text\nnop\n")
        with pytest.raises(IndexError):
            program.at(TEXT_BASE + 400)
        with pytest.raises(IndexError):
            program.at(TEXT_BASE + 2)  # misaligned

    def test_label_address_unknown(self):
        program = assemble(".text\nnop\n")
        with pytest.raises(KeyError):
            program.label_address("missing")

    def test_validate_accepts_text_targets(self):
        program = assemble(".text\nloop: sub r1, r1, 1\n"
                           "bne r1, loop\nhalt\n")
        program.validate()  # no exception

    def test_validate_rejects_branch_into_data(self):
        # 'arr' resolves to a data-segment address; branching there is
        # a generator bug that must be named at build time.
        program = assemble(".data\narr: .quad 1\n.text\n"
                           "beq r1, arr\nhalt\n")
        with pytest.raises(ValueError, match="outside the text"):
            program.validate()
