"""End-to-end checks that headline paper results reproduce.

Uses one representative workload per suite (the two the paper itself
analyses in Section 5.2, plus a stencil) so the whole module stays
fast; the full 22-benchmark sweep lives in the benchmark harness.
"""

import pytest

from repro.experiments.runner import run_workload
from repro.uarch import default_config

BASE = default_config()
OPT = BASE.with_optimizer()


@pytest.fixture(scope="module")
def mcf():
    return run_workload("mcf", BASE), run_workload("mcf", OPT)


@pytest.fixture(scope="module")
def untoast():
    return run_workload("untoast", BASE), run_workload("untoast", OPT)


@pytest.fixture(scope="module")
def applu():
    return run_workload("applu", BASE), run_workload("applu", OPT)


class TestSpeedupBand:
    """Figure 6: speedups between 0.98 and 1.28."""

    def test_mcf_speedup_in_band(self, mcf):
        base, opt = mcf
        assert 0.98 < base.cycles / opt.cycles < 1.30

    def test_untoast_speedup_in_band(self, untoast):
        base, opt = untoast
        assert 0.98 < base.cycles / opt.cycles < 1.30

    def test_applu_speedup_in_band(self, applu):
        base, opt = applu
        assert 0.98 < base.cycles / opt.cycles < 1.30


class TestTable3Shape:
    """Table 3: each effect present at a meaningful level."""

    def test_early_execution_substantial(self, mcf):
        _, opt = mcf
        # Paper: roughly one in four instructions executes early.
        assert opt.frac_early_executed > 0.15

    def test_mispredict_recovery_nonzero(self, mcf):
        _, opt = mcf
        assert opt.mispredicts_recovered_early > 0

    def test_address_generation_majority_applu(self, applu):
        _, opt = applu
        # SPECfp address generation: paper reports 71.2%.
        assert opt.frac_mem_addr_gen > 0.5

    def test_loads_removed_applu(self, applu):
        _, opt = applu
        # SPECfp RLE/SF: paper reports 21.7%.
        assert opt.frac_loads_removed > 0.10


class TestSection52Narratives:
    def test_mcf_quicksort_uses_the_mbc(self, mcf):
        _, opt = mcf
        assert opt.mbc_hits > 0
        assert opt.loads_removed > 0

    def test_untoast_depth3_unlocks_filter_arrays(self):
        # Figure 10's mediabench finding, on the paper's own example.
        shallow = run_workload("untoast", OPT)
        deep = run_workload("untoast", BASE.with_optimizer(add_depth=3))
        assert deep.frac_loads_removed > shallow.frac_loads_removed
        assert deep.cycles < shallow.cycles

    def test_machine_invariants_hold(self, mcf, untoast, applu):
        for base, opt in (mcf, untoast, applu):
            assert base.retired == opt.retired
            assert opt.early_executed <= opt.retired
            assert opt.loads_removed <= opt.loads
            assert opt.mem_addr_known <= opt.mem_ops
            assert (opt.mispredicts_recovered_early
                    <= opt.total_mispredicts)
