"""Tests for the seeded synthetic workload generator (``synth`` suite).

Covers the spec/name round-trip, registry integration (lookup, suite
roster, sweeps), determinism of generation and emulation, per-family
program character, and the stable content key.
"""

import pytest

from repro.engine.campaign import Campaign
from repro.engine.pool import run_sweep
from repro.engine.search import resolve_search_workloads
from repro.isa.opcodes import OpClass
from repro.workloads import (ALL_SUITES, ALL_WORKLOADS, SUITES,
                             build_program, build_trace, get_workload,
                             suite_workloads)
from repro.workloads.synth import (DEFAULT_ROSTER, FAMILIES,
                                   SMALL_PARAMS, SynthSpec, fuzz_specs,
                                   parse_name)


class TestSpec:
    def test_roundtrip_canonical_name(self):
        spec = SynthSpec.make("mixed", seed=7,
                              params={"mem": 40, "branch": 20})
        assert spec.name == "synth:mixed@seed=7,branch=20,mem=40"
        assert parse_name(spec.name) == spec

    def test_defaults_collapse_out_of_the_name(self):
        explicit = parse_name("synth:ilp@seed=3,chains=6,iters=300")
        assert explicit.name == "synth:ilp@seed=3"
        assert explicit == SynthSpec.make("ilp", seed=3)

    def test_missing_seed_defaults_to_zero(self):
        assert parse_name("synth:stream").seed == 0
        assert parse_name("synth:stream").name == "synth:stream@seed=0"

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            parse_name("synth:quantum@seed=0")
        with pytest.raises(KeyError):
            SynthSpec.make("quantum")

    def test_unknown_and_malformed_params_rejected(self):
        with pytest.raises(KeyError):
            parse_name("synth:ilp@seed=0,warp=9")
        with pytest.raises(KeyError):
            parse_name("synth:ilp@seed=zz")
        with pytest.raises(ValueError):
            SynthSpec.make("ilp", params={"iters": -1})

    def test_cache_key_stable_per_identity(self):
        a = SynthSpec.make("mixed", seed=1, params={"mem": 40})
        b = parse_name("synth:mixed@seed=1,mem=40")
        c = SynthSpec.make("mixed", seed=2, params={"mem": 40})
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            SynthSpec.make("ilp").source(0)


class TestRegistry:
    def test_paper_registry_unchanged(self):
        assert len(ALL_WORKLOADS) == 22
        assert SUITES == ("SPECint", "SPECfp", "mediabench")
        assert ALL_SUITES == SUITES + ("synth",)

    def test_get_workload_resolves_synth_names(self):
        workload = get_workload("synth:ptrchase@seed=5")
        assert workload.suite == "synth"
        assert workload.name == "synth:ptrchase@seed=5"

    def test_synth_suite_is_the_default_roster(self):
        roster = suite_workloads("synth")
        assert [w.name for w in roster] == list(DEFAULT_ROSTER)
        assert len(roster) == 2 * len(FAMILIES)

    def test_unknown_names_still_rejected(self):
        with pytest.raises(KeyError):
            get_workload("doom3")
        with pytest.raises(KeyError):
            suite_workloads("SPECjbb")

    def test_search_workload_resolution(self):
        names = resolve_search_workloads(["synth:ilp@seed=0", "mcf"])
        assert names == ("synth:ilp@seed=0", "mcf")
        assert len(resolve_search_workloads(suite="synth")) \
            == len(DEFAULT_ROSTER)


class TestGeneration:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_source_is_deterministic(self, family):
        a = SynthSpec.make(family, seed=9).source()
        b = SynthSpec.make(family, seed=9).source()
        assert a == b

    @pytest.mark.parametrize("family", FAMILIES)
    def test_seeds_vary_the_program(self, family):
        a = SynthSpec.make(family, seed=0).source()
        b = SynthSpec.make(family, seed=1).source()
        assert a != b

    @pytest.mark.parametrize("family", FAMILIES)
    def test_assembles_runs_and_checksums(self, family):
        name = f"synth:{family}@seed=0"
        result = build_trace(name)
        assert result.halted
        assert 1_000 < result.instruction_count < 200_000
        addr = build_program(name).labels["result"]
        assert result.memory.load(addr, 8, signed=False) != 0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_emulation_is_deterministic(self, family):
        name = f"synth:{family}@seed=4"
        assert build_trace(name).trace == build_trace(name).trace

    @pytest.mark.parametrize("family", FAMILIES)
    def test_scale_grows_instruction_count(self, family):
        name = f"synth:{family}@seed=0"
        assert (build_trace(name, scale=2).instruction_count
                > build_trace(name, scale=1).instruction_count)

    def test_small_params_shrink_every_family(self):
        for family in FAMILIES:
            assert family in SMALL_PARAMS
            full = build_trace(f"synth:{family}@seed=0")
            small_spec = SynthSpec.make(family, seed=0,
                                        params=SMALL_PARAMS[family])
            small = build_trace(small_spec.name)
            assert small.instruction_count < full.instruction_count / 3

    def test_fuzz_specs_grid(self):
        specs = fuzz_specs(range(0, 3), families=("ilp", "mixed"))
        assert len(specs) == 6
        assert {s.family for s in specs} == {"ilp", "mixed"}
        small = fuzz_specs(range(1), families=("ilp",), small=True)
        assert small[0].param_dict["iters"] \
            == SMALL_PARAMS["ilp"]["iters"]


class TestProgramCharacter:
    """Each family must exhibit the behaviour its name promises."""

    def _mix(self, name):
        trace = build_trace(name).trace
        counts = {"mem": 0, "branch": 0, "mul": 0, "total": len(trace)}
        for entry in trace:
            spec = entry.instr.spec
            if spec.is_load or spec.is_store:
                counts["mem"] += 1
            if spec.is_branch or spec.is_jump:
                counts["branch"] += 1
            if spec.op_class is OpClass.INT_COMPLEX:
                counts["mul"] += 1
        return counts

    def test_ptrchase_is_load_dependent(self):
        mix = self._mix("synth:ptrchase@seed=0")
        assert mix["mem"] / mix["total"] > 0.15

    def test_stream_is_memory_heavy(self):
        mix = self._mix("synth:stream@seed=0")
        assert mix["mem"] / mix["total"] > 0.20

    def test_branchy_is_branch_heavy(self):
        mix = self._mix("synth:branchy@seed=0")
        assert mix["branch"] / mix["total"] > 0.15

    def test_ilp_is_alu_dominated(self):
        mix = self._mix("synth:ilp@seed=0")
        assert mix["mem"] / mix["total"] < 0.05
        assert mix["branch"] / mix["total"] < 0.10

    def test_mixed_ratios_steer_the_mix(self):
        memory_heavy = self._mix("synth:mixed@seed=0,mem=50,branch=5")
        branch_heavy = self._mix("synth:mixed@seed=0,mem=5,branch=40")
        assert memory_heavy["mem"] / memory_heavy["total"] \
            > branch_heavy["mem"] / branch_heavy["total"]
        assert branch_heavy["branch"] / branch_heavy["total"] \
            > memory_heavy["branch"] / memory_heavy["total"]

    def test_mixed_ratio_overflow_rejected_at_parse_time(self):
        # The invalid spec must die when the *name* is parsed (so the
        # CLI's usage-error path engages), not deep inside generation
        # or a sweep worker.
        with pytest.raises(ValueError, match="<= 100%"):
            parse_name("synth:mixed@seed=0,mem=60,branch=50")
        with pytest.raises(ValueError, match="<= 100%"):
            get_workload("synth:mixed@seed=1,mem=101")
        # just at the boundary is fine
        assert parse_name("synth:mixed@seed=0,mem=60,branch=30")

    def test_branchy_iters_zero_is_the_empty_program(self):
        result = build_trace("synth:branchy@seed=0,iters=0")
        assert result.halted
        assert result.instruction_count == 0


class TestEngineIntegration:
    def test_sweep_over_synth_suite(self):
        campaign = Campaign.from_axes(
            suite="synth",
            axes=[("optimizer.enabled", [False, True])])
        points = campaign.points()
        assert len(points) == 2 * len(DEFAULT_ROSTER)
        subset = [p for p in points
                  if p.workload == "synth:ilp@seed=0"]
        result = run_sweep(subset, jobs=1)
        assert all(r.stats.retired > 0 for r in result.results)

    def test_sweep_cli_accepts_parameterized_names(self, capsys):
        # names with commas need the ';' list separator
        from repro.cli import main
        assert main(["sweep", "--workloads",
                     "synth:mixed@seed=0,mem=40;synth:ilp@seed=0",
                     "--quiet"]) == 0
        import json
        report = json.loads(capsys.readouterr().out)
        assert {p["workload"] for p in report["points"]} \
            == {"synth:mixed@seed=0,mem=40", "synth:ilp@seed=0"}

    def test_weight_parsing_with_synth_names(self):
        from repro.cli import _parse_weights
        weights = _parse_weights(["synth:ilp@seed=0=2.5", "mcf=4"])
        assert weights == {"synth:ilp@seed=0": 2.5, "mcf": 4.0}

    def test_run_workload_canonicalizes_spellings(self):
        # Default-equivalent spellings (and abbreviations) must share
        # one cache entry / one store artifact, not duplicate work.
        from repro.experiments import runner
        from repro.uarch.config import default_config
        runner.clear_caches()
        config = default_config()
        a = runner.run_workload("synth:ilp@seed=0,chains=6", config)
        b = runner.run_workload("synth:ilp@seed=0", config)
        assert a is b
        assert runner.run_workload("untst", config) \
            is runner.run_workload("untoast", config)

    def test_store_roundtrips_synth_traces(self, tmp_path):
        from repro.engine.store import ArtifactStore
        store = ArtifactStore(tmp_path)
        trace = build_trace("synth:ilp@seed=0").trace
        store.save_trace("synth:ilp@seed=0", 1, trace)
        assert store.load_trace("synth:ilp@seed=0", 1) == trace
        assert store.load_trace("synth:ilp@seed=1", 1) is None
