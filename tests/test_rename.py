"""Unit tests for the baseline renamer and RAT."""

import pytest

from repro.functional.emulator import TraceEntry
from repro.isa import Imm, Opcode, Reg
from repro.isa.instructions import Instruction
from repro.isa.program import STACK_BASE
from repro.isa.registers import (NUM_ARCH_REGS, STACK_POINTER_REG, ZERO_REG)
from repro.uarch import ArchRAT, BaselineRenamer, DynInstr, PhysRegFile
from repro.uarch.regfile import OutOfRegisters


def make_di(instr: Instruction, seq: int = 0) -> DynInstr:
    entry = TraceEntry(seq=seq, pc=instr.pc, instr=instr, src_values=(0, 0),
                       result=0, addr=None, taken=None, next_pc=instr.pc + 4)
    return DynInstr(entry, fetch_cycle=0)


class TestArchRAT:
    def test_initial_mappings_for_all_but_zero_regs(self):
        prf = PhysRegFile(128)
        rat = ArchRAT(prf)
        mapped = [rat.lookup(a) for a in range(NUM_ARCH_REGS)]
        assert mapped.count(None) == 2  # r31 and f31
        live = [m for m in mapped if m is not None]
        assert len(set(live)) == len(live)

    def test_initial_values_ready(self):
        prf = PhysRegFile(128)
        rat = ArchRAT(prf)
        sp = rat.lookup(STACK_POINTER_REG)
        assert prf.is_ready(sp)
        assert prf.value_of(sp) == STACK_BASE
        assert prf.value_of(rat.lookup(1)) == 0

    def test_remap_returns_previous(self):
        prf = PhysRegFile(128)
        rat = ArchRAT(prf)
        old = rat.lookup(3)
        new = prf.allocate()
        assert rat.remap(3, new) == old
        assert rat.lookup(3) == new


class TestBaselineRenamer:
    def setup_method(self):
        self.prf = PhysRegFile(128)
        self.renamer = BaselineRenamer(self.prf)

    def test_rename_allocates_destination(self):
        di = make_di(Instruction(opcode=Opcode.ADD, dst=1,
                                 srcs=(Reg(2), Reg(3))))
        old = self.renamer.rat.lookup(1)
        self.renamer.rename(di, cycle=1)
        assert di.dst_preg is not None
        assert di.prev_preg == old
        assert self.renamer.rat.lookup(1) == di.dst_preg
        assert di.rename_cycle == 1

    def test_sources_take_references(self):
        di = make_di(Instruction(opcode=Opcode.ADD, dst=1,
                                 srcs=(Reg(2), Reg(3))))
        p2 = self.renamer.rat.lookup(2)
        before = self.prf.refcount(p2)
        self.renamer.rename(di, cycle=0)
        assert self.prf.refcount(p2) == before + 1
        self.renamer.on_complete(di, cycle=5)
        assert self.prf.refcount(p2) == before

    def test_zero_register_sources_skipped(self):
        di = make_di(Instruction(opcode=Opcode.ADD, dst=1,
                                 srcs=(Reg(ZERO_REG), Imm(5))))
        self.renamer.rename(di, cycle=0)
        assert di.src_pregs == ()

    def test_zero_register_destination_not_allocated(self):
        di = make_di(Instruction(opcode=Opcode.ADD, dst=ZERO_REG,
                                 srcs=(Reg(1), Reg(2))))
        free_before = self.prf.num_free
        self.renamer.rename(di, cycle=0)
        assert di.dst_preg is None
        assert self.prf.num_free == free_before

    def test_retire_releases_previous_mapping(self):
        di = make_di(Instruction(opcode=Opcode.ADD, dst=1,
                                 srcs=(Imm(1), Imm(2))))
        old = self.renamer.rat.lookup(1)
        self.renamer.rename(di, cycle=0)
        assert self.prf.is_live(old)
        self.renamer.on_retire(di)
        assert not self.prf.is_live(old)

    def test_exhaustion_raises_before_mutation(self):
        # Drain the free list.
        while self.prf.can_allocate():
            self.prf.allocate()
        di = make_di(Instruction(opcode=Opcode.ADD, dst=1,
                                 srcs=(Reg(2), Reg(3))))
        p2 = self.renamer.rat.lookup(2)
        before = self.prf.refcount(p2)
        with pytest.raises(OutOfRegisters):
            self.renamer.rename(di, cycle=0)
        assert self.prf.refcount(p2) == before  # no leaked reference

    def test_serial_renames_chain_mappings(self):
        first = make_di(Instruction(opcode=Opcode.ADD, dst=1,
                                    srcs=(Imm(1), Imm(2))), seq=0)
        second = make_di(Instruction(opcode=Opcode.ADD, dst=2,
                                     srcs=(Reg(1), Imm(3))), seq=1)
        self.renamer.rename(first, cycle=0)
        self.renamer.rename(second, cycle=0)
        assert second.src_pregs == (first.dst_preg,)

    def test_relieve_pressure_noop(self):
        assert self.renamer.relieve_pressure() is False
