"""Unit tests for the cache models and hierarchy."""

import pytest

from repro.uarch import Cache, CacheConfig, MemoryHierarchy


def small_cache(size=1024, assoc=2, line=64, latency=2):
    return Cache(CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line,
                             latency=latency))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, assoc=2, line_bytes=32,
                             latency=2)
        assert config.num_sets == 512

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=2, line_bytes=32, latency=1)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=96, assoc=1, line_bytes=32, latency=1)


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_same_line_hits(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F)  # same 64B line
        assert not cache.access(0x1040)  # next line

    def test_lru_eviction(self):
        # 2-way: three conflicting lines evict the least recent.
        cache = small_cache(size=128, assoc=2, line=64)  # 1 set
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x80)  # evicts 0x0
        assert not cache.access(0x0)

    def test_lru_refresh_on_hit(self):
        cache = small_cache(size=128, assoc=2, line=64)
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x0)  # refresh 0x0
        cache.access(0x80)  # should evict 0x40
        assert cache.access(0x0)
        assert not cache.access(0x40)

    def test_probe_does_not_fill(self):
        cache = small_cache()
        assert not cache.probe(0x1000)
        assert not cache.probe(0x1000)
        assert cache.hits == 0 and cache.misses == 0

    def test_line_address(self):
        cache = small_cache(line=64)
        assert cache.line_address(0x1234) == 0x1200

    def test_set_mapping_disjoint(self):
        cache = small_cache(size=4096, assoc=1, line=64)
        cache.access(0x0)
        cache.access(0x40)  # different set, no conflict
        assert cache.access(0x0)
        assert cache.access(0x40)


class TestHierarchy:
    def make(self):
        return MemoryHierarchy(
            il1=CacheConfig(1024, 2, 64, 1),
            dl1=CacheConfig(1024, 2, 32, 2),
            l2=CacheConfig(8192, 2, 128, 10),
            memory_latency=100)

    def test_dread_miss_costs_full_path(self):
        hierarchy = self.make()
        assert hierarchy.dread(0x5000) == 2 + 10 + 100

    def test_dread_l1_hit(self):
        hierarchy = self.make()
        hierarchy.dread(0x5000)
        assert hierarchy.dread(0x5000) == 2

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = self.make()
        hierarchy.dread(0x0)
        # Blow the (1KB) L1 while staying inside the (8KB) L2.
        for addr in range(0x1000, 0x1000 + 4096, 32):
            hierarchy.dread(addr)
        latency = hierarchy.dread(0x0)
        assert latency == 2 + 10

    def test_ifetch_separate_from_dcache(self):
        hierarchy = self.make()
        hierarchy.ifetch(0x1000)
        assert hierarchy.il1.accesses == 1
        assert hierarchy.dl1.accesses == 0

    def test_ifetch_hit_latency(self):
        hierarchy = self.make()
        hierarchy.ifetch(0x1000)
        assert hierarchy.ifetch(0x1000) == 1

    def test_write_allocates(self):
        hierarchy = self.make()
        hierarchy.dwrite(0x7000)
        assert hierarchy.dread(0x7000) == 2

    def test_l2_shared_between_i_and_d(self):
        hierarchy = self.make()
        hierarchy.ifetch(0x3000)  # fills L2 line at 0x3000
        latency = hierarchy.dread(0x3000)
        assert latency == 2 + 10  # L1D miss, L2 hit
