"""Register-pressure and pressure-relief tests for the optimizer.

The optimizer's extended register lifetimes (symbolic bases, MBC pins)
must never deadlock rename: under pressure it sheds hint state (MBC
entries, then symbolic RAT entries), which is always safe.
"""

from repro.functional import run_program
from repro.isa import assemble
from repro.uarch import PhysRegFile, optimized_config, simulate_trace
from repro.core.optimizer import OptimizingRenamer


def run_small_prf(source: str, num_pregs: int, **overrides):
    """Simulate with an artificially tiny physical register file."""
    from dataclasses import replace
    config = replace(optimized_config(**overrides), num_pregs=num_pregs)
    trace = run_program(assemble(source)).trace
    return simulate_trace(trace, config)


LOOP = """.data
arr:    .space 512
.text
        ldi r1, 60
        ldi r2, arr
loop:   ldq r3, 0(r2)
        add r4, r4, r3
        stq r4, 0(r2)
        lda r2, 8(r2)
        sub r1, r1, 1
        bne r1, loop
        halt
"""


class TestPressureRelief:
    def test_tiny_prf_completes(self):
        # 64 arch mappings + a small margin: the MBC and symbolic
        # pins must be shed rather than deadlock.
        stats = run_small_prf(LOOP, num_pregs=96)
        assert stats.retired == 362

    def test_moderate_prf_completes(self):
        stats = run_small_prf(LOOP, num_pregs=128)
        assert stats.retired == 362

    def test_pressure_recorded(self):
        stats = run_small_prf(LOOP, num_pregs=96)
        ample = run_small_prf(LOOP, num_pregs=512)
        assert stats.preg_high_water <= 96
        assert ample.cycles <= stats.cycles  # pressure can only hurt

    def test_relieve_pressure_frees_mbc_pins(self):
        config = optimized_config()
        prf = PhysRegFile(70)  # 62 initial mappings + 8 spare
        renamer = OptimizingRenamer(prf, config)
        from repro.core import symbolic
        spare = [prf.allocate() for _ in range(prf.num_free)]
        for index, preg in enumerate(spare):
            renamer.mbc.insert(0x1000 + 8 * index, 8,
                               symbolic.plain(preg), 0)
            prf.release(preg)  # only the MBC pin remains
        assert prf.num_free == 0
        assert renamer.relieve_pressure()
        assert prf.num_free > 0

    def test_relieve_pressure_false_when_nothing_to_shed(self):
        config = optimized_config()
        prf = PhysRegFile(70)
        renamer = OptimizingRenamer(prf, config)
        held = [prf.allocate() for _ in range(prf.num_free)]
        assert not renamer.relieve_pressure()
        for preg in held:
            prf.release(preg)


class TestAblationConfig:
    def test_rle_sf_can_be_disabled(self):
        source = """.data
v:      .quad 7
.text
        ldi r1, v
        ldq r2, 0(r1)
        nop
        nop
        nop
        ldq r3, 0(r1)
        halt
"""
        trace = run_program(assemble(source)).trace
        with_mbc = simulate_trace(trace, optimized_config())
        without_mbc = simulate_trace(
            trace, optimized_config(enable_rle_sf=False))
        assert with_mbc.loads_removed == 1
        assert without_mbc.loads_removed == 0
        # Address generation (CP/RA) still works without the MBC.
        assert without_mbc.mem_addr_known == 2

    def test_ablation_experiment_runs(self):
        from repro.experiments import ablation
        rows = ablation.run(workloads_per_suite=1)
        assert len(rows) == 3
        for row in rows:
            assert set(row.bars) == {label for label, _
                                     in ablation.SCENARIOS}
        assert "Ablation" in ablation.format(rows)
