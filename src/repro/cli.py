"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                 list the 22 workloads with suites
``run <workload>``       baseline-vs-optimized comparison for one kernel
``table1`` / ``table3``  regenerate the paper's tables
``fig6`` / ``fig8`` / ``fig9`` / ``fig10`` / ``fig11`` / ``fig12``
                         regenerate the paper's figures
``all``                  everything above, in order

Sensitivity figures accept ``--per-suite N`` to bound runtime (default:
all workloads; the benchmark harness uses 2).  ``--scale N`` grows the
dynamic instruction counts of every kernel.
"""

from __future__ import annotations

import argparse
import sys

from . import quick_compare
from .experiments import (depth, feedback, latency, machine_models, speedup,
                          table1, table3, vf_delay)
from .workloads import ALL_WORKLOADS

_FIGURES = {
    "fig8": machine_models,
    "fig9": feedback,
    "fig10": depth,
    "fig11": latency,
    "fig12": vf_delay,
}


def _cmd_list(_args) -> int:
    for workload in ALL_WORKLOADS:
        print(f"{workload.suite:11s}  {workload.name:13s} "
              f"({workload.abbrev})  {workload.description}")
    return 0


def _cmd_run(args) -> int:
    result = quick_compare(args.workload, scale=args.scale)
    base = result["baseline"]
    opt = result["optimized"]
    print(f"workload : {result['workload']}")
    print(f"baseline : {base.cycles} cycles (IPC {base.ipc:.3f})")
    print(f"optimized: {opt.cycles} cycles (IPC {opt.ipc:.3f})")
    print(f"speedup  : {result['speedup']:.3f}")
    print(f"early    : {result['early_executed_pct']:.1f}%   "
          f"recovered: {result['mispredicts_recovered_pct']:.1f}%   "
          f"addr-gen: {result['addr_generated_pct']:.1f}%   "
          f"lds-removed: {result['loads_removed_pct']:.1f}%")
    return 0


def _cmd_table(module):
    def run(args) -> int:
        rows = module.run(scale=args.scale)
        print(module.format(rows))
        return 0
    return run


def _cmd_figure(module):
    def run(args) -> int:
        rows = module.run(scale=args.scale,
                          workloads_per_suite=args.per_suite)
        print(module.format(rows))
        return 0
    return run


def _cmd_fig6(args) -> int:
    rows = speedup.run(scale=args.scale)
    print(speedup.format(rows))
    return 0


def _cmd_all(args) -> int:
    for handler in (_cmd_table(table1), _cmd_table(table3), _cmd_fig6,
                    *(_cmd_figure(mod) for mod in _FIGURES.values())):
        handler(args)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Continuous Optimization' (ISCA 2005)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--per-suite", type=int, default=None,
                        help="limit sensitivity figures to N workloads "
                             "per suite")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list workloads").set_defaults(
        handler=_cmd_list)
    run_parser = sub.add_parser("run", help="compare one workload")
    run_parser.add_argument("workload")
    run_parser.set_defaults(handler=_cmd_run)
    sub.add_parser("table1").set_defaults(handler=_cmd_table(table1))
    sub.add_parser("table3").set_defaults(handler=_cmd_table(table3))
    sub.add_parser("fig6").set_defaults(handler=_cmd_fig6)
    for name, module in _FIGURES.items():
        sub.add_parser(name).set_defaults(handler=_cmd_figure(module))
    sub.add_parser("all", help="every table and figure").set_defaults(
        handler=_cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
