"""Reference-counted physical register file.

The paper's optimizations extend physical-register lifetimes beyond
what R10000/21264-style free-at-overwriter-retire allocation supports:
a register may still be referenced as the *base* of a symbolic RAT
value or from a Memory Bypass Cache entry long after its architectural
name has been overwritten.  Section 3.1 therefore prescribes a
reference-counting scheme (citing Jourdan et al. [15]); this module
implements it.

Reference conventions used by the pipeline and the optimizer:

* +1 held by the architectural RAT mapping, released when the
  instruction that overwrites the mapping **retires**;
* +1 per in-flight consumer that named the register as a physical
  source, released when that consumer completes;
* +1 per symbolic RAT entry whose base names the register;
* +1 per MBC entry whose symbolic data names the register.

A register returns to the free list when its count reaches zero.
Registers carry *versions* so that delayed value feedback can detect
that a register was recycled in the meantime.
"""

from __future__ import annotations

from collections import deque


class OutOfRegisters(Exception):
    """Raised on allocation from an empty free list (callers stall)."""


class PhysRegFile:
    """Pool of reference-counted physical registers."""

    def __init__(self, num_regs: int):
        self._num_regs = num_regs
        self._refcount = [0] * num_regs
        self._version = [0] * num_regs
        self._ready = [False] * num_regs
        self._value: list[int | float | None] = [None] * num_regs
        self._free: deque[int] = deque(range(num_regs))
        self.allocation_stalls = 0
        self.high_water = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def num_regs(self) -> int:
        return self._num_regs

    def can_allocate(self, count: int = 1) -> bool:
        return len(self._free) >= count

    def allocate(self) -> int:
        """Take a register off the free list with an initial count of 1.

        The initial reference belongs to the architectural RAT mapping.
        Raises :class:`OutOfRegisters` when the free list is empty.
        """
        if not self._free:
            self.allocation_stalls += 1
            raise OutOfRegisters("physical register file exhausted")
        preg = self._free.popleft()
        self._refcount[preg] = 1
        self._ready[preg] = False
        self._value[preg] = None
        in_use = self._num_regs - len(self._free)
        if in_use > self.high_water:
            self.high_water = in_use
        return preg

    def add_ref(self, preg: int) -> None:
        """Add one reference to *preg* (must be live)."""
        if self._refcount[preg] <= 0:
            raise ValueError(f"add_ref on free register p{preg}")
        self._refcount[preg] += 1

    def release(self, preg: int) -> None:
        """Drop one reference; frees the register at zero."""
        count = self._refcount[preg] - 1
        if count < 0:
            raise ValueError(f"release of already-free register p{preg}")
        self._refcount[preg] = count
        if count == 0:
            self._version[preg] += 1
            self._ready[preg] = False
            self._value[preg] = None
            self._free.append(preg)

    def is_live(self, preg: int) -> bool:
        """True while *preg* holds at least one reference."""
        return self._refcount[preg] > 0

    def refcount(self, preg: int) -> int:
        return self._refcount[preg]

    def version(self, preg: int) -> int:
        """Current allocation version of *preg* (bumps on free)."""
        return self._version[preg]

    # ------------------------------------------------------------------
    # value/readiness tracking (writeback and early execution)
    # ------------------------------------------------------------------

    def mark_ready(self, preg: int, value: int | float | None = None) -> None:
        """Record that *preg* has been written."""
        self._ready[preg] = True
        self._value[preg] = value

    def is_ready(self, preg: int) -> bool:
        return self._ready[preg]

    def value_of(self, preg: int) -> int | float | None:
        """The written value of *preg* (None if not yet written)."""
        return self._value[preg]
