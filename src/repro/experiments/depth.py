"""Figure 10: intra-bundle dependence-depth sensitivity (Section 6.2).

Four configurations per suite, speedups over the baseline:

* ``depth 0`` — the default: only the first instruction of a chain of
  dependent additions in a rename bundle is optimized
* ``depth 1`` — up to one chained addition
* ``depth 3`` — up to three chained additions
* ``depth 3 & 1 mem`` — additionally one chained memory (MBC) query

The paper finds SPECint/SPECfp barely move while mediabench climbs
from ~1.11 to ~1.25 at depth 3, and chained memory adds nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import geomean, prewarm_suites, run_workload

SCENARIOS = (
    ("depth 0 (default)", 0, 0),
    ("depth 1", 1, 0),
    ("depth 3", 3, 0),
    ("depth 3 & 1 mem", 3, 1),
)


@dataclass(frozen=True)
class DepthRow:
    """One suite's four Figure 10 bars."""

    suite: str
    bars: dict[str, float]


def run(scale: int = 1, workloads_per_suite: int | None = None,
        jobs: int | None = None) -> list[DepthRow]:
    """Measure Figure 10 per suite."""
    base = default_config()
    lists = prewarm_suites(
        [base] + [base.with_optimizer(add_depth=a, mem_depth=m)
                  for _, a, m in SCENARIOS],
        scale, jobs, workloads_per_suite)
    rows = []
    for suite in SUITES:
        suite_list = lists[suite]
        bars = {}
        for label, add_depth, mem_depth in SCENARIOS:
            config = base.with_optimizer(add_depth=add_depth,
                                         mem_depth=mem_depth)
            values = []
            for workload in suite_list:
                baseline = run_workload(workload.name, base, scale)
                variant = run_workload(workload.name, config, scale)
                values.append(baseline.cycles / variant.cycles)
            bars[label] = geomean(values)
        rows.append(DepthRow(suite=suite, bars=bars))
    return rows


def format(rows: list[DepthRow]) -> str:
    """Render the Figure 10 bars as text."""
    labels = [label for label, _, _ in SCENARIOS]
    table_rows = [[row.suite] + [row.bars[label] for label in labels]
                  for row in rows]
    return format_table(
        "Figure 10: dependent-instruction processing depth (speedup)",
        ["suite", *labels],
        table_rows)
