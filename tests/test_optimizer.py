"""Integration tests for the continuous optimizer (optimized pipeline).

Each test builds a small program whose optimization behaviour is known
from the paper's description, runs it through the optimized machine,
and asserts the relevant effect counters.  Strict verification is on
throughout: if the optimizer ever produced a wrong value, address, or
branch direction, the run itself would raise ``VerificationError``.
"""

from repro.functional import run_program
from repro.isa import assemble
from repro.uarch import default_config, optimized_config, simulate_trace


def run_opt(source: str, **overrides):
    trace = run_program(assemble(source)).trace
    return simulate_trace(trace, optimized_config(**overrides))


def run_both(source: str, **overrides):
    trace = run_program(assemble(source)).trace
    base = simulate_trace(trace, default_config())
    opt = simulate_trace(trace, optimized_config(**overrides))
    return base, opt


class TestEarlyExecution:
    def test_constant_chain_executes_early(self):
        stats = run_opt(""".text
        ldi r1, 5
        add r2, r1, 3
        add r3, r2, 4
        halt
""")
        # ldi is a constant generator; the adds fold (subject to the
        # bundle-depth limit, at least one of them).
        assert stats.early_executed >= 2

    def test_unknown_values_not_early(self):
        stats = run_opt(""".data
v:      .quad 7
.text
        ldi r1, v
        ldq r2, 0(r1)
        ldq r3, 0(r1)
        mul r4, r2, r3
        halt
""")
        # The multiply of two loaded values cannot execute early on a
        # cold MBC... but the RLE'd second load can; the mul of two
        # symbolic values stays in the core.
        assert stats.retired == 4

    def test_jsr_link_is_early(self):
        stats = run_opt(""".text
        jsr func
        halt
func:   ret
""")
        # jsr link value is a decode-time constant; br/jsr are early.
        assert stats.early_executed >= 1

    def test_early_fraction_in_sane_range(self):
        stats = run_opt(""".text
        ldi r1, 40
loop:   sub r1, r1, 1
        bne r1, loop
        halt
""")
        assert 0.0 < stats.frac_early_executed <= 1.0


class TestEarlyBranchResolution:
    def test_constant_loop_branch_resolves_early(self):
        stats = run_opt(""".text
        ldi r1, 30
loop:   sub r1, r1, 1
        bne r1, loop
        halt
""")
        # The induction variable is a constant chain, so the loop-exit
        # mispredict is recovered at rename.
        assert stats.mispredicts_recovered_early >= 1

    def test_recovery_cheaper_than_full_penalty(self):
        # A loop whose exit branch mispredicts: the optimized machine
        # recovers at rename and must not be slower than baseline
        # despite its two extra pipeline stages.
        source = """.text
        ldi r5, 8
outer:  ldi r1, 6
inner:  sub r1, r1, 1
        bne r1, inner
        sub r5, r5, 1
        bne r5, outer
        halt
"""
        base, opt = run_both(source)
        assert opt.mispredicts_recovered_early >= 1
        assert opt.cycles <= base.cycles * 1.1

    def test_data_dependent_branch_not_recovered(self):
        stats = run_opt(""".data
v:      .quad 1
.text
        ldi r1, v
        ldq r2, 0(r1)
        beq r2, skip
        nop
skip:   halt
""")
        # The branch source comes from a cold load: unknowable at
        # rename on the first (only) encounter.
        assert stats.mispredicts_recovered_early == 0


class TestAddressGeneration:
    def test_constant_base_addresses_known(self):
        stats = run_opt(""".data
arr:    .space 64
.text
        ldi r1, arr
        ldq r2, 0(r1)
        ldq r3, 8(r1)
        stq r2, 16(r1)
        halt
""")
        assert stats.mem_ops == 3
        assert stats.mem_addr_known == 3

    def test_pointer_bump_chain_stays_known(self):
        stats = run_opt(""".data
arr:    .space 80
.text
        ldi r1, arr
        ldi r2, 10
loop:   ldq r3, 0(r1)
        lda r1, 8(r1)
        sub r2, r2, 1
        bne r2, loop
        halt
""")
        # lda keeps the base symbolically known: (arr + 8k).
        assert stats.frac_mem_addr_gen > 0.8

    def test_loaded_base_unknown(self):
        stats = run_opt(""".data
ptr:    .quad 0x200000
.text
        ldi r1, ptr
        ldq r2, 0(r1)
        ldq r3, 0(r2)
        halt
""")
        # First load's address is known; the second depends on loaded
        # data (pointer chase) and is not.
        assert stats.mem_addr_known == 1


class TestRedundantLoadElimination:
    def test_second_load_removed(self):
        stats = run_opt(""".data
v:      .quad 7
pad:    .space 8
.text
        ldi r1, v
        ldq r2, 0(r1)
        nop
        nop
        nop
        nop
        ldq r3, 0(r1)
        halt
""")
        assert stats.loads == 2
        assert stats.loads_removed == 1
        assert stats.mbc_hits == 1

    def test_rle_disabled_without_opt(self):
        stats = run_opt(""".data
v:      .quad 7
.text
        ldi r1, v
        ldq r2, 0(r1)
        nop
        nop
        ldq r3, 0(r1)
        halt
""", enable_opt=False)
        assert stats.loads_removed == 0

    def test_different_sizes_do_not_forward(self):
        stats = run_opt(""".data
v:      .quad 7
.text
        ldi r1, v
        ldq r2, 0(r1)
        nop
        nop
        ldl r3, 0(r1)
        halt
""")
        assert stats.loads_removed == 0


class TestStoreForwarding:
    def test_load_after_store_removed(self):
        stats = run_opt(""".data
buf:    .space 8
.text
        ldi r1, buf
        ldi r2, 99
        stq r2, 0(r1)
        nop
        nop
        nop
        ldq r3, 0(r1)
        halt
""")
        assert stats.loads_removed == 1

    def test_same_bundle_dependence_not_satisfied(self):
        # Section 3.2: no dependences within a rename packet are
        # satisfied by RLE/SF.  Store and load back-to-back (same
        # 4-instruction bundle) must not forward.
        stats = run_opt(""".data
buf:    .space 8
.text
        ldi r1, buf
        ldi r2, 99
        stq r2, 0(r1)
        ldq r3, 0(r1)
        halt
""")
        assert stats.loads_removed == 0

    def test_unknown_address_store_invalidates_at_execute(self):
        # The store's base is loaded (unknown at rename); the paper's
        # speculative mode invalidates matching entries at execution,
        # and any wrongly forwarded load is caught by the value check.
        stats = run_opt(""".data
buf:    .quad 5
bufp:   .quad buf
.text
        ldi r1, buf
        ldq r2, 0(r1)
        ldi r3, bufp
        ldq r4, 0(r3)
        ldi r5, 42
        nop
        nop
        nop
        stq r5, 0(r4)
        nop
        nop
        nop
        ldq r6, 0(r1)
        halt
""")
        # The run completing proves no stale value was architecturally
        # used; the final load may be recovered via misspeculation.
        assert stats.retired == 13


class TestValueFeedback:
    def test_feedback_enables_later_early_execution(self):
        # A loop counter loaded from memory: early iterations rename
        # before the (missing) load completes and fill the window; the
        # fed-back value then turns the remaining iterations into
        # optimizer work.  This is the paper's Section 2.4 narrative.
        # The loop body spans a rename bundle (as the paper's Section
        # 2.4 example does) so the counter's reassociated chain stays
        # rooted at the load's physical register across iterations.
        source = """.data
n:      .quad 400
.text
        ldi r1, n
        ldq r2, 0(r1)
loop:   add r4, r4, 2
        xor r5, r5, r4
        or  r6, r6, r5
        sub r2, r2, 1
        bne r2, loop
        halt
"""
        with_fb = run_opt(source)
        without_fb = run_opt(source, enable_feedback=False)
        assert with_fb.early_executed > without_fb.early_executed

    def test_feedback_only_mode_still_executes_early(self):
        stats = run_opt(""".data
n:      .quad 30
.text
        ldi r1, n
        ldq r2, 0(r1)
loop:   sub r2, r2, 1
        bne r2, loop
        halt
""", enable_opt=False)
        # Known values arrive from the execution units and allow some
        # early execution even with symbolic optimization off.
        assert stats.early_executed > 0


class TestOptimizerCosts:
    def test_two_extra_stages_hurt_unoptimizable_code(self):
        # Pure FP dependence chain: nothing to optimize, so the deeper
        # pipeline can only match or lose to baseline.
        source = """.text
        ldi r1, 9
        itof f1, r1
        ldi r2, 50
loop:   fmul f1, f1, f1
        fadd f1, f1, f1
        sub r2, r2, 1
        bne r2, loop
        halt
"""
        base, opt = run_both(source)
        assert opt.cycles >= base.cycles * 0.95

    def test_zero_extra_stages_closes_gap(self):
        source = """.text
        ldi r2, 50
loop:   fmul f1, f1, f1
        sub r2, r2, 1
        bne r2, loop
        halt
"""
        two_stage = run_opt(source, opt_stages=2)
        zero_stage = run_opt(source, opt_stages=0)
        assert zero_stage.cycles <= two_stage.cycles


class TestStatsPlumbing:
    def test_optimizer_counters_exported(self):
        stats = run_opt(""".text
        ldi r1, 4
        add r2, r1, 1
        halt
""")
        assert "opt_early" in stats.extra
        assert "opt_rewritten" in stats.extra
        assert stats.extra["opt_early"] == stats.early_executed

    def test_strength_reduction_counted(self):
        stats = run_opt(""".data
v:      .quad 3
.text
        ldi r1, v
        ldq r2, 0(r1)
        mul r3, r2, 8
        halt
""")
        assert stats.extra["opt_strength_reductions"] >= 1

    def test_branch_inference_counted(self):
        stats = run_opt(""".data
v:      .quad 0
.text
        ldi r1, v
        ldq r2, 0(r1)
        beq r2, zero
        nop
zero:   add r3, r2, 5
        halt
""")
        # beq taken implies r2 == 0, so the downstream add can fold.
        assert stats.extra["opt_branch_inferences"] >= 1
