"""Ablation bench: what each optimizer component buys.

Decomposes the paper's design: feedback-only (Figure 9's weak bar),
CP/RA without the MBC, CP/RA + RLE/SF, and the full optimizer with
value feedback.  The full configuration should dominate its parts.
"""

from conftest import publish, rows_data

from repro.experiments import ablation


def test_ablation_component_contributions(benchmark, smoke):
    per_suite = 1 if smoke else 2
    rows = benchmark.pedantic(ablation.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": per_suite})
    if not smoke:
        for row in rows:
            # Adding RLE/SF on top of CP/RA never hurts materially, and
            # the full system is at least competitive with every
            # ablation.
            assert (row.bars["CP/RA + RLE/SF"]
                    >= row.bars["CP/RA only"] - 0.05)
            assert row.bars["full"] >= row.bars["feedback only"] - 0.05
    publish("ablation_components", ablation.format(rows), smoke,
            data={"rows": rows_data(rows)})
