"""Differential-fuzz throughput over the synthetic workload families.

The fuzzing harness is only useful if a meaningful seed sweep fits in
developer/CI time, so this benchmark measures programs-per-second and
instructions-per-second of ``repro fuzz`` style runs (every program
costs one emulation plus four pipeline runs: optimizer on/off,
monolithic and segmented) and reports the per-family breakdown.
"""

from __future__ import annotations

import time

from conftest import publish

from repro.engine.differential import run_fuzz
from repro.workloads.synth import FAMILIES

SEEDS = range(0, 4)
SMOKE_SEEDS = range(0, 1)


def test_fuzz_throughput(benchmark, smoke):
    seeds = SMOKE_SEEDS if smoke else SEEDS

    def run():
        started = time.perf_counter()
        fuzz = run_fuzz(seeds, small=smoke)
        return fuzz, time.perf_counter() - started

    fuzz, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fuzz.ok, [p.workload for p in fuzz.failed]

    per_family: dict[str, list] = {family: [] for family in FAMILIES}
    for report in fuzz.programs:
        family = report.workload.split(":")[1].split("@")[0]
        per_family[family].append(report.instructions)
    total_insns = sum(p.instructions for p in fuzz.programs)
    lines = [
        "Differential fuzz throughput",
        f"programs: {len(fuzz.programs)}  (families x seeds "
        f"{len(FAMILIES)} x {len(seeds)})",
        f"elapsed: {elapsed:.2f} s  "
        f"({len(fuzz.programs) / elapsed:.2f} programs/s, "
        f"{total_insns / elapsed:,.0f} oracle insns/s differentially "
        f"checked)",
        "",
        f"{'family':10s} {'programs':>8s} {'insns/program':>14s}",
    ]
    for family, counts in per_family.items():
        mean = sum(counts) / len(counts) if counts else 0
        lines.append(f"{family:10s} {len(counts):8d} {mean:14.0f}")
    publish("synth_fuzz_throughput", "\n".join(lines), smoke, data={
        "programs": len(fuzz.programs), "seeds": len(seeds),
        "elapsed_seconds": round(elapsed, 4),
        "programs_per_second": round(len(fuzz.programs) / elapsed, 4),
        "insns_per_second": round(total_insns / elapsed, 1),
        "total_insns": total_insns,
        "per_family": {family: {"programs": len(counts),
                                "mean_insns": round(sum(counts)
                                                    / len(counts), 1)
                                if counts else 0}
                       for family, counts in per_family.items()},
    })
