#!/usr/bin/env python
"""Bring your own kernel: assemble custom code and sweep machines.

Shows the full public API surface a downstream user needs:

* write assembly with the documented dialect,
* assemble + emulate it,
* build machine variants (`fetch_bound`, `execution_bound`,
  optimizer knobs) from the Table 2 default,
* inspect detailed pipeline statistics.

The kernel here is a pointer-chasing hash walk — a deliberately
optimizer-hostile workload (data-dependent addresses everywhere), so
it demonstrates the honest *lower* end of the paper's speedup range.

Run:  python examples/custom_kernel.py
"""

from repro import assemble, default_config, run_program, simulate_trace

SOURCE = """
.data
table:  .space 8192          # 1024 quads
result: .quad 0
.text
        ldi   r3, 90210
        ldi   r1, 1024
        ldi   r2, table
fill:   mul   r4, r3, 1103515245
        add   r4, r4, 12345
        and   r3, r4, 0x7fffffff
        and   r5, r3, 1023
        stq   r5, 0(r2)
        lda   r2, 8(r2)
        sub   r1, r1, 1
        bne   r1, fill
        ldi   r1, 3000       # pointer-chase steps
        clr   r6             # current index
        clr   r7             # checksum
        ldi   r8, table
chase:  s8add r9, r6, r8
        ldq   r6, 0(r9)      # next index depends on loaded data
        add   r7, r7, r6
        sub   r1, r1, 1
        bne   r1, chase
        ldi   r10, result
        stq   r7, 0(r10)
        halt
"""


def main() -> None:
    program = assemble(SOURCE)
    oracle = run_program(program)
    print(f"pointer-chase kernel: {oracle.instruction_count} dynamic "
          f"instructions, checksum {oracle.int_regs[7]}")

    base_cfg = default_config()
    machines = {
        "baseline": base_cfg,
        "optimized": base_cfg.with_optimizer(),
        "fetch-bound": base_cfg.fetch_bound(),
        "fetch-bound + opt": base_cfg.fetch_bound().with_optimizer(),
        "exec-bound": base_cfg.execution_bound(),
        "exec-bound + opt": base_cfg.execution_bound().with_optimizer(),
    }
    base_cycles = None
    print(f"\n{'machine':>18}  {'cycles':>8}  {'IPC':>5}  {'vs baseline':>11}")
    for label, config in machines.items():
        stats = simulate_trace(oracle.trace, config)
        if base_cycles is None:
            base_cycles = stats.cycles
        print(f"{label:>18}  {stats.cycles:>8}  {stats.ipc:>5.2f}  "
              f"{base_cycles / stats.cycles:>11.3f}")

    opt = simulate_trace(oracle.trace, base_cfg.with_optimizer())
    print("\ndetailed optimized-machine stats:")
    for key, value in opt.summary().items():
        print(f"  {key:>24}: {value}")
    print("\nPointer chasing defeats address generation (every address")
    print("depends on loaded data), so the optimizer's gain here is small —")
    print("the honest bottom of the paper's 0.98-1.28 range.")


if __name__ == "__main__":
    main()
