"""Plain-text table formatting for experiment results.

Every experiment module produces rows (lists of cells); this module
renders them the way the paper's tables/figure captions read, so the
benchmark harness can print directly comparable output.
"""

from __future__ import annotations


def format_table(title: str, headers: list[str],
                 rows: list[list[object]]) -> str:
    """Render rows as an aligned monospace table with a title."""
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_percent(value: float) -> str:
    """0.262 -> '26.2%'."""
    return f"{100 * value:.1f}%"
