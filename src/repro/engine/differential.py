"""Differential correctness harness: emulator vs pipeline vs segments.

Every workload — hand-written or synthesized — is pushed through three
independent executions of the same program, and the harness checks
that they agree wherever the architecture says they must:

``emulator-vs-pipeline``
    The functional emulator's final architectural state (registers +
    memory) must equal the state implied by **optimizer-on** pipeline
    retirement (every retired trace entry replayed through an
    :class:`~repro.functional.emulator.ArchState`), the pipeline must
    retire exactly the trace's instructions, and the optimizer's
    strict value checking must report zero verify failures.

``optimizer-on-vs-off``
    The optimizer must be architecturally invisible: optimizer-on and
    optimizer-off runs retire identical architectural results.

``segmented-vs-monolithic``
    Splitting the trace into fixed-instruction segments and merging
    the per-segment stats must reproduce the monolithic run's exact
    counters (:data:`~repro.uarch.stats.EXACT_MERGE_FIELDS`) — for
    both optimizer settings — and threading one ``ArchState`` through
    the per-segment pipelines must land on the emulator's final state.

``repro fuzz`` drives this over seeded synthetic program families
(:mod:`repro.workloads.synth`), turning every optimizer or pipeline
change into something the test suite can falsify automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..functional.emulator import ArchState, run_program
from ..uarch.config import MachineConfig, default_config
from ..uarch.pipeline import make_pipeline
from ..uarch.stats import EXACT_MERGE_FIELDS, PipelineStats
from ..workloads import build_program, get_workload
from ..workloads.synth import FAMILIES, fuzz_specs
from .backend import WorkUnit, register_executor, resolve_backend
from .events import FindingEvent

#: Default segment length the segmented-vs-monolithic check uses.
DEFAULT_SEGMENT_INSNS = 2000

#: Emulation budget for fuzzed programs (they are small by design).
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


@dataclass(frozen=True)
class Check:
    """One named differential check with its verdict."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class ProgramReport:
    """All differential checks for one workload at one scale."""

    workload: str
    scale: int
    instructions: int = 0
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> dict:
        return {"workload": self.workload, "scale": self.scale,
                "instructions": self.instructions, "ok": self.ok,
                "checks": [{"name": c.name, "ok": c.ok,
                            **({"detail": c.detail} if c.detail else {})}
                           for c in self.checks]}


@dataclass
class FuzzReport:
    """Aggregate result of a fuzzing run over many programs."""

    programs: list[ProgramReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.programs)

    @property
    def failed(self) -> list[ProgramReport]:
        return [p for p in self.programs if not p.ok]

    def to_dict(self) -> dict:
        return {"ok": self.ok, "programs": len(self.programs),
                "failed": len(self.failed),
                "reports": [p.to_dict() for p in self.programs]}


def _diff_states(expected: dict, actual: dict) -> str:
    """A short human description of the first state divergence."""
    for index, (a, b) in enumerate(zip(expected["int_regs"],
                                       actual["int_regs"])):
        if a != b:
            return f"int reg r{index}: expected {a}, got {b}"
    for index, (a, b) in enumerate(zip(expected["fp_bits"],
                                       actual["fp_bits"])):
        if a != b:
            return f"fp reg f{index}: expected bits {a:#x}, got {b:#x}"
    if expected["memory"] != actual["memory"]:
        deltas = sorted(set(expected["memory"].items())
                        ^ set(actual["memory"].items()))
        addr = deltas[0][0]
        return (f"memory diverges at {addr:#x} "
                f"({len(deltas)} byte-level differences)")
    return ""


def _segments(trace: list, segment_insns: int) -> Iterable[list]:
    for start in range(0, len(trace), segment_insns):
        yield trace[start:start + segment_insns]


def _run_pipeline(trace, config, arch: ArchState
                  ) -> tuple[PipelineStats, str]:
    """Run one pipeline, capturing any crash as a finding.

    The optimizer's strict value checking *raises*
    (:class:`~repro.core.optimizer.VerificationError`) the moment it
    would fabricate a wrong value, and a scheduling bug surfaces as a
    :class:`~repro.uarch.pipeline.SimulationDeadlock`.  For a fuzzing
    harness both are findings to report, not reasons to abort the
    whole seed sweep.
    """
    try:
        return make_pipeline(trace, config, arch_state=arch).run(), ""
    except Exception as error:  # any crash is a differential finding
        return PipelineStats(), f"{type(error).__name__}: {error}"


def check_workload(name: str, scale: int = 1,
                   base: MachineConfig | None = None,
                   segment_insns: int = DEFAULT_SEGMENT_INSNS,
                   max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                   ) -> ProgramReport:
    """Run every differential check for one workload.

    *base* is the optimizer-off machine; the optimizer-on variant is
    derived with :meth:`MachineConfig.with_optimizer`.  Never raises
    for a disagreement — failures land in the report so a fuzzing run
    surveys everything instead of stopping at the first bad seed.
    """
    canonical = get_workload(name).name
    report = ProgramReport(workload=canonical, scale=scale)
    base = (base if base is not None else default_config()) \
        .without_optimizer()
    optimized = base.with_optimizer()
    try:
        program = build_program(canonical, scale)
        result = run_program(program, max_instructions=max_instructions)
    except Exception as error:
        # An assembly or emulation crash (a generator bug, a blown
        # instruction budget) is itself a finding — record it so the
        # sweep surveys every remaining seed instead of aborting.
        report.checks.append(Check(
            "emulation", False, f"{type(error).__name__}: {error}"))
        return report
    trace = result.trace
    report.instructions = len(trace)
    oracle = result.state_dict()

    # ---- (a) emulator vs optimizer-on pipeline retirement ------------
    states: dict[str, dict] = {}
    stats: dict[str, PipelineStats] = {}
    errors: dict[str, str] = {}
    for label, config in (("on", optimized), ("off", base)):
        arch = ArchState(program)
        stats[label], errors[label] = _run_pipeline(trace, config, arch)
        states[label] = arch.state_dict()
    problems = []
    if errors["on"]:
        problems.append(errors["on"])
    elif stats["on"].retired != len(trace):
        problems.append(f"retired {stats['on'].retired} of "
                        f"{len(trace)} trace entries")
    if stats["on"].optimizer_verify_failures:
        problems.append(f"{stats['on'].optimizer_verify_failures} "
                        f"optimizer verify failures")
    divergence = _diff_states(oracle, states["on"])
    if divergence and not errors["on"]:
        problems.append(divergence)
    report.checks.append(Check("emulator-vs-pipeline", not problems,
                               "; ".join(problems)))

    # ---- (b) optimizer on vs off architectural results ---------------
    problems = [e for e in (errors["on"], errors["off"]) if e]
    if not problems:
        if stats["off"].retired != stats["on"].retired:
            problems.append(f"retired on={stats['on'].retired} "
                            f"off={stats['off'].retired}")
        divergence = _diff_states(states["off"], states["on"])
        if divergence:
            problems.append(divergence)
    report.checks.append(Check("optimizer-on-vs-off", not problems,
                               "; ".join(problems)))

    # ---- (c) segmented vs monolithic merge ---------------------------
    problems = []
    for label, config in (("on", optimized), ("off", base)):
        if errors[label]:
            problems.append(f"[opt-{label}] monolithic run failed: "
                            f"{errors[label]}")
            continue
        arch = ArchState(program)
        partials = []
        segment_error = ""
        for segment in _segments(trace, segment_insns):
            partial, segment_error = _run_pipeline(segment, config, arch)
            if segment_error:
                problems.append(f"[opt-{label}] segment failed: "
                                f"{segment_error}")
                break
            partials.append(partial)
        if segment_error:
            continue
        merged = (PipelineStats.merge_all(partials) if partials
                  else PipelineStats())
        for field_name in EXACT_MERGE_FIELDS:
            mono = getattr(stats[label], field_name)
            seg = getattr(merged, field_name)
            if mono != seg:
                problems.append(f"[opt-{label}] {field_name}: "
                                f"monolithic {mono}, segmented {seg}")
        divergence = _diff_states(oracle, arch.state_dict())
        if divergence:
            problems.append(f"[opt-{label}] {divergence}")
    report.checks.append(Check("segmented-vs-monolithic", not problems,
                               "; ".join(problems)))
    return report


@register_executor("fuzz-check")
def _fuzz_check_unit(payload, env) -> ProgramReport:
    """One fuzzed program's full differential check (store-free)."""
    name, scale, segment_insns, max_instructions = payload
    return check_workload(name, scale=scale,
                          segment_insns=segment_insns,
                          max_instructions=max_instructions)


def run_fuzz(seeds: range, families: tuple[str, ...] = FAMILIES,
             scale: int = 1, small: bool = False,
             segment_insns: int = DEFAULT_SEGMENT_INSNS,
             progress: Callable[[FindingEvent], None] | None = None,
             jobs: int | None = 1, backend=None) -> FuzzReport:
    """Differential-check every ``(family, seed)`` synthetic program.

    ``small=True`` shrinks every family's parameters to smoke budgets
    (CI's ``fuzz-smoke`` job).  ``progress``, if given, receives one
    :class:`~repro.engine.events.FindingEvent` per checked program.

    Each program is one ``fuzz-check`` work unit; ``jobs``/``backend``
    fan them out exactly like a sweep.  Reports are absorbed into
    spec-order slots and events emitted for the completed *prefix*, so
    the report list and the event stream are identical on every
    backend.
    """
    specs = fuzz_specs(seeds, families=families, small=small)
    fuzz = FuzzReport()
    slots: list[ProgramReport | None] = [None] * len(specs)
    emitted = 0

    def _emit_ready() -> None:
        nonlocal emitted
        while emitted < len(specs) and slots[emitted] is not None:
            report = slots[emitted]
            fuzz.programs.append(report)
            emitted += 1
            if progress is not None:
                progress(FindingEvent(
                    workload=report.workload, scale=report.scale,
                    instructions=report.instructions, ok=report.ok,
                    done=emitted, total=len(specs),
                    failures=tuple(f"{c.name}: {c.detail}"
                                   for c in report.failures)))

    backend, owned = resolve_backend(backend, jobs=jobs,
                                     units=len(specs))
    try:
        group = backend.group()
        tickets: dict[int, int] = {}
        for index, spec in enumerate(specs):
            ticket = group.submit(WorkUnit(
                "fuzz-check",
                (spec.name, scale, segment_insns,
                 scale * DEFAULT_MAX_INSTRUCTIONS), phase="fuzz"))
            tickets[ticket] = index
            if backend.parallelism <= 1:
                # serial: drain per submit so findings stream one by
                # one (the inline group executed the unit eagerly)
                ticket, report = group.wait_any()
                slots[tickets.pop(ticket)] = report
                _emit_ready()
        while group.pending:
            ticket, report = group.wait_any()
            slots[tickets.pop(ticket)] = report
            _emit_ready()
    finally:
        if owned:
            backend.close()
    return fuzz


def format_report(fuzz: FuzzReport) -> str:
    """Human-readable fuzz summary (one line per failing program)."""
    lines = [f"fuzz: {len(fuzz.programs)} programs, "
             f"{len(fuzz.failed)} failed"]
    for program in fuzz.failed:
        for check in program.failures:
            lines.append(f"  FAIL {program.workload}@{program.scale} "
                         f"{check.name}: {check.detail}")
    if fuzz.ok and fuzz.programs:
        lines.append("  all differential checks passed "
                     "(emulator vs pipeline, optimizer on/off, "
                     "segmented vs monolithic)")
    return "\n".join(lines)
