"""Register rename: the RAT and the baseline renamer.

The baseline machine renames architectural to physical registers with
no optimization — this is the machine the paper's speedups are measured
against.  The continuous optimizer
(:class:`repro.core.optimizer.OptimizingRenamer`) plugs into the same
:class:`Renamer` interface so the pipeline is agnostic to which one is
installed.
"""

from __future__ import annotations

from ..isa.program import STACK_BASE
from ..isa.registers import (NUM_ARCH_REGS, STACK_POINTER_REG, is_fp_reg,
                             is_zero_reg)
from .dyninstr import DynInstr
from .regfile import OutOfRegisters, PhysRegFile
from .stats import PipelineStats


class Renamer:
    """Interface the pipeline drives each cycle.

    Implementations fill in the rename-related fields of each
    :class:`DynInstr` (``src_pregs``, ``dst_preg``, ``prev_preg`` and —
    for the optimizer — the ``early``/``removed_load``/``addr_known``
    flags) and manage physical-register references.
    """

    def begin_bundle(self, cycle: int) -> None:
        """Called once per cycle before the first rename of the cycle."""

    def rename(self, di: DynInstr, cycle: int) -> None:
        """Rename one instruction (may raise ``OutOfRegisters``)."""
        raise NotImplementedError

    def on_complete(self, di: DynInstr, cycle: int) -> None:
        """Called when *di* finishes execution (writeback)."""
        raise NotImplementedError

    def on_retire(self, di: DynInstr) -> None:
        """Called when *di* retires."""
        raise NotImplementedError

    def on_store_executed(self, di: DynInstr) -> None:
        """Called when a store's address is definitively known."""

    def relieve_pressure(self) -> bool:
        """Drop droppable state to free a physical register, if possible."""
        return False

    def collect_stats(self, stats: PipelineStats) -> None:
        """Contribute implementation-specific counters to *stats*."""


class ArchRAT:
    """Architectural-to-physical register mapping for all 64 registers."""

    def __init__(self, prf: PhysRegFile):
        self._prf = prf
        self._map: list[int | None] = [None] * NUM_ARCH_REGS
        for arch in range(NUM_ARCH_REGS):
            if is_zero_reg(arch):
                continue
            preg = prf.allocate()
            value: int | float
            if is_fp_reg(arch):
                value = 0.0
            elif arch == STACK_POINTER_REG:
                value = STACK_BASE
            else:
                value = 0
            prf.mark_ready(preg, value)
            self._map[arch] = preg

    def lookup(self, arch: int) -> int | None:
        """Current physical mapping of *arch* (None for zero registers)."""
        return self._map[arch]

    def remap(self, arch: int, preg: int) -> int:
        """Point *arch* at *preg*; returns the previous mapping."""
        previous = self._map[arch]
        self._map[arch] = preg
        return previous


class BaselineRenamer(Renamer):
    """Plain rename with R10000-style free-at-overwriter-retire."""

    def __init__(self, prf: PhysRegFile):
        self._prf = prf
        self.rat = ArchRAT(prf)

    def rename(self, di: DynInstr, cycle: int) -> None:
        prf = self._prf
        instr = di.instr
        if instr.dst is not None and not is_zero_reg(instr.dst):
            # Check capacity before taking any references so a failed
            # rename leaves no state behind.
            if not prf.can_allocate():
                raise OutOfRegisters("no free physical registers")
        src_pregs = []
        for arch in di.reg_srcs:
            preg = self.rat.lookup(arch)
            if preg is None:
                continue  # zero register: always-ready constant
            prf.add_ref(preg)
            src_pregs.append(preg)
        di.src_pregs = tuple(src_pregs)
        if instr.dst is not None and not is_zero_reg(instr.dst):
            new_preg = prf.allocate()
            di.prev_preg = self.rat.remap(instr.dst, new_preg)
            di.dst_preg = new_preg
        di.rename_cycle = cycle

    def on_complete(self, di: DynInstr, cycle: int) -> None:
        for preg in di.src_pregs:
            self._prf.release(preg)

    def on_retire(self, di: DynInstr) -> None:
        if di.prev_preg is not None:
            self._prf.release(di.prev_preg)
