"""Regenerates Figure 9: value feedback alone vs. feedback + opt.

Paper reference: feedback alone offers little (bars near 1.0);
optimization projects old values into the future and dominates.
"""

from conftest import publish, rows_data

from repro.experiments import feedback


def test_fig9_feedback_vs_optimization(benchmark, smoke):
    per_suite = 1 if smoke else 2
    rows = benchmark.pedantic(feedback.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": per_suite})
    if not smoke:
        for row in rows:
            assert row.feedback_plus_opt >= row.feedback_only - 0.05
    publish("fig9_feedback", feedback.format(rows), smoke,
            data={"rows": rows_data(rows)})
