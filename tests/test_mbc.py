"""Unit tests for the Memory Bypass Cache (RLE/SF table)."""

import pytest

from repro.core import symbolic
from repro.core.mbc import MemoryBypassCache
from repro.uarch import PhysRegFile


@pytest.fixture
def prf():
    return PhysRegFile(64)


@pytest.fixture
def mbc(prf):
    return MemoryBypassCache(capacity=4, prf=prf)


def alloc(prf):
    return prf.allocate()


class TestLookupInsert:
    def test_miss_on_empty(self, mbc):
        assert mbc.lookup(0x1000, 8) is None
        assert mbc.misses == 1

    def test_exact_match_hit(self, mbc, prf):
        preg = alloc(prf)
        mbc.insert(0x1000, 8, symbolic.plain(preg), expected_value=7)
        entry = mbc.lookup(0x1000, 8)
        assert entry is not None
        assert entry.sym == symbolic.plain(preg)
        assert entry.expected_value == 7
        assert mbc.hits == 1

    def test_size_is_part_of_tag(self, mbc, prf):
        mbc.insert(0x1000, 8, symbolic.plain(alloc(prf)), 0)
        assert mbc.lookup(0x1000, 4) is None

    def test_offset_within_block_is_part_of_tag(self, mbc, prf):
        # Paper: tag match includes offset from 8-byte alignment.
        mbc.insert(0x1000, 4, symbolic.plain(alloc(prf)), 0)
        assert mbc.lookup(0x1004, 4) is None
        assert mbc.lookup(0x1000, 4) is not None

    def test_insert_pins_base_register(self, mbc, prf):
        preg = alloc(prf)
        assert prf.refcount(preg) == 1
        mbc.insert(0x1000, 8, symbolic.plain(preg), 0)
        assert prf.refcount(preg) == 2

    def test_const_entry_pins_nothing(self, mbc, prf):
        before = prf.num_free
        mbc.insert(0x1000, 8, symbolic.const(5), 5)
        assert prf.num_free == before

    def test_replacement_releases_old_pin(self, mbc, prf):
        old = alloc(prf)
        new = alloc(prf)
        mbc.insert(0x1000, 8, symbolic.plain(old), 0)
        mbc.insert(0x1000, 8, symbolic.plain(new), 1)
        assert prf.refcount(old) == 1
        assert prf.refcount(new) == 2
        assert mbc.lookup(0x1000, 8).sym.base == new


class TestEvictionAndInvalidation:
    def test_lru_eviction_at_capacity(self, mbc, prf):
        for index in range(5):
            mbc.insert(0x1000 + index * 8, 8, symbolic.const(index), index)
        assert len(mbc) == 4
        assert mbc.lookup(0x1000, 8) is None  # oldest evicted
        assert mbc.lookup(0x1020, 8) is not None

    def test_hit_refreshes_lru(self, mbc):
        for index in range(4):
            mbc.insert(0x1000 + index * 8, 8, symbolic.const(index), index)
        mbc.lookup(0x1000, 8)  # refresh the oldest
        mbc.insert(0x2000, 8, symbolic.const(9), 9)
        assert mbc.lookup(0x1000, 8) is not None
        assert mbc.lookup(0x1008, 8) is None  # now-oldest evicted

    def test_eviction_releases_pin(self, prf):
        mbc = MemoryBypassCache(capacity=1, prf=prf)
        preg = alloc(prf)
        mbc.insert(0x1000, 8, symbolic.plain(preg), 0)
        mbc.insert(0x2000, 8, symbolic.const(0), 0)
        assert prf.refcount(preg) == 1

    def test_invalidate_overlap_partial(self, mbc):
        mbc.insert(0x1000, 8, symbolic.const(1), 1)
        mbc.insert(0x1008, 8, symbolic.const(2), 2)
        # A 4-byte store into the first quad kills only that entry.
        dropped = mbc.invalidate_overlap(0x1002, 4)
        assert dropped == 1
        assert mbc.lookup(0x1000, 8) is None
        assert mbc.lookup(0x1008, 8) is not None

    def test_insert_invalidates_overlapping_different_tags(self, mbc):
        mbc.insert(0x1000, 8, symbolic.const(1), 1)
        mbc.insert(0x1000, 4, symbolic.const(2), 2)  # overlaps the quad
        assert mbc.lookup(0x1000, 8) is None
        assert mbc.lookup(0x1000, 4) is not None

    def test_cross_block_store_invalidates_both(self, mbc):
        mbc.insert(0x1000, 8, symbolic.const(1), 1)
        mbc.insert(0x1008, 8, symbolic.const(2), 2)
        # An unaligned 8-byte write spanning both blocks.
        dropped = mbc.invalidate_overlap(0x1004, 8)
        assert dropped == 2

    def test_invalidate_entry_exact(self, mbc):
        mbc.insert(0x1000, 8, symbolic.const(1), 1)
        mbc.invalidate_entry(0x1000, 8)
        assert mbc.lookup(0x1000, 8) is None
        assert mbc.invalidations == 1

    def test_evict_lru_api(self, mbc):
        assert not mbc.evict_lru()  # empty
        mbc.insert(0x1000, 8, symbolic.const(1), 1)
        assert mbc.evict_lru()
        assert len(mbc) == 0

    def test_clear_releases_everything(self, mbc, prf):
        pregs = [alloc(prf) for _ in range(3)]
        for index, preg in enumerate(pregs):
            mbc.insert(0x1000 + index * 8, 8, symbolic.plain(preg), 0)
        mbc.clear()
        assert len(mbc) == 0
        assert all(prf.refcount(p) == 1 for p in pregs)


class TestStatistics:
    def test_counters(self, mbc):
        mbc.lookup(0x1000, 8)
        mbc.insert(0x1000, 8, symbolic.const(1), 1)
        mbc.lookup(0x1000, 8)
        assert mbc.misses == 1
        assert mbc.hits == 1
