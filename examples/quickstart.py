#!/usr/bin/env python
"""Quickstart: assemble a kernel, run it on both machines, compare.

This is the one-file tour of the public API:

1. write a small assembly program (an array-summing loop, the paper's
   own Section 2.4 motivating example),
2. execute it architecturally to get the oracle trace,
3. simulate the trace on the baseline machine (paper Table 2) and on
   the same machine with the continuous optimizer installed,
4. print the headline numbers the paper reports.

Run:  python examples/quickstart.py
"""

from repro import assemble, default_config, run_program, simulate_trace

# The paper's motivating example (Section 2.4): a loop that sums the
# elements of an array.  The loop counter is loaded from memory, so it
# is not statically computable -- value feedback is what eventually
# turns it into a known value inside the optimizer.
SOURCE = """
.data
arr:    .space 1200
count:  .quad 150
base:   .quad arr
result: .quad 0
.text
        ldi   r29, count
        ldq   r1, 0(r29)      # loop counter (not statically known)
        ldi   r30, base
        ldq   r4, 0(r30)      # array base pointer
        clr   r2              # sum
        ldi   r5, 7
init:   stq   r5, 0(r4)       # fill the array with sevens
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, init
        ldq   r1, 0(r29)
        ldq   r4, 0(r30)
loop:   ldq   r3, 0(r4)       # load element
        add   r2, r2, r3      # accumulate
        lda   r4, 8(r4)       # bump pointer
        sub   r1, r1, 1       # decrement counter
        bne   r1, loop
        ldi   r6, result
        stq   r2, 0(r6)
        halt
"""


def main() -> None:
    program = assemble(SOURCE)
    oracle = run_program(program)
    print(f"program: {program.static_count()} static, "
          f"{oracle.instruction_count} dynamic instructions")
    print(f"architectural result: sum = {oracle.int_regs[2]}")

    baseline_cfg = default_config()
    optimized_cfg = baseline_cfg.with_optimizer()
    print("\nmachine (paper Table 2):")
    print(f"  fetch/rename {baseline_cfg.fetch_width}-wide, "
          f"retire {baseline_cfg.retire_width}-wide, "
          f"ROB {baseline_cfg.rob_size}, "
          f"4x{baseline_cfg.sched_entries}-entry schedulers")
    print(f"  min branch penalty: {baseline_cfg.min_branch_penalty()} "
          f"(baseline) / {optimized_cfg.min_branch_penalty()} (optimized)")
    print(f"  MBC: {optimized_cfg.optimizer.mbc_entries} entries, "
          f"value-feedback delay {optimized_cfg.optimizer.vf_delay} cycle")

    base = simulate_trace(oracle.trace, baseline_cfg)
    opt = simulate_trace(oracle.trace, optimized_cfg)

    print(f"\nbaseline : {base.cycles:6d} cycles  (IPC {base.ipc:.2f})")
    print(f"optimized: {opt.cycles:6d} cycles  (IPC {opt.ipc:.2f})")
    print(f"speedup  : {base.cycles / opt.cycles:.3f}")
    print("\noptimizer effects (paper Table 3 metrics):")
    print(f"  executed early        : {100 * opt.frac_early_executed:5.1f}%")
    print(f"  mispredicts recovered : "
          f"{100 * opt.frac_mispredicts_recovered:5.1f}%")
    print(f"  ld/st addresses known : {100 * opt.frac_mem_addr_gen:5.1f}%")
    print(f"  loads removed (RLE/SF): {100 * opt.frac_loads_removed:5.1f}%")


if __name__ == "__main__":
    main()
