"""Intra-workload sharding: segmented trace simulation under a policy.

The plain sweep engine (:mod:`repro.engine.pool`) parallelizes only
*across* grid points, so one long workload bounds a sweep's wall-clock
time.  This module decomposes each ``(workload, scale)`` trace into
instruction-count **segments** and simulates them under a
:class:`SegmentPolicy`:

* ``mode="fixed"`` — segments of exactly ``segment_insns``
  instructions (the original behavior; bare ints coerce to this).
* ``mode="adaptive"`` — segment size derived from the trace length:
  short traces collapse to one segment (zero extra drain boundaries,
  stats identical to the monolithic run), long traces target about
  ``2 x jobs`` shards so the pool tail stays short.
* ``mode="sampled"`` — simulate every ``sample_period``-th segment in
  detail (optionally with a ``warmup_insns`` warm prefix), emulate-only
  the rest, and extrapolate the merged :class:`PipelineStats` with
  per-field confidence half-widths.  Results are explicitly marked
  ``estimated``; exact modes stay byte-identical to the flat engine's
  event counters.

The emulate and simulate stages are **pipelined**: the serial path
streams one emulator through the trace and simulates each detailed
window the moment it materializes (never pickling whole-trace
artifacts it does not need); the parallel path emits per-segment
window and ``(config x segment)`` simulation *work units* to an
:class:`~repro.engine.backend.ExecutionBackend` (a local process pool
or remote socket workers), chaining window units through stored
checkpoints and dispatching each segment's simulation shard as soon
as its columns land, rather than after the whole plan.

Segment boundaries are unchanged from the original planner: each
segment starts a **cold** microarchitecture (empty caches/predictors)
and ends with a full pipeline drain, so instruction and event counters
merge exactly while cycle counts carry a per-segment fill+drain
overhead (see README "Segmented simulation").
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import time
import zlib
from dataclasses import dataclass, fields

from ..functional.emulator import Emulator
from ..uarch.config import MachineConfig
from ..uarch.pipeline import simulate_trace
from ..uarch.stats import _MERGE_MAX_FIELDS, PipelineStats
from ..workloads import build_program
from .backend import (ExecutionBackend, WorkUnit, register_executor,
                      resolve_backend)
from .campaign import SweepPoint
from .events import SegmentEvent
from .pool import PointResult, SweepResult, resolve_jobs
from .store import ArtifactStore
from .telemetry import TELEMETRY

#: Matches ``workloads.build_trace``'s budget for monolithic emulation.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000

#: Valid :class:`SegmentPolicy` modes.
SEGMENT_MODES = ("fixed", "adaptive", "sampled")

#: Simulate every Nth segment when ``mode="sampled"`` leaves the
#: period unspecified.
DEFAULT_SAMPLE_PERIOD = 4

#: Adaptive sizing never cuts segments smaller than this: below it the
#: per-segment fill+drain overhead dominates anything parallelism buys.
ADAPTIVE_MIN_SEGMENT = 4096

#: Two-sided 95% normal quantile for sampled-mode confidence bounds.
CONFIDENCE_Z = 1.959963984540054

#: Sampling can never prove the unsampled segments look like the
#: sampled ones: a program whose phase length divides the sample
#: stride shows the grid identical samples (zero estimated variance)
#: while hiding a real offset.  Every half-width is therefore floored
#: at this fraction of the field's extrapolated (unobserved) share.
ALIGNMENT_GUARD = 0.02


@dataclass(frozen=True)
class SegmentPolicy:
    """How a sweep segments, samples, and sizes its trace windows.

    One policy object is accepted everywhere a segmented sweep runs —
    :func:`run_segmented_sweep`, :func:`simulate_workload_segmented`,
    :func:`repro.engine.pool.run_sweep`, the experiment runner, the
    service job spec, and the CLI — replacing the bare
    ``segment_insns: int`` previously threaded through all of them
    (plain ints still :meth:`coerce` to a fixed policy).

    ``phase_seed`` decorrelates sampled mode's phase across workloads:
    the first detailed segment of each trace is a seeded hash of
    ``(phase_seed, workload, scale)`` modulo the period, so periodic
    program phases do not systematically align with the sample grid.
    """

    mode: str = "fixed"
    segment_insns: int | None = None
    sample_period: int | None = None
    warmup_insns: int = 0
    phase_seed: int = 0

    _MANIFEST_KEYS = frozenset({"mode", "segment_insns", "sample_period",
                                "warmup_insns", "phase_seed"})

    def __post_init__(self):
        if self.mode not in SEGMENT_MODES:
            raise ValueError(
                f"segment mode must be one of {list(SEGMENT_MODES)}, "
                f"got {self.mode!r}")
        if self.mode == "adaptive":
            if self.segment_insns is not None:
                raise ValueError(
                    "adaptive mode sizes segments from the trace; "
                    f"drop segment_insns (got {self.segment_insns})")
        elif self.segment_insns is None or self.segment_insns <= 0:
            raise ValueError(
                f"{self.mode} mode needs segment_insns > 0, "
                f"got {self.segment_insns}")
        if self.mode == "sampled":
            period = (DEFAULT_SAMPLE_PERIOD if self.sample_period is None
                      else self.sample_period)
            if period < 2:
                raise ValueError(
                    "sample_period must be >= 2 (1 simulates every "
                    f"segment — use mode='fixed'), got {period}")
            object.__setattr__(self, "sample_period", period)
            if self.warmup_insns < 0:
                raise ValueError(
                    f"warmup_insns must be >= 0, got {self.warmup_insns}")
        else:
            if self.sample_period is not None:
                raise ValueError(
                    f"sample_period only applies to sampled mode, "
                    f"not {self.mode!r}")
            if self.warmup_insns:
                raise ValueError(
                    f"warmup_insns only applies to sampled mode, "
                    f"not {self.mode!r}")

    # ------------------------------------------------------------------
    # coercion + serialization
    # ------------------------------------------------------------------

    @classmethod
    def coerce(cls, value) -> "SegmentPolicy | None":
        """Normalize the spellings every entry point accepts.

        ``None`` passes through (meaning: no segmentation / caller
        default); a bare int is the deprecated ``segment_insns=N``
        spelling and becomes a fixed policy; dicts go through
        :meth:`from_manifest`.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise TypeError(f"cannot make a SegmentPolicy from {value!r}")
        if isinstance(value, int):
            return cls(mode="fixed", segment_insns=value)
        if isinstance(value, dict):
            return cls.from_manifest(value)
        raise TypeError(f"cannot make a SegmentPolicy from {value!r}")

    def to_manifest(self) -> dict:
        """JSON-serializable identity (store manifests, job specs)."""
        manifest = {"mode": self.mode}
        if self.segment_insns is not None:
            manifest["segment_insns"] = self.segment_insns
        if self.mode == "sampled":
            manifest["sample_period"] = self.sample_period
            manifest["warmup_insns"] = self.warmup_insns
            manifest["phase_seed"] = self.phase_seed
        return manifest

    @classmethod
    def from_manifest(cls, manifest: dict) -> "SegmentPolicy":
        """Rebuild from :meth:`to_manifest` output.

        Unknown fields are rejected by name: a policy field the server
        does not understand silently ignored would change what the job
        simulates.
        """
        if not isinstance(manifest, dict):
            raise ValueError(
                f"segment policy must be an object, got {manifest!r}")
        unknown = sorted(set(manifest) - cls._MANIFEST_KEYS)
        if unknown:
            raise ValueError(
                f"unknown segment policy fields {unknown}; "
                f"known fields: {sorted(cls._MANIFEST_KEYS)}")
        seg = manifest.get("segment_insns")
        period = manifest.get("sample_period")
        return cls(mode=manifest.get("mode", "fixed"),
                   segment_insns=None if seg is None else int(seg),
                   sample_period=None if period is None else int(period),
                   warmup_insns=int(manifest.get("warmup_insns", 0)),
                   phase_seed=int(manifest.get("phase_seed", 0)))

    def token(self) -> str:
        """A short stable string identity (cache keys, ledger labels)."""
        return "|".join(f"{key}={value}" for key, value
                        in sorted(self.to_manifest().items()))

    # ------------------------------------------------------------------
    # resolution against one trace
    # ------------------------------------------------------------------

    @property
    def sampled(self) -> bool:
        return self.mode == "sampled"

    def resolve(self, total_instructions: int, jobs: int) -> int:
        """Concrete segment size for one trace (store keys use this)."""
        if self.mode != "adaptive":
            return self.segment_insns
        total = max(1, total_instructions)
        if jobs <= 1 or total <= ADAPTIVE_MIN_SEGMENT:
            # no parallelism to feed (or nothing worth splitting):
            # one segment keeps stats identical to the monolithic run
            return total
        size = -(-total // (2 * jobs))  # ceil: ~2 shards per worker
        return max(size, ADAPTIVE_MIN_SEGMENT)

    def effective_warmup(self, segment_insns: int) -> int:
        """Warm-prefix length, clamped so windows never span two
        earlier segments (adjacent detailed segments cannot occur:
        ``sample_period >= 2``)."""
        if not self.sampled:
            return 0
        return min(self.warmup_insns, segment_insns)

    def phase_offset(self, workload: str, scale: int) -> int:
        """First detailed segment index for one trace (seeded)."""
        key = f"{self.phase_seed}:{workload}@{scale}"
        return zlib.crc32(key.encode()) % self.sample_period

    def detailed_indices(self, num_segments: int, workload: str,
                         scale: int) -> tuple[int, ...]:
        """Which segment indices get detailed simulation.

        Exact modes: all of them.  Sampled: every
        ``sample_period``-th starting at the seeded phase offset,
        plus always the final segment — the only one whose length
        (and so drain share) can differ from the rest, so simulating
        it outright removes the one structural bias extrapolation
        cannot average away (and guarantees even a trace too short to
        hit the grid rests on at least one real sample).
        """
        if not self.sampled:
            return tuple(range(num_segments))
        if num_segments <= 0:
            return ()
        offset = self.phase_offset(workload, scale)
        chosen = set(range(offset, num_segments, self.sample_period))
        chosen.add(num_segments - 1)
        return tuple(sorted(chosen))


@dataclass(frozen=True)
class SegmentPlan:
    """A completed segmentation of one ``(workload, scale)`` trace."""

    workload: str
    scale: int
    segment_insns: int
    lengths: tuple[int, ...]

    @property
    def num_segments(self) -> int:
        return len(self.lengths)

    @property
    def total_instructions(self) -> int:
        return sum(self.lengths)

    def to_manifest(self) -> dict:
        return {"workload": self.workload, "scale": self.scale,
                "segment_insns": self.segment_insns,
                "num_segments": self.num_segments,
                "total_instructions": self.total_instructions,
                "lengths": list(self.lengths)}

    @classmethod
    def from_manifest(cls, manifest: dict) -> "SegmentPlan":
        return cls(workload=manifest["workload"], scale=manifest["scale"],
                   segment_insns=manifest["segment_insns"],
                   lengths=tuple(manifest["lengths"]))


def _arith_lengths(total: int, segment_insns: int) -> tuple[int, ...]:
    """Segment lengths of a trace known only by total length.

    Valid because only the final segment of a trace can be short —
    the same invariant the planner's checkpoint-resume relies on.
    """
    full, rem = divmod(total, segment_insns)
    return tuple([segment_insns] * full + ([rem] if rem else []))


# ----------------------------------------------------------------------
# planning: emulate (or resume) one workload into segment artifacts
# ----------------------------------------------------------------------

def plan_segments(workload: str, scale: int, segment_insns: int,
                  store: ArtifactStore,
                  max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                  ) -> tuple[SegmentPlan, dict[str, int]]:
    """Ensure every segment trace of a workload exists in *store*.

    Returns the plan plus counters describing what the call actually
    did: ``emulated_instructions`` (0 on a fully cached re-run) and
    ``resumed_at`` (the segment index emulation restarted from, i.e.
    how much prefix the checkpoints saved).

    The pipelined sweep drivers below no longer call this for their
    own segments — they stream or chain windows instead — but it
    remains the way to materialize every segment trace as store
    artifacts (prewarming, tests, external tools).
    """
    if segment_insns <= 0:
        raise ValueError(f"segment_insns must be > 0, got {segment_insns}")
    counters = {"emulated_instructions": 0, "resumed_at": 0}
    manifest = store.load_manifest(workload, scale, segment_insns)
    if manifest is not None:
        plan = SegmentPlan.from_manifest(manifest)
        if all(store.has_segment_trace(workload, scale, segment_insns, i)
               for i in range(plan.num_segments)):
            return plan, counters
        # Some segment got evicted (store gc); fall through and rebuild.

    # Longest contiguous prefix of segment traces already on disk.
    ready = 0
    while store.has_segment_trace(workload, scale, segment_insns, ready):
        ready += 1
    emulator = Emulator(build_program(workload, scale),
                        max_instructions=max_instructions)
    # Resume from the newest checkpoint at or before the first gap
    # (checkpoint i = architectural state at the start of segment i;
    # index 0 is the reset state, so it is never stored).
    resume = ready
    while resume > 0:
        state = store.load_checkpoint(workload, scale, segment_insns,
                                      resume)
        if state is not None:
            emulator.restore(state)
            break
        resume -= 1
    counters["resumed_at"] = resume
    # Segments before the resume point were stored by a previous run,
    # and only the final segment of a trace can be short — so every
    # kept prefix segment is exactly segment_insns long.
    lengths = [segment_insns] * resume
    index = resume
    while True:
        # Packed emulation window: same boundary semantics as pulling
        # segment_insns entries from iter_trace(), but table-dispatched,
        # and the stored artifact ships the packed columns directly.
        segment = emulator.run_packed(segment_insns)
        if not len(segment):
            break
        store.save_segment_trace(workload, scale, segment_insns, index,
                                 segment)
        counters["emulated_instructions"] += len(segment)
        lengths.append(len(segment))
        index += 1
        if len(segment) < segment_insns:
            break  # a short segment means the program halted inside it
        store.save_checkpoint(workload, scale, segment_insns, index,
                              emulator.checkpoint())
    plan = SegmentPlan(workload=workload, scale=scale,
                       segment_insns=segment_insns, lengths=tuple(lengths))
    store.save_manifest(workload, scale, segment_insns, plan.to_manifest())
    store.save_trace_info(workload, scale,
                          {"instructions": plan.total_instructions})
    if counters["emulated_instructions"]:
        TELEMETRY.counter("repro_emu_runs_total").inc()
        TELEMETRY.counter("repro_emu_instructions_total").inc(
            counters["emulated_instructions"])
    return plan, counters


# ----------------------------------------------------------------------
# window derivation: get one segment's columns from whatever exists
# ----------------------------------------------------------------------

def _segment_window(store: ArtifactStore, workload: str, scale: int,
                    segment_insns: int, index: int,
                    lengths: tuple[int, ...] | None, warmup: int,
                    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS):
    """Packed columns for segment *index* (plus its warm prefix).

    Cheapest available source first: the stored segment trace (exact
    windows only — a stored segment lacks the warm prefix), a slice of
    the stored oracle trace, an emulator restored from the nearest
    stored checkpoint, and finally a fresh emulator replaying the
    prefix.  *lengths* may be ``None`` only when the caller knows the
    segment trace is on disk (the pipelined pool driver's
    dispatch-on-land path).
    """
    warmup = min(warmup, segment_insns)
    if warmup <= 0:
        trace = store.load_segment_trace(workload, scale, segment_insns,
                                         index)
        if trace is not None:
            return trace
    if lengths is None:
        raise RuntimeError(
            f"segment trace {workload}@{scale}#{index} missing from "
            f"store {store.root} and no plan lengths to re-derive it")
    start = sum(lengths[:index])
    lo = max(0, start - warmup)
    hi = start + lengths[index]
    oracle = store.load_trace(workload, scale)
    if oracle is not None and len(oracle) >= hi:
        return oracle[lo:hi]
    emulator = Emulator(build_program(workload, scale),
                        max_instructions=max_instructions)
    # Checkpoint k sits at k * segment_insns instructions (only full
    # segments ever get a boundary checkpoint).
    for k in range(index, 0, -1):
        if k * segment_insns > lo:
            continue
        state = store.load_checkpoint(workload, scale, segment_insns, k)
        if state is not None:
            emulator.restore(state)
            break
    skip = lo - emulator.instruction_count
    if skip > 0:
        emulator.run_packed(skip)
    window = emulator.run_packed(hi - lo)
    emulated = skip + len(window) if skip > 0 else len(window)
    if emulated > 0:
        TELEMETRY.counter("repro_emu_runs_total").inc()
        TELEMETRY.counter("repro_emu_instructions_total").inc(emulated)
    if len(window) != hi - lo:
        raise RuntimeError(
            f"re-derived window for {workload}@{scale}#{index} came up "
            f"short ({len(window)} != {hi - lo} instructions)")
    return window


# ----------------------------------------------------------------------
# unit executors (run wherever the backend puts them)
# ----------------------------------------------------------------------

@register_executor("seg-measure")
def _measure_unit(payload: tuple[str, int, int], env
                  ) -> tuple[str, int, int, int]:
    """Adaptive sizing's cold-start: learn (and store) a trace's length.

    Emulates the whole trace once if the store has neither the oracle
    trace nor its metadata; saves both so follow-up shards slice the
    oracle instead of re-emulating.  Returns ``(workload, scale,
    total_instructions, emulated_instructions)``.
    """
    store = env.store
    workload, scale, max_instructions = payload
    with TELEMETRY.timer("repro_segments_plan_seconds"):
        trace = store.load_trace(workload, scale)
        emulated = 0
        if trace is None:
            emulator = Emulator(build_program(workload, scale),
                                max_instructions=max_instructions)
            trace = emulator.run_packed()
            emulated = len(trace)
            store.save_trace(workload, scale, trace)
            TELEMETRY.counter("repro_emu_runs_total").inc()
            TELEMETRY.counter("repro_emu_instructions_total").inc(emulated)
        total = len(trace)
        store.save_trace_info(workload, scale, {"instructions": total})
    return (workload, scale, total, emulated)


@register_executor("seg-window")
def _window_unit(payload: tuple[str, int, int, int, int], env
                 ) -> tuple[str, int, int, int, int, bool]:
    """Emulate one segment window, persisting its trace + checkpoint.

    One link of the pipelined driver's emulation chain: restore the
    boundary checkpoint for *index* (or the nearest earlier one,
    fast-forwarding the gap), emulate one segment, store it, and
    checkpoint the next boundary.  Returns ``(workload, scale, index,
    window_length, total_instructions_so_far, halted)`` — on halt the
    driver derives every segment length arithmetically from the total,
    so a stale short segment left by a killed run can never corrupt
    the plan.
    """
    store = env.store
    workload, scale, segment_insns, index, max_instructions = payload
    with TELEMETRY.timer("repro_segments_plan_seconds"):
        emulator = Emulator(build_program(workload, scale),
                            max_instructions=max_instructions)
        for k in range(index, 0, -1):
            state = store.load_checkpoint(workload, scale, segment_insns,
                                          k)
            if state is not None:
                emulator.restore(state)
                break
        while (not emulator.halted
               and emulator.instruction_count < index * segment_insns):
            gap = index * segment_insns - emulator.instruction_count
            if not len(emulator.run_packed(min(gap, segment_insns))):
                break
        window = emulator.run_packed(segment_insns)
        length = len(window)
        halted = emulator.halted or length < segment_insns
        if length:
            store.save_segment_trace(workload, scale, segment_insns,
                                     index, window)
            if not halted:
                store.save_checkpoint(workload, scale, segment_insns,
                                      index + 1, emulator.checkpoint())
            TELEMETRY.counter("repro_emu_runs_total").inc()
            TELEMETRY.counter("repro_emu_instructions_total").inc(length)
    return (workload, scale, index, length,
            emulator.instruction_count, halted)


@register_executor("seg-shard")
def _simulate_shard_unit(payload: tuple, env) -> list:
    """Simulate one segment for every config that needs it.

    ``payload`` is ``(workload, scale, segment_insns, seg_index,
    [(point_index, config), ...], lengths | None, warmup_insns)``; the
    segment window is materialized at most once no matter how many
    machine variants consume it, and only if some config actually
    misses the stats cache.  Warmup-extended windows (sampled mode)
    are never persisted as segment stats — they are not the segment's
    exact stats.  Returns ``[(point_index, seg_index, stats, hit,
    window_len), ...]``.
    """
    store = env.store
    workload, scale, segment_insns, seg_index, items, lengths, warmup = \
        payload
    lengths = None if lengths is None else tuple(lengths)
    persist = warmup == 0
    out = []
    window = None
    with TELEMETRY.timer("repro_pool_shard_execute_seconds"):
        for point_index, config in items:
            stats = (store.load_segment_stats(workload, scale,
                                              segment_insns, seg_index,
                                              config)
                     if persist else None)
            hit = stats is not None
            if stats is None:
                if window is None:
                    window = _segment_window(store, workload, scale,
                                             segment_insns, seg_index,
                                             lengths, warmup)
                stats = simulate_trace(window, config)
                if persist:
                    store.save_segment_stats(workload, scale,
                                             segment_insns, seg_index,
                                             config, stats)
            if window is not None:
                window_len = len(window)
            elif lengths is not None:
                window_len = lengths[seg_index]
            else:
                window_len = segment_insns
            out.append((point_index, seg_index, stats, hit, window_len))
    return out


# ----------------------------------------------------------------------
# sampled-mode extrapolation
# ----------------------------------------------------------------------

def _extrapolate(plan: SegmentPlan, detailed: tuple[int, ...],
                 samples: dict[int, PipelineStats],
                 window_lens: dict[int, int],
                 ) -> tuple[PipelineStats, dict]:
    """Scale sampled per-segment stats up to the whole trace.

    Certainty-stratum ratio estimator: the simulated segments
    contribute their own (exactly known) counts; only the *unsampled*
    mass is extrapolated, at the pooled per-instruction rate of the
    sampled full-length segments.  ``retired`` is pinned to the exact
    trace length (known without simulation) and peak counters
    (:data:`_MERGE_MAX_FIELDS`) pass through unscaled.

    The returned bounds dict carries a per-field 95% confidence
    half-width covering the extrapolated share (segments as the
    sampling unit, finite-population corrected,
    successive-difference variance — every-Nth sampling walks the
    trace in order, so slow program-phase trends cancel between
    neighboring samples and only local variation remains) plus a
    headline ``relative_error`` derived from the cycle bound.
    Iteration order is fixed (sorted indices, declared field order)
    so repeated runs produce byte-identical ledgers.
    """
    idx = sorted(detailed)
    observed = PipelineStats.merge_all([samples[i] for i in idx])
    total = plan.total_instructions
    window_total = sum(window_lens[i] for i in idx)
    if window_total <= 0 or total <= 0:
        return observed, {"relative_error": 0.0, "half_width": {},
                          "sampled_segments": len(idx),
                          "total_segments": plan.num_segments,
                          "coverage": 1.0}
    known_insns = sum(plan.lengths[i] for i in idx)
    unknown_insns = total - known_insns
    # The rate pool: sampled segments of nominal length.  Short
    # segments (only the final one can be) carry a disproportionate
    # drain share and would skew the per-instruction rate applied to
    # the full-length unsampled segments.
    pool = [i for i in idx if plan.lengths[i] == plan.segment_insns]
    if not pool:
        pool = idx
    pool_window = sum(window_lens[i] for i in pool)
    n = len(pool)
    # Every unsampled segment is full-length (the final segment is
    # always sampled), so the pool is a systematic sample of the
    # full-length population; the finite-population correction
    # reflects how much of that population was actually simulated.
    full_population = sum(1 for length in plan.lengths
                          if length == plan.segment_insns)
    fpc = (math.sqrt(max(0, full_population - n) /
                     (full_population - 1))
           if full_population > 1 else 0.0)
    estimated = PipelineStats()
    half_width: dict[str, float] = {}
    for spec in fields(PipelineStats):
        if spec.name == "extra":
            continue
        value = getattr(observed, spec.name)
        if spec.name in _MERGE_MAX_FIELDS:
            setattr(estimated, spec.name, value)  # peak: best seen
            continue
        if spec.name == "retired":
            setattr(estimated, spec.name, total)  # exact by construction
            continue
        # Known stratum: each window's count scaled down to its
        # segment's share (a warmup prefix inflates the window; with
        # no warmup the factor is exactly 1).
        known = sum(getattr(samples[i], spec.name)
                    * (plan.lengths[i] / window_lens[i]) for i in idx)
        rate = (sum(getattr(samples[i], spec.name) for i in pool)
                / pool_window)
        setattr(estimated, spec.name,
                int(round(known + rate * unknown_insns)))
        if value <= 0 or unknown_insns <= 0:
            continue
        if n >= 2:
            residuals = [getattr(samples[i], spec.name)
                         - rate * window_lens[i] for i in pool]
            var = (sum((residuals[k] - residuals[k - 1]) ** 2
                       for k in range(1, n)) / (2 * (n - 1)))
            half = (CONFIDENCE_Z * math.sqrt(n * var)
                    * (unknown_insns / pool_window) * fpc)
            half = max(half, ALIGNMENT_GUARD * rate * unknown_insns)
        else:
            # one full-length sample: no variance estimate — bound by
            # the whole extrapolated (unobserved) share
            half = rate * unknown_insns
        if half > 0:
            half_width[spec.name] = round(half, 3)
    ratio = total / window_total
    estimated.extra = {key: value * ratio
                       for key, value in sorted(observed.extra.items())}
    cycles = getattr(estimated, "cycles", 0)
    relative = (half_width.get("cycles", 0.0) / cycles) if cycles else 0.0
    return estimated, {"relative_error": round(relative, 6),
                       "half_width": half_width,
                       "sampled_segments": len(idx),
                       "total_segments": plan.num_segments,
                       "coverage": round(known_insns / total, 6)}


# ----------------------------------------------------------------------
# the driver: one class, serial (fused streaming) and pool (pipelined)
# ----------------------------------------------------------------------

class _SegmentedRun:
    """State for one segmented sweep: plans, partials, counters, events."""

    def __init__(self, points: list[SweepPoint], policy: SegmentPolicy,
                 jobs: int, store_dir: str, progress,
                 max_instructions: int):
        self.points = points
        self.policy = policy
        self.jobs = jobs
        self.store_dir = store_dir
        self.progress = progress
        self.max_instructions = max_instructions
        self.pairs = list(dict.fromkeys((p.workload, p.scale)
                                        for p in points))
        self.items: dict[tuple[str, int], list] = {}
        for index, point in enumerate(points):
            self.items.setdefault((point.workload, point.scale),
                                  []).append((index, point.config))
        self.plans: dict[tuple[str, int], SegmentPlan] = {}
        self.detailed: dict[tuple[str, int], tuple[int, ...]] = {}
        self.window_lens: dict[tuple[str, int], dict[int, int]] = {}
        self.partials: list[dict[int, PipelineStats]] = \
            [{} for _ in points]
        self.hits = [0] * len(points)
        self.counters = {
            "points": len(points),
            "segment_insns": policy.segment_insns or 0,
            "emulations": 0, "emulated_instructions": 0,
            "segments": 0, "segments_detailed": 0, "segments_skipped": 0,
            "segment_simulations": 0, "segment_stats_hits": 0,
            "simulations": 0,
        }
        self._done_units = 0
        self._total_units = 0

    # -- events --------------------------------------------------------

    def _emit(self, phase: str, done: int, total: int,
              message: str) -> None:
        if self.progress is not None:
            self.progress(SegmentEvent(
                message=message, done=done, total=max(total, done),
                phase=phase, estimated=self.policy.sampled))

    # -- shared bookkeeping --------------------------------------------

    def _count_emulation(self, instructions: int) -> None:
        if instructions <= 0:
            return
        self.counters["emulations"] += 1
        self.counters["emulated_instructions"] += instructions
        TELEMETRY.counter("repro_emu_runs_total").inc()
        TELEMETRY.counter("repro_emu_instructions_total").inc(instructions)

    def _save_plan(self, store: ArtifactStore, plan: SegmentPlan) -> None:
        manifest = plan.to_manifest()
        # provenance only: the manifest is keyed by (workload, scale,
        # segment size), shared by every policy that resolves to them
        manifest["policy"] = self.policy.to_manifest()
        store.save_manifest(plan.workload, plan.scale,
                            plan.segment_insns, manifest)
        store.save_trace_info(plan.workload, plan.scale,
                              {"instructions": plan.total_instructions})

    def _finalize_plan(self, pair: tuple[str, int],
                       plan: SegmentPlan) -> None:
        self.plans[pair] = plan
        det = self.policy.detailed_indices(plan.num_segments, *pair)
        self.detailed[pair] = det
        self.counters["segments"] += plan.num_segments
        self.counters["segments_detailed"] += len(det)
        self.counters["segments_skipped"] += plan.num_segments - len(det)
        if self.policy.sampled:
            TELEMETRY.counter("repro_sampled_segments_total",
                              kind="detailed").inc(len(det))
            TELEMETRY.counter("repro_sampled_segments_total",
                              kind="skipped").inc(
                                  plan.num_segments - len(det))
        self._total_units += len(det) * len(self.items[pair])
        self._emit("plan", len(self.plans), len(self.pairs),
                   f"planned {pair[0]}@{pair[1]} "
                   f"({plan.num_segments} segments)")

    def _absorb(self, point_index: int, seg_index: int,
                stats: PipelineStats, hit: bool) -> None:
        self.partials[point_index][seg_index] = stats
        self.counters["segment_stats_hits"] += hit
        self.counters["segment_simulations"] += not hit
        self.hits[point_index] += hit

    def _simulate_segment(self, store: ArtifactStore,
                          pair: tuple[str, int], segment_insns: int,
                          index: int, window=None, loader=None,
                          nominal_len: int = 0) -> None:
        """Serial-path twin of :func:`_simulate_shard` (same cache
        discipline), taking the window either directly (the streaming
        emulator just produced it) or as a lazy loader consulted only
        if some config misses."""
        workload, scale = pair
        persist = self.policy.effective_warmup(segment_insns) == 0
        for point_index, config in self.items[pair]:
            stats = (store.load_segment_stats(workload, scale,
                                              segment_insns, index,
                                              config)
                     if persist else None)
            hit = stats is not None
            if stats is None:
                if window is None:
                    window = loader()
                stats = simulate_trace(window, config)
                if persist:
                    store.save_segment_stats(workload, scale,
                                             segment_insns, index,
                                             config, stats)
            self._absorb(point_index, index, stats, hit)
        self.window_lens.setdefault(pair, {})[index] = \
            len(window) if window is not None else nominal_len
        self._done_units += len(self.items[pair])
        self._emit("simulate", self._done_units, self._total_units,
                   f"{workload}@{scale} segment {index} "
                   f"({len(self.items[pair])} configs)")

    def _backfill_missing_detailed(self, store: ArtifactStore,
                                   pair: tuple[str, int],
                                   plan: SegmentPlan) -> None:
        """Simulate any detailed segment the streaming pass did not
        cover (the short-trace fallback sample, a plan landing after
        the stream)."""
        warmup = self.policy.effective_warmup(plan.segment_insns)
        for index in self.detailed[pair]:
            if index in self.window_lens.get(pair, {}):
                continue
            window_len = (min(warmup, sum(plan.lengths[:index]))
                          + plan.lengths[index])
            self._simulate_segment(
                store, pair, plan.segment_insns, index,
                loader=lambda index=index: _segment_window(
                    store, *pair, plan.segment_insns, index,
                    plan.lengths, warmup, self.max_instructions),
                nominal_len=window_len)

    # -- serial: fused streaming emulate+simulate ----------------------

    def run_serial(self, store: ArtifactStore | None = None) -> None:
        if store is None:
            store = ArtifactStore(self.store_dir)
        for pair in self.pairs:
            self._serial_pair(store, pair)

    def _serial_pair(self, store: ArtifactStore,
                     pair: tuple[str, int]) -> None:
        workload, scale = pair
        policy = self.policy
        segment_insns = None
        pre_trace = None
        if policy.mode == "adaptive":
            info = store.load_trace_info(workload, scale)
            if info is not None:
                # resolve against self.jobs (not 1): inline execution
                # of a jobs=N plan must segment exactly like the pool
                # would, or backends could not be ledger-equivalent
                segment_insns = policy.resolve(int(info["instructions"]),
                                               self.jobs)
            else:
                pre_trace = store.load_trace(workload, scale)
                if pre_trace is not None:
                    store.save_trace_info(
                        workload, scale,
                        {"instructions": len(pre_trace)})
                    segment_insns = policy.resolve(len(pre_trace),
                                                   self.jobs)
        else:
            segment_insns = policy.segment_insns
        # Warmup-extended windows are never persisted, so a manifest
        # hit saves nothing — streaming again is the cheap path.
        reuse_ok = policy.effective_warmup(segment_insns or 1) == 0
        if segment_insns is not None and reuse_ok:
            manifest = store.load_manifest(workload, scale, segment_insns)
            if manifest is not None:
                self._serial_warm(store, pair,
                                  SegmentPlan.from_manifest(manifest))
                return
        if (pre_trace is None and segment_insns is not None
                and policy.mode == "adaptive"):
            pre_trace = store.load_trace(workload, scale)
        self._serial_cold(store, pair, segment_insns, pre_trace)

    def _serial_warm(self, store: ArtifactStore, pair: tuple[str, int],
                     plan: SegmentPlan) -> None:
        self._finalize_plan(pair, plan)
        self._backfill_missing_detailed(store, pair, plan)

    def _serial_cold(self, store: ArtifactStore, pair: tuple[str, int],
                     segment_insns: int | None, pre_trace) -> None:
        workload, scale = pair
        policy = self.policy
        if segment_insns is None:
            # adaptive with nothing known: one full emulation both
            # measures the trace and (jobs=1 collapses to a single
            # segment) IS the only window
            emulator = Emulator(build_program(workload, scale),
                                max_instructions=self.max_instructions)
            pre_trace = emulator.run_packed()
            self._count_emulation(len(pre_trace))
            store.save_trace_info(workload, scale,
                                  {"instructions": len(pre_trace)})
            segment_insns = policy.resolve(len(pre_trace), self.jobs)
        if pre_trace is not None:
            self._serial_from_trace(store, pair, segment_insns, pre_trace)
            return
        self._serial_stream(store, pair, segment_insns)

    def _serial_from_trace(self, store: ArtifactStore,
                           pair: tuple[str, int], segment_insns: int,
                           trace) -> None:
        """Windows sliced from an in-memory oracle trace (adaptive
        jobs=1 always lands here cold: exactly one segment)."""
        plan = SegmentPlan(pair[0], pair[1], segment_insns,
                           _arith_lengths(len(trace), segment_insns))
        self._save_plan(store, plan)
        self._finalize_plan(pair, plan)
        warmup = self.policy.effective_warmup(segment_insns)
        start = 0
        starts = []
        for length in plan.lengths:
            starts.append(start)
            start += length
        for index in self.detailed[pair]:
            lo = max(0, starts[index] - warmup)
            window = trace[lo:starts[index] + plan.lengths[index]]
            self._simulate_segment(store, pair, segment_insns, index,
                                   window=window)

    def _serial_stream(self, store: ArtifactStore, pair: tuple[str, int],
                       segment_insns: int) -> None:
        """The fused cold path: one streaming emulator, each detailed
        window simulated the moment it materializes, skipped segments
        emulated and discarded.  Persists per-segment stats, the
        manifest, and trace metadata — never whole-trace pickles the
        simulation does not need."""
        workload, scale = pair
        policy = self.policy
        warmup = policy.effective_warmup(segment_insns)
        if policy.sampled:
            offset = policy.phase_offset(workload, scale)
            period = policy.sample_period

            def detailed(j: int) -> bool:
                return j % period == offset
        else:
            def detailed(j: int) -> bool:
                return True

        emulator = Emulator(build_program(workload, scale),
                            max_instructions=self.max_instructions)
        pos = 0
        j = 0
        halted = False
        simulated: list[int] = []
        while not halted:
            start = j * segment_insns
            end = start + segment_insns
            if detailed(j):
                # the window absorbs whatever warm prefix the previous
                # discard chunk deliberately left behind
                window = emulator.run_packed(end - pos)
                pos += len(window)
                halted = pos < end or emulator.halted
                if pos > start:  # window reaches into segment j
                    self._simulate_segment(store, pair, segment_insns, j,
                                           window=window)
                    simulated.append(j)
                del window
            else:
                stop = end - (warmup if detailed(j + 1) else 0)
                need = stop - pos
                if need > 0:
                    chunk = emulator.run_packed(need)
                    pos += len(chunk)
                    halted = len(chunk) < need or emulator.halted
                    if halted and len(chunk) and warmup == 0:
                        # the program ended inside this discard chunk,
                        # which therefore IS the final segment — always
                        # a detailed sample, so simulate it now rather
                        # than re-deriving it with a second emulation
                        self._simulate_segment(store, pair,
                                               segment_insns, j,
                                               window=chunk)
                    del chunk
                else:
                    halted = emulator.halted
            j += 1
        total = pos
        self._count_emulation(total)
        plan = SegmentPlan(workload, scale, segment_insns,
                           _arith_lengths(total, segment_insns))
        self._save_plan(store, plan)
        self._finalize_plan(pair, plan)
        # a trace too short to hit the sample grid: fall back exactly
        # like the warm path does (detailed_indices' last-segment rule)
        self._backfill_missing_detailed(store, pair, plan)

    # -- parallel: pipelined emulate chain + dispatch-on-land shards ---

    def run_units(self, backend: ExecutionBackend) -> None:
        """Drive the whole run as work units on *backend*.

        The planner is backend-agnostic: it submits ``seg-measure`` /
        ``seg-window`` / ``seg-shard`` units to a private group and
        absorbs results by ticket, so a process pool and a fleet of
        socket workers produce identical plans and ledgers.
        """
        store = ArtifactStore(self.store_dir)
        self._pending: dict[int, tuple[str, tuple[str, int]]] = {}
        self._chains: dict[tuple[str, int], dict] = {}
        self._group = backend.group()
        # dispatch-on-land sends shards whose window exists only as a
        # store artifact; that requires executors to see the planner's
        # artifacts — true for inline/pool (same store directory) and
        # for socket workers when the backend replicates blobs (it was
        # built with a store).  A storeless workers backend falls back
        # to post-plan dispatch, whose shards can re-derive windows.
        self._landed_ok = (backend.name != "workers"
                           or getattr(backend, "store_dir", None)
                           is not None)
        for pair in self.pairs:
            self._unit_start_pair(store, pair)
        while self._pending:
            ticket, payload = self._group.wait_any()
            kind, pair = self._pending.pop(ticket)
            if kind == "measure":
                self._on_measure(store, payload)
            elif kind == "window":
                self._on_window(store, pair, payload)
            else:
                self._on_shard(pair, payload)

    def _submit(self, kind: str, pair: tuple[str, int], unit_kind: str,
                payload: tuple, phase: str) -> None:
        ticket = self._group.submit(WorkUnit(unit_kind, payload,
                                             phase=phase))
        self._pending[ticket] = (kind, pair)

    def _unit_start_pair(self, store: ArtifactStore,
                         pair: tuple[str, int]) -> None:
        workload, scale = pair
        if self.policy.mode == "adaptive":
            info = store.load_trace_info(workload, scale)
            if info is None:
                self._submit("measure", pair, "seg-measure",
                             (workload, scale, self.max_instructions),
                             "plan")
                return
            segment_insns = self.policy.resolve(
                int(info["instructions"]), self.jobs)
        else:
            segment_insns = self.policy.segment_insns
        self._unit_plan_pair(store, pair, segment_insns)

    def _on_measure(self, store: ArtifactStore, payload) -> None:
        workload, scale, total, emulated = payload
        if emulated:
            self.counters["emulations"] += 1
            self.counters["emulated_instructions"] += emulated
        self._unit_plan_pair(store, (workload, scale),
                             self.policy.resolve(total, self.jobs))

    def _unit_plan_pair(self, store: ArtifactStore,
                        pair: tuple[str, int],
                        segment_insns: int) -> None:
        workload, scale = pair
        manifest = store.load_manifest(workload, scale, segment_insns)
        if manifest is not None:
            plan = SegmentPlan.from_manifest(manifest)
            self._finalize_plan(pair, plan)
            self._dispatch_planned_shards(pair, plan, set())
            return
        info = store.load_trace_info(workload, scale)
        if info is not None and store.has_trace(workload, scale):
            # the oracle trace exists (a flat sweep, a prewarm, or a
            # measure task deposited it): the plan is pure arithmetic
            # and every shard just slices the oracle
            plan = SegmentPlan(workload, scale, segment_insns,
                               _arith_lengths(int(info["instructions"]),
                                              segment_insns))
            self._save_plan(store, plan)
            self._finalize_plan(pair, plan)
            self._dispatch_planned_shards(pair, plan, set())
            return
        # cold: chain window tasks through checkpoints, dispatching
        # each detailed segment's shard as soon as its columns land
        ready = 0
        while store.has_segment_trace(workload, scale, segment_insns,
                                      ready):
            ready += 1
        chain = self._chains[pair] = {
            "segment_insns": segment_insns, "emulated": 0,
            "dispatched": set(),
            "warmup": self.policy.effective_warmup(segment_insns),
            "offset": (self.policy.phase_offset(workload, scale)
                       if self.policy.sampled else 0),
        }
        for index in range(ready):
            self._maybe_dispatch_landed(pair, chain, index)
        self._submit("window", pair, "seg-window",
                     (workload, scale, segment_insns, ready,
                      self.max_instructions), "plan")

    def _chain_detailed(self, chain: dict, index: int) -> bool:
        if not self.policy.sampled:
            return True
        return index % self.policy.sample_period == chain["offset"]

    def _maybe_dispatch_landed(self, pair: tuple[str, int], chain: dict,
                               index: int) -> None:
        """Dispatch a segment's shard the moment its trace is on disk.

        Only for exact windows (no warm prefix): a warmup window needs
        the finalized plan's offsets, so sampled-with-warmup shards
        wait for the chain to finish.
        """
        if not self._landed_ok:
            return
        if chain["warmup"] > 0 or not self._chain_detailed(chain, index):
            return
        if index in chain["dispatched"]:
            return
        chain["dispatched"].add(index)
        workload, scale = pair
        self._submit("shard", pair, "seg-shard",
                     (workload, scale, chain["segment_insns"], index,
                      self.items[pair], None, 0), "simulate")

    def _on_window(self, store: ArtifactStore, pair: tuple[str, int],
                   payload) -> None:
        workload, scale, index, length, total, halted = payload
        chain = self._chains[pair]
        segment_insns = chain["segment_insns"]
        chain["emulated"] += length
        if length:
            self._maybe_dispatch_landed(pair, chain, index)
        if not halted:
            self._submit("window", pair, "seg-window",
                         (workload, scale, segment_insns, index + 1,
                          self.max_instructions), "plan")
            return
        if chain["emulated"]:
            self.counters["emulations"] += 1
            self.counters["emulated_instructions"] += chain["emulated"]
        plan = SegmentPlan(workload, scale, segment_insns,
                           _arith_lengths(total, segment_insns))
        self._save_plan(store, plan)
        self._finalize_plan(pair, plan)
        self._dispatch_planned_shards(pair, plan, chain["dispatched"])

    def _dispatch_planned_shards(self, pair: tuple[str, int],
                                 plan: SegmentPlan,
                                 already: set[int]) -> None:
        warmup = self.policy.effective_warmup(plan.segment_insns)
        for index in self.detailed[pair]:
            if index in already:
                continue
            self._submit("shard", pair, "seg-shard",
                         (pair[0], pair[1], plan.segment_insns, index,
                          self.items[pair], list(plan.lengths), warmup),
                         "simulate")

    def _on_shard(self, pair: tuple[str, int], payload) -> None:
        for point_index, seg_index, stats, hit, window_len in payload:
            self._absorb(point_index, seg_index, stats, hit)
            self.window_lens.setdefault(pair, {})[seg_index] = window_len
        self._done_units += len(payload)
        seg_index = payload[0][1]
        self._emit("simulate", self._done_units, self._total_units,
                   f"{pair[0]}@{pair[1]} segment {seg_index} "
                   f"({len(payload)} configs)")

    # -- reduction -----------------------------------------------------

    def reduce(self) -> list[PointResult]:
        self.counters["simulations"] = \
            self.counters["segment_simulations"]
        results = []
        max_relative = 0.0
        covered = total_insns = 0
        for index, point in enumerate(self.points):
            pair = (point.workload, point.scale)
            plan = self.plans[pair]
            detailed = self.detailed[pair]
            samples = self.partials[index]
            if not self.policy.sampled:
                ordered = [samples[seg]
                           for seg in range(plan.num_segments)]
                stats = (PipelineStats.merge_all(ordered) if ordered
                         else PipelineStats())
                results.append(PointResult(
                    point=point, stats=stats,
                    emulated=False,  # emulation is per workload
                    simulated=self.hits[index] < plan.num_segments,
                    segments=plan.num_segments,
                    segments_from_cache=self.hits[index]))
                continue
            if detailed:
                stats, bounds = _extrapolate(plan, detailed, samples,
                                             self.window_lens[pair])
            else:
                stats, bounds = PipelineStats(), {"relative_error": 0.0,
                                                  "half_width": {}}
            max_relative = max(max_relative, bounds["relative_error"])
            covered += sum(plan.lengths[i] for i in detailed)
            total_insns += plan.total_instructions
            results.append(PointResult(
                point=point, stats=stats, emulated=False,
                simulated=self.hits[index] < len(detailed),
                segments=plan.num_segments,
                segments_from_cache=self.hits[index],
                estimated=True, error_bounds=bounds))
        if self.policy.sampled:
            TELEMETRY.gauge("repro_sampling_coverage").set(
                round(covered / total_insns, 6) if total_insns else 0.0)
            TELEMETRY.gauge("repro_sampling_relative_error").set(
                round(max_relative, 6))
        return results


# ----------------------------------------------------------------------
# one point, serially (the runner's segmented path)
# ----------------------------------------------------------------------

def simulate_workload_segmented(workload: str, config: MachineConfig,
                                scale: int,
                                policy: SegmentPolicy | int,
                                store: ArtifactStore,
                                max_instructions: int =
                                DEFAULT_MAX_INSTRUCTIONS) -> PipelineStats:
    """Simulate one workload/config pair under a segment policy.

    Serial counterpart of :func:`run_segmented_sweep` used by the
    experiment runner; per-segment stats and the plan manifest go
    through *store* so later sweeps (or re-runs) reuse the work.
    *policy* accepts a bare int as the deprecated ``segment_insns``
    spelling.  Sampled policies return the extrapolated estimate
    (bounds travel on sweep results, not bare stats).
    """
    policy = SegmentPolicy.coerce(policy)
    if policy is None:
        raise ValueError("simulate_workload_segmented needs a "
                         "SegmentPolicy (or segment_insns int)")
    point = SweepPoint(workload=workload, scale=scale, variant="policy",
                       config=config)
    run = _SegmentedRun([point], policy, jobs=1,
                        store_dir=str(store.root), progress=None,
                        max_instructions=max_instructions)
    run.run_serial(store=store)
    return run.reduce()[0].stats


# ----------------------------------------------------------------------
# the sweep entry point
# ----------------------------------------------------------------------

def run_segmented_sweep(points: list[SweepPoint],
                        policy: SegmentPolicy | int | None = None,
                        jobs: int | None = 1,
                        store_dir: str | os.PathLike | None = None,
                        progress=None,
                        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                        *, segment_insns: int | None = None,
                        backend=None) -> SweepResult:
    """Execute a sweep grid with intra-workload segment parallelism.

    Drop-in alternative to :func:`repro.engine.pool.run_sweep` (same
    ``SweepResult`` shape): a single long workload fans out across all
    ``jobs`` workers instead of serializing on one, and the emulate /
    simulate stages overlap (see the module docstring).  *policy*
    accepts a :class:`SegmentPolicy`, a bare int (deprecated
    ``segment_insns`` spelling — still available as a keyword for old
    call sites), or a policy-manifest dict.

    Artifacts live in the store at *store_dir* — or a run-scoped
    temporary store when omitted — so a re-run against the same store
    performs zero emulation and (exact modes) zero segment
    simulations.  ``progress`` receives
    :class:`~repro.engine.events.SegmentEvent`\\ s per finalized plan
    (``phase="plan"``) and per simulated segment shard
    (``phase="simulate"``); sampled-mode events are flagged
    ``estimated``.
    """
    if policy is None:
        policy = segment_insns
    policy = SegmentPolicy.coerce(policy)
    if policy is None:
        raise ValueError("run_segmented_sweep needs a SegmentPolicy "
                         "(or segment_insns > 0)")
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    scratch_dir = None
    if store_dir is None:
        if (isinstance(backend, ExecutionBackend)
                and backend.store_dir is not None):
            # share the live backend's store so its workers' blob
            # replication lands where the planner looks for artifacts
            store_dir = backend.store_dir
        else:
            scratch_dir = tempfile.mkdtemp(prefix="repro-segments-")
            store_dir = scratch_dir
    store_dir = os.fspath(store_dir)
    backend, owned = resolve_backend(backend, jobs=jobs,
                                     store_dir=store_dir)
    try:
        run = _SegmentedRun(points, policy, jobs, store_dir, progress,
                            max_instructions)
        if backend.parallelism <= 1 or not run.pairs:
            # the fused serial path: byte-identical ledger to the unit
            # path (same policy resolution against the same jobs), one
            # streaming emulator instead of chained window units
            run.run_serial()
        else:
            run.run_units(backend)
        return SweepResult(results=run.reduce(), counters=run.counters,
                           elapsed=time.perf_counter() - started,
                           jobs=jobs)
    finally:
        if owned:
            backend.close()
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
