"""Regenerates Figure 11: optimizer pipeline-latency sweep.

Paper reference: performance degrades gracefully with extra rename
stages; even at four stages the speedup remains noteworthy.
"""

from conftest import publish

from repro.experiments import latency


def test_fig11_optimizer_latency(benchmark):
    rows = benchmark.pedantic(latency.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": 2})
    for row in rows:
        assert row.bars[0] >= row.bars[4] - 0.05  # graceful degradation
    publish("fig11_opt_latency", latency.format(rows))
