"""Service load harness: N concurrent submitters against one server.

Drives a live :class:`~repro.engine.service.ServiceServer` (real HTTP
over a loopback socket, not in-process manager calls) with several
submitter threads, each POSTing jobs and watching their event streams
to completion.  Client-side job latencies (submit -> terminal event)
give exact p50/p95/p99; a sampler thread scrapes ``/metrics`` during
the run for the server's view (peak queue depth, finished counters).

The machine-readable result lands in
``benchmarks/results/BENCH_service_load.json`` — throughput,
latency percentiles, peak queue depth — both under pytest and when
run standalone::

    PYTHONPATH=src python benchmarks/bench_service_load.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import RESULTS_DIR, publish  # noqa: E402

#: All submitters share one store, so the first job pays emulation +
#: simulation and later jobs hit warm artifacts — a realistic mixed
#: latency distribution that also exercises the store/cache metrics.
JOB_SPEC = {"kind": "sweep", "workloads": ["untoast"]}

SMOKE_WORKERS, SMOKE_JOBS_EACH = 2, 2
FULL_WORKERS, FULL_JOBS_EACH = 4, 4

#: Tenant-contention scenario: one hot tenant hammers POST /jobs into
#: its quota while two quiet tenants run a modest sequential load.
#: The isolation gate: the quiet tenants' p95 under contention stays
#: within 2x their solo baseline (plus a small absolute allowance —
#: these are warm millisecond-scale jobs, so a fixed floor absorbs
#: scheduler noise that a pure ratio would amplify).
TENANT_TOKENS = {"bench-hot": "hot", "bench-quiet1": "quiet1",
                 "bench-quiet2": "quiet2"}
HOT_TOKEN, QUIET_TOKENS = "bench-hot", ("bench-quiet1", "bench-quiet2")
CONTENTION_SMOKE_JOBS, CONTENTION_FULL_JOBS = 2, 3
CONTENTION_P95_RATIO = 2.0
CONTENTION_P95_FLOOR_SECONDS = 0.25

#: Counter families a loaded server's /metrics scrape must cover.
EXPECTED_METRICS = ("repro_jobs_submitted_total",
                    "repro_jobs_finished_total",
                    "repro_job_queue_depth",
                    "repro_store_put_bytes_total",
                    "repro_sim_runs_total")


class ServiceThread:
    """A JobManager + ServiceServer on a background asyncio loop."""

    def __init__(self, max_concurrent_jobs: int = 4,
                 auth_tokens: dict | None = None,
                 tenant_limits=None):
        self.port: int | None = None
        self._auth_tokens = auth_tokens
        self._tenant_limits = tenant_limits
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(max_concurrent_jobs)),
            daemon=True)
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service thread failed to start")

    async def _main(self, max_concurrent_jobs: int) -> None:
        from repro.engine.service import JobManager, ServiceServer
        manager = JobManager(jobs=1,
                             max_concurrent_jobs=max_concurrent_jobs,
                             tenant_limits=self._tenant_limits)
        server = ServiceServer(manager, port=0,
                               auth_tokens=self._auth_tokens)
        self.port = await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        serving = asyncio.create_task(server.serve_forever())
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            serving.cancel()
            await server.stop()
            await manager.close()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile over raw client-side samples."""
    if not sorted_values:
        return 0.0
    rank = round(q * (len(sorted_values) - 1))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


def _submitter(url: str, jobs_each: int, latencies: list[float],
               errors: list[str], lock: threading.Lock) -> None:
    from repro.engine.service import request_json, watch_job
    for _ in range(jobs_each):
        started = time.perf_counter()
        try:
            job = request_json(url, "POST", "/jobs", JOB_SPEC)
            last = watch_job(url, job["id"], lambda event: None,
                             timeout=300.0)
            elapsed = time.perf_counter() - started
            with lock:
                if last is None or last.kind != "job-finished":
                    errors.append(f"job {job['id']} ended "
                                  f"{getattr(last, 'kind', None)}")
                latencies.append(elapsed)
        except Exception as error:  # keep the other submitters going
            with lock:
                errors.append(f"{type(error).__name__}: {error}")


def _sample_metrics(url: str, stop: threading.Event,
                    peaks: dict) -> None:
    """Scrape /metrics?format=json during the run; track peak depth."""
    from repro.engine.service import request_json
    while not stop.is_set():
        try:
            snap = request_json(url, "GET", "/metrics?format=json",
                                timeout=10.0)
        except Exception:
            break  # server is shutting down
        depth = snap.get("gauges", {}) \
            .get("repro_job_queue_depth", {}).get("", 0)
        peaks["queue_depth"] = max(peaks.get("queue_depth", 0), depth)
        stop.wait(0.05)


def run_load(smoke: bool) -> dict:
    """Run the load scenario; returns the BENCH JSON payload."""
    from repro.engine.service import request_json
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    jobs_each = SMOKE_JOBS_EACH if smoke else FULL_JOBS_EACH
    latencies: list[float] = []
    errors: list[str] = []
    peaks: dict = {}
    lock = threading.Lock()
    service = ServiceThread()
    stop_sampler = threading.Event()
    started = time.perf_counter()
    try:
        sampler = threading.Thread(
            target=_sample_metrics,
            args=(service.url, stop_sampler, peaks), daemon=True)
        sampler.start()
        threads = [threading.Thread(
            target=_submitter,
            args=(service.url, jobs_each, latencies, errors, lock))
            for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop_sampler.set()
        sampler.join(5)
        snapshot = request_json(service.url, "GET",
                                "/metrics?format=json")
    finally:
        stop_sampler.set()
        service.close()
    if errors:
        raise AssertionError(f"load run had failures: {errors}")
    finished = snapshot["counters"] \
        .get("repro_jobs_finished_total", {}).get("", 0)
    latencies.sort()
    total_jobs = workers * jobs_each
    return {
        "smoke": smoke,
        "workers": workers,
        "jobs_per_worker": jobs_each,
        "jobs_total": total_jobs,
        "jobs_finished_total": finished,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_jobs_per_second": round(total_jobs / elapsed, 4),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 4),
        "latency_p95_seconds": round(_percentile(latencies, 0.95), 4),
        "latency_p99_seconds": round(_percentile(latencies, 0.99), 4),
        "latency_max_seconds": round(latencies[-1], 4)
        if latencies else 0.0,
        "peak_queue_depth": peaks.get("queue_depth", 0),
    }


def _tenant_jobs(url: str, token: str, count: int,
                 latencies: list[float], errors: list[str],
                 lock: threading.Lock) -> None:
    """One tenant's sequential submit->watch load (client latencies)."""
    from repro.engine.service import request_json, watch_job
    for _ in range(count):
        started = time.perf_counter()
        try:
            job = request_json(url, "POST", "/jobs", JOB_SPEC,
                               token=token)
            last = watch_job(url, job["id"], lambda event: None,
                             timeout=300.0, token=token)
            elapsed = time.perf_counter() - started
            with lock:
                if last is None or last.kind != "job-finished":
                    errors.append(f"job {job['id']} ended "
                                  f"{getattr(last, 'kind', None)}")
                latencies.append(elapsed)
        except Exception as error:
            with lock:
                errors.append(f"{type(error).__name__}: {error}")


def _hot_loop(url: str, token: str, stop: threading.Event,
              stats: dict, lock: threading.Lock) -> None:
    """Saturate one tenant: submit as fast as its limits allow.

    Every 429 is counted by kind (quota vs rate) and its
    ``Retry-After`` honored, so the loop models a well-behaved but
    greedy client pinned at its quota for the whole phase.
    """
    from repro.engine.service import ServiceError, request_json
    while not stop.is_set():
        try:
            request_json(url, "POST", "/jobs", JOB_SPEC, token=token)
            with lock:
                stats["accepted"] = stats.get("accepted", 0) + 1
        except ServiceError as error:
            if error.status != 429:
                with lock:
                    stats.setdefault("errors", []).append(str(error))
                return
            kind = "quota_429" if "quota" in str(error) else "rate_429"
            with lock:
                stats[kind] = stats.get(kind, 0) + 1
            stop.wait(min(error.retry_after or 0.05, 0.2))
        except Exception as error:
            with lock:
                stats.setdefault("errors", []).append(
                    f"{type(error).__name__}: {error}")
            return


def run_tenant_contention(smoke: bool) -> dict:
    """3-tenant isolation scenario; returns its BENCH JSON fragment.

    Phases: per-tenant warmup (unmeasured — pays the cold store
    namespace), solo baseline (each quiet tenant alone), then
    contention (both quiet tenants while the hot tenant hammers its
    quota).  Rate limits are set high so the *quota* — not the rate
    bucket — is what pins the hot tenant, mirroring the tentpole's
    "one tenant saturating its quota" wording.
    """
    from repro.engine.service import TenantLimits
    jobs_each = CONTENTION_SMOKE_JOBS if smoke else CONTENTION_FULL_JOBS
    limits = TenantLimits(max_active_jobs=2, rate_per_second=500.0,
                          burst=500)
    service = ServiceThread(auth_tokens=dict(TENANT_TOKENS),
                            tenant_limits=limits)
    errors: list[str] = []
    lock = threading.Lock()
    solo: list[float] = []
    contended: list[float] = []
    hot_stats: dict = {}
    try:
        for token in QUIET_TOKENS:  # warmup, unmeasured
            _tenant_jobs(service.url, token, 1, [], errors, lock)
        for token in QUIET_TOKENS:  # solo baseline, one at a time
            _tenant_jobs(service.url, token, jobs_each, solo, errors,
                         lock)
        stop_hot = threading.Event()
        hot = threading.Thread(
            target=_hot_loop,
            args=(service.url, HOT_TOKEN, stop_hot, hot_stats, lock),
            daemon=True)
        hot.start()
        quiet = [threading.Thread(
            target=_tenant_jobs,
            args=(service.url, token, jobs_each, contended, errors,
                  lock)) for token in QUIET_TOKENS]
        for thread in quiet:
            thread.start()
        for thread in quiet:
            thread.join()
        stop_hot.set()
        hot.join(10)
    finally:
        service.close()
    errors += hot_stats.pop("errors", [])
    if errors:
        raise AssertionError(f"tenant contention run had "
                             f"failures: {errors}")
    solo.sort()
    contended.sort()
    solo_p95 = _percentile(solo, 0.95)
    contended_p95 = _percentile(contended, 0.95)
    return {
        "tenants": 3,
        "quiet_jobs_each": jobs_each,
        "hot_accepted": hot_stats.get("accepted", 0),
        "hot_quota_429": hot_stats.get("quota_429", 0),
        "hot_rate_429": hot_stats.get("rate_429", 0),
        "quiet_solo_p95_seconds": round(solo_p95, 4),
        "quiet_contended_p95_seconds": round(contended_p95, 4),
        "p95_ratio": round(contended_p95 / solo_p95, 4)
        if solo_p95 else 0.0,
        "p95_gate_seconds": round(
            max(CONTENTION_P95_RATIO * solo_p95,
                solo_p95 + CONTENTION_P95_FLOOR_SECONDS), 4),
    }


def check_tenant_contention(payload: dict) -> None:
    """The isolation gate (also re-checked by CI over the JSON)."""
    assert payload["hot_quota_429"] >= 1, \
        f"hot tenant never hit its quota: {payload}"
    assert payload["quiet_contended_p95_seconds"] \
        <= payload["p95_gate_seconds"], \
        f"quiet tenants' p95 degraded past the gate: {payload}"


def _format(payload: dict) -> str:
    return "\n".join([
        "Service load: concurrent submitters over HTTP",
        f"workers: {payload['workers']} x "
        f"{payload['jobs_per_worker']} jobs "
        f"({payload['jobs_total']} total, spec {JOB_SPEC})",
        f"elapsed: {payload['elapsed_seconds']:.2f} s  "
        f"({payload['throughput_jobs_per_second']:.2f} jobs/s)",
        f"latency: p50 {payload['latency_p50_seconds']:.3f} s   "
        f"p95 {payload['latency_p95_seconds']:.3f} s   "
        f"p99 {payload['latency_p99_seconds']:.3f} s   "
        f"max {payload['latency_max_seconds']:.3f} s",
        f"peak queue depth: {payload['peak_queue_depth']}",
    ] + ([
        "Tenant contention: 1 hot tenant at quota + 2 quiet tenants",
        f"hot: {payload['tenant_contention']['hot_accepted']} accepted, "
        f"{payload['tenant_contention']['hot_quota_429']} quota 429s, "
        f"{payload['tenant_contention']['hot_rate_429']} rate 429s",
        f"quiet p95: solo "
        f"{payload['tenant_contention']['quiet_solo_p95_seconds']:.3f} s"
        f" -> contended "
        f"{payload['tenant_contention']['quiet_contended_p95_seconds']:.3f} s"
        f" (gate "
        f"{payload['tenant_contention']['p95_gate_seconds']:.3f} s)",
    ] if "tenant_contention" in payload else []))


def _publish(payload: dict, smoke: bool) -> None:
    publish("service_load", _format(payload), smoke, data=payload)
    # the canonical name, regardless of budget: downstream tooling
    # (and CI's load-smoke step) looks for BENCH_service_load.json
    if smoke:
        (RESULTS_DIR / "BENCH_service_load.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_service_load(smoke):
    payload = run_load(smoke)
    assert payload["jobs_finished_total"] >= payload["jobs_total"]
    for name in ("latency_p50_seconds", "latency_p95_seconds",
                 "latency_p99_seconds"):
        assert payload[name] >= 0.0
    assert payload["latency_p50_seconds"] \
        <= payload["latency_p95_seconds"] \
        <= payload["latency_p99_seconds"]
    payload["tenant_contention"] = run_tenant_contention(smoke)
    check_tenant_contention(payload["tenant_contention"])
    _publish(payload, smoke)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-budget mode (CI's load-smoke step)")
    args = parser.parse_args(argv)
    payload = run_load(args.smoke)
    payload["tenant_contention"] = run_tenant_contention(args.smoke)
    check_tenant_contention(payload["tenant_contention"])
    _publish(payload, args.smoke)
    print(_format(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
