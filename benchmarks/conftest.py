"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.
Formatted result tables are printed (visible with ``pytest -s``) and
written to ``benchmarks/results/`` so EXPERIMENTS.md can reference
them.  The experiment runner memoizes traces and simulations, so the
baseline runs are shared across figures within one pytest session.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
