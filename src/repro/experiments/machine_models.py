"""Figure 8: continuous optimization on other machine models.

Five bars per suite, all speedups relative to the *default baseline*
configuration (Section 5.3):

* ``fetch bound``        — doubled scheduler entries (4x16)
* ``fetch bound + opt``  — the same machine with the optimizer
* ``opt``                — the default machine with the optimizer
* ``exec bound``         — 8-wide fetch/decode/rename
* ``exec bound + opt``   — the same machine with the optimizer

The paper's headline findings: the optimizer helps an execution-bound
machine 3-5x more than widening fetch alone, and on the balanced
machine it matches or beats doubling the fetch width.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import geomean, prewarm_suites, run_workload

BAR_ORDER = ("fetch bound", "fetch bound + opt", "opt", "exec bound",
             "exec bound + opt")


@dataclass(frozen=True)
class MachineModelRow:
    """One suite's five Figure 8 bars (speedup vs. default baseline)."""

    suite: str
    bars: dict[str, float]


def _configs():
    base = default_config()
    return base, {
        "fetch bound": base.fetch_bound(),
        "fetch bound + opt": base.fetch_bound().with_optimizer(),
        "opt": base.with_optimizer(),
        "exec bound": base.execution_bound(),
        "exec bound + opt": base.execution_bound().with_optimizer(),
    }


def run(scale: int = 1, workloads_per_suite: int | None = None,
        jobs: int | None = None) -> list[MachineModelRow]:
    """Measure Figure 8 (optionally on the first N workloads per suite)."""
    base, variants = _configs()
    lists = prewarm_suites([base, *variants.values()], scale, jobs,
                           workloads_per_suite)
    rows = []
    for suite in SUITES:
        suite_list = lists[suite]
        bars = {}
        for label, config in variants.items():
            values = []
            for workload in suite_list:
                baseline = run_workload(workload.name, base, scale)
                variant = run_workload(workload.name, config, scale)
                values.append(baseline.cycles / variant.cycles)
            bars[label] = geomean(values)
        rows.append(MachineModelRow(suite=suite, bars=bars))
    return rows


def format(rows: list[MachineModelRow]) -> str:
    """Render the Figure 8 bars as text."""
    table_rows = [[row.suite] + [row.bars[label] for label in BAR_ORDER]
                  for row in rows]
    return format_table(
        "Figure 8: performance relative to the default configuration",
        ["suite", *BAR_ORDER],
        table_rows)
