"""Regenerates Figure 11: optimizer pipeline-latency sweep.

Paper reference: performance degrades gracefully with extra rename
stages; even at four stages the speedup remains noteworthy.
"""

from conftest import publish, rows_data

from repro.experiments import latency


def test_fig11_optimizer_latency(benchmark, smoke):
    per_suite = 1 if smoke else 2
    rows = benchmark.pedantic(latency.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": per_suite})
    if not smoke:
        for row in rows:
            # graceful degradation with extra rename stages
            assert row.bars[0] >= row.bars[4] - 0.05
    publish("fig11_opt_latency", latency.format(rows), smoke,
            data={"rows": rows_data(rows)})
