"""Property-based correctness fuzzing of the whole stack.

Hypothesis generates random (but guaranteed-terminating) programs:
counted loops over random ALU operations, memory traffic into a small
array, and forward branches.  Each program runs through

* the functional emulator (the oracle), then
* the baseline pipeline, and
* the optimized pipeline with strict verification enabled.

The optimizer checks every value it produces (early executions,
rename-time addresses, branch directions, forwarded loads) against the
oracle and raises ``VerificationError`` on any disagreement — so this
test is a direct machine-checked proof obligation for the paper's
"correctness is verified through strict expression and value checking"
claim, across thousands of random dataflow shapes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.functional import run_program
from repro.isa import assemble
from repro.uarch import default_config, optimized_config, simulate_trace

_ALU_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
            "s4add", "s8add", "cmpeq", "cmplt", "cmpule", "mul"]
_REGS = [f"r{n}" for n in range(1, 9)]


@st.composite
def programs(draw):
    """A random terminating program over r1-r8 and a 32-quad array."""
    lines = [".data", "arr: .space 256", ".text"]
    # Seed registers with random constants.
    for reg in _REGS:
        lines.append(f"        ldi {reg}, {draw(st.integers(-100, 100))}")
    iterations = draw(st.integers(min_value=2, max_value=10))
    lines.append(f"        ldi r20, {iterations}")
    lines.append("        ldi r21, arr")
    lines.append("top:")
    body_len = draw(st.integers(min_value=3, max_value=14))
    for index in range(body_len):
        kind = draw(st.sampled_from(
            ["alu", "alu", "alu", "imm", "load", "store", "skip"]))
        if kind == "alu":
            op = draw(st.sampled_from(_ALU_OPS))
            dst = draw(st.sampled_from(_REGS))
            a = draw(st.sampled_from(_REGS))
            b = draw(st.sampled_from(
                _REGS + [str(draw(st.integers(-16, 16)))]))
            lines.append(f"        {op} {dst}, {a}, {b}")
        elif kind == "imm":
            dst = draw(st.sampled_from(_REGS))
            lines.append(f"        ldi {dst}, "
                         f"{draw(st.integers(-1000, 1000))}")
        elif kind == "load":
            dst = draw(st.sampled_from(_REGS))
            offset = draw(st.integers(0, 31)) * 8
            lines.append(f"        ldq {dst}, {offset}(r21)")
        elif kind == "store":
            src = draw(st.sampled_from(_REGS))
            offset = draw(st.integers(0, 31)) * 8
            lines.append(f"        stq {src}, {offset}(r21)")
        else:  # forward skip over one instruction
            cond = draw(st.sampled_from(_REGS))
            mnem = draw(st.sampled_from(["beq", "bne", "blt", "bge"]))
            filler = draw(st.sampled_from(_REGS))
            lines.append(f"        {mnem} {cond}, skip_{index}")
            lines.append(f"        add {filler}, {filler}, 1")
            lines.append(f"skip_{index}:")
    lines.append("        sub r20, r20, 1")
    lines.append("        bne r20, top")
    lines.append("        halt")
    return "\n".join(lines)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_optimizer_never_produces_wrong_values(source):
    """The optimized machine retires every instruction, verified."""
    oracle = run_program(assemble(source), max_instructions=100_000)
    assert oracle.halted
    stats = simulate_trace(oracle.trace, optimized_config())
    assert stats.retired == len(oracle.trace)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_baseline_and_optimized_retire_identically(source):
    """Both machines replay the same architectural work."""
    oracle = run_program(assemble(source), max_instructions=100_000)
    base = simulate_trace(oracle.trace, default_config())
    opt = simulate_trace(oracle.trace, optimized_config())
    assert base.retired == opt.retired == len(oracle.trace)
    assert base.cycles > 0 and opt.cycles > 0


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs(), st.sampled_from([(0, 0), (1, 0), (3, 0), (3, 1)]))
def test_depth_variants_all_verify(source, depths):
    """Figure 10's configurations are all value-correct."""
    add_depth, mem_depth = depths
    oracle = run_program(assemble(source), max_instructions=100_000)
    config = optimized_config(add_depth=add_depth, mem_depth=mem_depth)
    stats = simulate_trace(oracle.trace, config)
    assert stats.retired == len(oracle.trace)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs(), st.sampled_from([0, 1, 5, 10]))
def test_feedback_delay_variants_all_verify(source, delay):
    """Figure 12's configurations are all value-correct."""
    oracle = run_program(assemble(source), max_instructions=100_000)
    stats = simulate_trace(oracle.trace, optimized_config(vf_delay=delay))
    assert stats.retired == len(oracle.trace)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_feedback_only_mode_verifies(source):
    """Figure 9's eager-bypassing mode is value-correct."""
    oracle = run_program(assemble(source), max_instructions=100_000)
    stats = simulate_trace(oracle.trace, optimized_config(enable_opt=False))
    assert stats.retired == len(oracle.trace)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_tiny_mbc_under_pressure_verifies(source):
    """A 4-entry MBC thrashing constantly must stay correct."""
    oracle = run_program(assemble(source), max_instructions=100_000)
    stats = simulate_trace(oracle.trace, optimized_config(mbc_entries=4))
    assert stats.retired == len(oracle.trace)
