"""Workload registry: the paper's Table 1 experimental workload.

Groups the 22 kernels by suite (SPECint, SPECfp, mediabench) and
provides lookup, assembly, and trace-generation helpers used by the
experiment harness and the benchmarks.
"""

from __future__ import annotations

from ..functional.emulator import EmulationResult, run_program
from ..isa.assembler import assemble
from ..isa.program import Program
from . import mediabench, specfp, specint
from .common import Workload

SUITES = ("SPECint", "SPECfp", "mediabench")

ALL_WORKLOADS: list[Workload] = (
    specint.WORKLOADS + specfp.WORKLOADS + mediabench.WORKLOADS)

_BY_NAME = {workload.name: workload for workload in ALL_WORKLOADS}
_BY_ABBREV = {workload.abbrev: workload for workload in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    """Look a workload up by full name or paper abbreviation."""
    workload = _BY_NAME.get(name) or _BY_ABBREV.get(name)
    if workload is None:
        raise KeyError(f"unknown workload {name!r}; known: "
                       f"{sorted(_BY_NAME)}")
    return workload


def suite_workloads(suite: str) -> list[Workload]:
    """All workloads belonging to *suite*."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; known: {SUITES}")
    return [w for w in ALL_WORKLOADS if w.suite == suite]


def build_program(name: str, scale: int = 1) -> Program:
    """Assemble the named workload at *scale*."""
    return assemble(get_workload(name).source(scale))


def build_trace(name: str, scale: int = 1,
                max_instructions: int = 20_000_000) -> EmulationResult:
    """Assemble and functionally execute the named workload."""
    program = build_program(name, scale)
    return run_program(program, max_instructions=max_instructions)
