"""Architectural (functional) emulator and dynamic trace format.

The emulator executes a :class:`~repro.isa.program.Program` and records
a :class:`TraceEntry` per retired instruction.  The trace is both

* the **oracle**: true values, effective addresses, and branch outcomes
  used to verify every optimization the continuous optimizer performs
  (the paper's "strict expression and value checking"), and
* the **input to the timing model**: the cycle-level pipeline is
  trace-driven, replaying this dynamic instruction stream.

This mirrors the paper's SimpleScalar-based methodology, where a
functional core drives a detailed custom timing model.

The trace can be produced two ways:

* :meth:`Emulator.run` materializes the whole stream as an
  :class:`EmulationResult` (the original API), or
* :meth:`Emulator.iter_trace` yields entries **lazily** from the
  current architectural state, and :meth:`Emulator.checkpoint` /
  :meth:`Emulator.restore` snapshot that state (registers, memory,
  PC, retired-instruction count) so emulation of trace segment *k*
  can start from segment *k-1*'s boundary without replaying the
  prefix.  This is what the segmented sweep engine
  (:mod:`repro.engine.segments`) builds on.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Iterator

from ..isa.instructions import Imm, Instruction, Reg
from ..isa.opcodes import OpClass, Opcode
from ..isa.program import INSTR_BYTES, Program, STACK_BASE
from ..isa.registers import (NUM_FP_REGS, NUM_INT_REGS, STACK_POINTER_REG,
                             is_fp_reg, is_zero_reg)
from . import alu
from .memory import Memory


class EmulationError(Exception):
    """Raised when a program performs an illegal operation."""


class EmulationLimit(EmulationError):
    """Raised when a program exceeds the dynamic instruction budget."""


@dataclass(frozen=True)
class TraceEntry:
    """One dynamically executed instruction with its oracle values."""

    seq: int
    pc: int
    instr: Instruction
    src_values: tuple[int | float, ...]
    result: int | float | None
    addr: int | None
    taken: bool | None
    next_pc: int

    @property
    def opcode(self) -> Opcode:
        return self.instr.opcode

    @property
    def is_load(self) -> bool:
        return self.instr.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.spec.is_store

    @property
    def is_control(self) -> bool:
        return self.instr.is_control

    @property
    def store_value(self) -> int | float:
        """The value a store writes to memory."""
        if not self.is_store:
            raise ValueError("store_value on a non-store")
        return self.src_values[0]


@dataclass(frozen=True)
class Checkpoint:
    """A resumable snapshot of architectural state.

    Captures everything :meth:`Emulator.restore` needs to continue
    execution exactly where :meth:`Emulator.checkpoint` left off:
    registers, the sparse memory image, the PC, and the dynamic
    instruction count (so trace ``seq`` numbers keep running across
    segment boundaries).
    """

    pc: int
    instret: int
    halted: bool
    int_regs: tuple[int, ...]
    fp_regs: tuple[float, ...]
    memory_image: dict[int, int]


@dataclass
class EmulationResult:
    """Everything the emulator produced for one program run."""

    trace: list[TraceEntry]
    halted: bool
    int_regs: list[int]
    fp_regs: list[float]
    memory: Memory

    @property
    def instruction_count(self) -> int:
        return len(self.trace)

    def state_dict(self) -> dict:
        """Canonical comparable form of the final architectural state.

        FP registers are compared as IEEE-754 bit patterns so the form
        is total (NaNs compare by identity of representation, not by
        ``==``).  This is the emulator side of the differential
        harness's state checks; :class:`ArchState` produces the same
        shape from the retirement side.
        """
        return _state_dict(self.int_regs, self.fp_regs,
                           self.memory.snapshot())


def _state_dict(int_regs, fp_regs, memory_image: dict[int, int]) -> dict:
    bits = [struct.unpack("<Q", struct.pack("<d", v))[0] for v in fp_regs]
    # Zero bytes are indistinguishable from never-written addresses
    # architecturally (BSS semantics), so drop them before comparing.
    image = {addr: byte for addr, byte in memory_image.items() if byte}
    return {"int_regs": tuple(int_regs), "fp_bits": tuple(bits),
            "memory": image}


class ArchState:
    """Architectural state replayed entry-by-entry at **retirement**.

    The timing pipeline is trace-driven, so it never recomputes
    values — but it does decide *which* entries retire and in what
    order.  Feeding every retired :class:`TraceEntry` through an
    ``ArchState`` rebuilds the architectural registers and memory that
    retirement order implies; if the pipeline drops, duplicates, or
    reorders entries (across segments, optimizer variants, or drain
    paths), the final state diverges from the emulator's.  The
    differential harness (:mod:`repro.engine.differential`) compares
    exactly that.
    """

    def __init__(self, program: Program):
        self.int_regs = [0] * NUM_INT_REGS
        self.fp_regs = [0.0] * NUM_FP_REGS
        self.int_regs[STACK_POINTER_REG] = STACK_BASE
        self.memory = Memory(program.data)
        self.applied = 0

    def apply(self, entry: TraceEntry) -> None:
        """Fold one retired trace entry into the architectural state."""
        instr = entry.instr
        spec = instr.spec
        if spec.is_store:
            if instr.opcode is Opcode.STF:
                self.memory.store_double(entry.addr,
                                         float(entry.store_value))
            else:
                self.memory.store(entry.addr, int(entry.store_value),
                                  spec.mem_size)
        elif instr.dst is not None and entry.result is not None:
            dst = instr.dst
            if not is_zero_reg(dst):
                if is_fp_reg(dst):
                    self.fp_regs[dst - NUM_INT_REGS] = float(entry.result)
                else:
                    self.int_regs[dst] = alu.to_signed64(int(entry.result))
        self.applied += 1

    def state_dict(self) -> dict:
        """The same canonical form as :meth:`EmulationResult.state_dict`."""
        return _state_dict(self.int_regs, self.fp_regs,
                           self.memory.snapshot())


#: Lazily bound telemetry registry — the functional layer must not
#: import :mod:`repro.engine` at module level (the engine's package
#: init imports this module), so the registry binds at first use.
_TELEMETRY = None


def _telemetry():
    global _TELEMETRY
    if _TELEMETRY is None:
        from ..engine.telemetry import TELEMETRY
        _TELEMETRY = TELEMETRY
    return _TELEMETRY


class Emulator:
    """Executes programs architecturally, producing oracle traces."""

    def __init__(self, program: Program, max_instructions: int = 5_000_000):
        self._program = program
        self._max_instructions = max_instructions
        self._int_regs = [0] * NUM_INT_REGS
        self._fp_regs = [0.0] * NUM_FP_REGS
        self._int_regs[STACK_POINTER_REG] = STACK_BASE
        self._memory = Memory(program.data)
        self._pc = program.entry
        self._instret = 0
        self._halted = False

    @property
    def memory(self) -> Memory:
        return self._memory

    @property
    def halted(self) -> bool:
        """Whether execution has reached ``halt``."""
        return self._halted

    @property
    def instruction_count(self) -> int:
        """Dynamic instructions retired so far (the next entry's seq)."""
        return self._instret

    def run(self) -> EmulationResult:
        """Run until ``halt`` (or the instruction budget is exhausted).

        Telemetry is per-run (one clock read pair around the whole
        emulation; :meth:`iter_trace` itself stays uninstrumented so
        lazy segment streaming pays nothing per instruction).
        """
        started_ns = time.perf_counter_ns()
        trace = list(self.iter_trace())
        telemetry = _telemetry()
        if telemetry.enabled:
            elapsed = (time.perf_counter_ns() - started_ns) / 1e9
            telemetry.counter("repro_emu_runs_total").inc()
            telemetry.counter("repro_emu_instructions_total").inc(
                len(trace))
            telemetry.histogram("repro_emu_run_seconds").observe(elapsed)
            if elapsed > 0:
                telemetry.gauge("repro_emu_insns_per_second").set(
                    len(trace) / elapsed)
        return EmulationResult(trace=trace, halted=self._halted,
                               int_regs=list(self._int_regs),
                               fp_regs=list(self._fp_regs),
                               memory=self._memory)

    def iter_trace(self) -> Iterator[TraceEntry]:
        """Lazily yield trace entries from the current state.

        The generator advances architectural state one instruction per
        item pulled, so a consumer that stops after *n* items leaves
        the emulator exactly *n* instructions further along — at which
        point :meth:`checkpoint` captures a clean segment boundary.
        Resuming iteration (from the same generator or a fresh one)
        continues the stream with monotonically increasing ``seq``.
        """
        while not self._halted:
            if self._instret >= self._max_instructions:
                raise EmulationLimit(
                    f"exceeded {self._max_instructions} dynamic instructions"
                    f" at pc={self._pc:#x}")
            entry = self.step(self._instret)
            if entry is None:
                self._halted = True
                return
            self._instret += 1
            yield entry

    # ------------------------------------------------------------------
    # checkpoint / restore of architectural state
    # ------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the architectural state for a later :meth:`restore`."""
        return Checkpoint(pc=self._pc, instret=self._instret,
                          halted=self._halted,
                          int_regs=tuple(self._int_regs),
                          fp_regs=tuple(self._fp_regs),
                          memory_image=self._memory.snapshot())

    def restore(self, state: Checkpoint) -> None:
        """Rewind/forward the emulator to a :meth:`checkpoint` state.

        The checkpoint must come from an emulator running the same
        program; nothing about the static code image is snapshotted.
        """
        self._pc = state.pc
        self._instret = state.instret
        self._halted = state.halted
        self._int_regs = list(state.int_regs)
        self._fp_regs = list(state.fp_regs)
        self._memory = Memory(state.memory_image)

    # ------------------------------------------------------------------
    # single-step execution
    # ------------------------------------------------------------------

    def step(self, seq: int) -> TraceEntry | None:
        """Execute one instruction; return its trace entry (None = halt)."""
        instr = self._program.at(self._pc)
        opcode = instr.opcode
        if opcode is Opcode.HALT:
            return None
        spec = instr.spec
        src_values = tuple(self._read(src) for src in instr.srcs)
        result: int | float | None = None
        addr: int | None = None
        taken: bool | None = None
        next_pc = self._pc + INSTR_BYTES

        if spec.is_load:
            addr = alu.to_signed64(src_values[0] + instr.disp)
            result = self._do_load(opcode, addr, spec)
        elif spec.is_store:
            addr = alu.to_signed64(src_values[1] + instr.disp)
            self._do_store(opcode, addr, src_values[0], spec)
            result = src_values[0]
        elif spec.is_branch:
            taken = alu.branch_taken(spec.cond, src_values[0])
            if taken:
                next_pc = int(instr.target)
        elif spec.is_jump:
            taken = True
            if spec.is_indirect:
                next_pc = int(src_values[0])
            else:
                next_pc = int(instr.target)
            if opcode is Opcode.JSR:
                result = self._pc + INSTR_BYTES
        elif opcode is Opcode.LDA:
            result = alu.evaluate_int(Opcode.LDA, src_values[0], instr.disp)
        elif opcode is Opcode.ITOF:
            result = alu.convert_itof(src_values[0])
        elif opcode is Opcode.FTOI:
            result = alu.convert_ftoi(src_values[0])
        elif spec.op_class is OpClass.FP:
            result = alu.evaluate_fp(opcode, *src_values)
        elif opcode is Opcode.NOP:
            result = None
        else:
            result = alu.evaluate_int(opcode, *src_values)

        if instr.dst is not None and result is not None:
            self._write(instr.dst, result)

        entry = TraceEntry(seq=seq, pc=self._pc, instr=instr,
                           src_values=src_values, result=result, addr=addr,
                           taken=taken, next_pc=next_pc)
        self._pc = next_pc
        return entry

    # ------------------------------------------------------------------
    # register and memory access helpers
    # ------------------------------------------------------------------

    def _read(self, src: Reg | Imm) -> int | float:
        if isinstance(src, Imm):
            return src.value
        index = src.index
        if is_zero_reg(index):
            return 0.0 if is_fp_reg(index) else 0
        if is_fp_reg(index):
            return self._fp_regs[index - NUM_INT_REGS]
        return self._int_regs[index]

    def _write(self, dst: int, value: int | float) -> None:
        if is_zero_reg(dst):
            return
        if is_fp_reg(dst):
            self._fp_regs[dst - NUM_INT_REGS] = float(value)
        else:
            self._int_regs[dst] = alu.to_signed64(int(value))

    def _do_load(self, opcode: Opcode, addr: int, spec) -> int | float:
        if addr < 0:
            raise EmulationError(f"load from negative address {addr:#x}")
        if opcode is Opcode.LDF:
            return self._memory.load_double(addr)
        return self._memory.load(addr, spec.mem_size, signed=spec.mem_signed)

    def _do_store(self, opcode: Opcode, addr: int, value: int | float,
                  spec) -> None:
        if addr < 0:
            raise EmulationError(f"store to negative address {addr:#x}")
        if opcode is Opcode.STF:
            self._memory.store_double(addr, float(value))
        else:
            self._memory.store(addr, int(value), spec.mem_size)


def run_program(program: Program,
                max_instructions: int = 5_000_000) -> EmulationResult:
    """Convenience wrapper: emulate *program* and return the result."""
    return Emulator(program, max_instructions=max_instructions).run()
