"""Symbolic register values: ``(preg << scale) ± offset``.

Section 3.1 of the paper: the optimizer maintains, per integer
architectural register, a symbolic expression of the form
``(reg << scale) ± offset`` where ``reg`` is a physical register,
``scale`` is a two-bit shift (0-3), and ``offset`` is a 64-bit
immediate.  A constant is encoded by pointing ``reg`` at the hardwired
zero register; here we use ``base is None``.

:class:`SymVal` is an immutable named tuple — symbolic values are
created on almost every renamed instruction, so construction cost
matters.  The module-level helpers (:func:`const`, :func:`plain`,
:func:`add_const`, :func:`shift_left`) build values through the raw
tuple constructor (their arguments are valid by construction) and
intern the common cases; direct ``SymVal(...)`` construction keeps the
field validation.
"""

from __future__ import annotations

from collections import namedtuple

from ..functional.alu import to_signed64

#: Hardware limit on the scale field (two bits).
MAX_SCALE = 3

_SymFields = namedtuple("_SymFields", ("base", "scale", "offset"))


class SymVal(_SymFields):
    """One symbolic value: ``(base << scale) + offset`` or a constant.

    ``base`` is a physical register index; ``None`` encodes a constant
    whose value lives in ``offset``.
    """

    __slots__ = ()

    def __new__(cls, base, scale=0, offset=0):
        if base is None and scale != 0:
            raise ValueError("constants must have scale 0")
        if not 0 <= scale <= MAX_SCALE:
            raise ValueError(f"scale out of range: {scale}")
        return tuple.__new__(cls, (base, scale, offset))

    @property
    def is_const(self) -> bool:
        """True if this value is a known 64-bit constant."""
        return self[0] is None

    @property
    def const_value(self) -> int:
        """The constant's value (only valid when :attr:`is_const`)."""
        if self[0] is not None:
            raise ValueError(f"{self} is not a constant")
        return self[2]

    @property
    def is_plain(self) -> bool:
        """True if this is just a physical register, unshifted, offset 0."""
        return self[0] is not None and self[1] == 0 and self[2] == 0

    def evaluate(self, base_value: int) -> int:
        """The concrete value given the base register's value."""
        if self[0] is None:
            return self[2]
        return to_signed64((base_value << self[1]) + self[2])

    def __str__(self) -> str:
        if self.base is None:
            return f"#{self.offset}"
        text = f"p{self.base}"
        if self.scale:
            text = f"(p{self.base}<<{self.scale})"
        if self.offset:
            sign = "+" if self.offset >= 0 else "-"
            text = f"{text}{sign}{abs(self.offset)}"
        return text


_tuple_new = tuple.__new__

#: Interned small constants and the zero constant — the overwhelmingly
#: common values (loop bounds, displacements, flag results).
_SMALL_CONSTS = tuple(_tuple_new(SymVal, (None, 0, v))
                      for v in range(-256, 257))
ZERO = _SMALL_CONSTS[256]

_INT64_MAX = (1 << 63) - 1
_INT64_MIN = -(1 << 63)


def const(value: int) -> SymVal:
    """A known constant value."""
    if -256 <= value <= 256:
        return _SMALL_CONSTS[value + 256]
    if value > _INT64_MAX or value < _INT64_MIN:
        value = to_signed64(value)
    return _tuple_new(SymVal, (None, 0, value))


def plain(preg: int) -> SymVal:
    """The value of physical register *preg*, unmodified."""
    return _tuple_new(SymVal, (preg, 0, 0))


def add_const(sym: SymVal, value: int) -> SymVal:
    """``sym + value`` — always representable (offset arithmetic)."""
    offset = sym[2] + value
    if offset > _INT64_MAX or offset < _INT64_MIN:
        offset = to_signed64(offset)
    return _tuple_new(SymVal, (sym[0], sym[1], offset))


def shift_left(sym: SymVal, amount: int) -> SymVal | None:
    """``sym << amount`` if representable in the 2-bit scale field.

    Returns None when the shifted form does not fit (scale would
    exceed :data:`MAX_SCALE`); constants always fold.
    """
    if sym[0] is None:
        return const(to_signed64(sym[2] << (amount & 0x3F)))
    if amount < 0:
        return None
    scale = sym[1] + amount
    if scale > MAX_SCALE:
        return None
    return _tuple_new(SymVal, (sym[0], scale,
                               to_signed64(sym[2] << amount)))


def fold(sym: SymVal, base_value: int) -> SymVal:
    """Replace the base register with its now-known value.

    This is the value-feedback integration step (Section 3.3): a table
    entry whose base physical register matches a produced value is
    rewritten as a constant.
    """
    return const(sym.evaluate(base_value))
