"""Smoke tests for the experiment harness (one per table/figure)."""

import pytest

from repro.experiments import (depth, feedback, latency, machine_models,
                               runner, speedup, table1, table3, vf_delay)
from repro.experiments.report import format_percent, format_table
from repro.uarch import default_config

FAST = ["mcf", "applu", "untoast"]  # one per suite, small traces


class TestRunner:
    def test_trace_memoized(self):
        runner.clear_caches()
        first = runner.get_trace("mcf")
        second = runner.get_trace("mcf")
        assert first is second

    def test_stats_memoized(self):
        runner.clear_caches()
        config = default_config()
        first = runner.run_workload("mcf", config)
        second = runner.run_workload("mcf", config)
        assert first is second

    def test_speedup_helper(self):
        config = default_config()
        value = runner.speedup("mcf", config, config.with_optimizer())
        assert 0.5 < value < 2.0

    def test_geomean(self):
        assert runner.geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            runner.geomean([])

    def test_geomean_floor_clamps_degenerate_values(self):
        # Regression: adversarial synth programs (e.g. the empty
        # synth:branchy@...,iters=0 program) produce zero-IPC points;
        # with a floor they drag the aggregate down instead of
        # raising, without one they still raise loudly.
        assert runner.geomean([0.0, 4.0], floor=1.0) \
            == pytest.approx(2.0)
        assert runner.geomean([2.0, 8.0], floor=1e-9) \
            == pytest.approx(4.0)  # healthy values unaffected
        with pytest.raises(ValueError):
            runner.geomean([0.0, 4.0])
        with pytest.raises(ValueError):
            runner.geomean([1.0], floor=0.0)

    def test_speedup_of_degenerate_empty_program_is_one(self):
        # The empty synthetic program retires nothing on both
        # machines; speedup must be 1.0, not a ZeroDivisionError.
        runner.clear_caches()
        config = default_config()
        value = runner.speedup("synth:branchy@seed=0,iters=0", config,
                               config.with_optimizer())
        assert value == 1.0

    def test_workload_names_filtering(self):
        assert len(runner.workload_names()) == 22
        assert len(runner.workload_names(suite="SPECfp")) == 6
        assert runner.workload_names(subset=["untst"]) == ["untoast"]


class TestReport:
    def test_format_table_aligns(self):
        text = format_table("T", ["a", "bb"], [["x", 1.23456], ["yy", 2.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_percent(self):
        assert format_percent(0.262) == "26.2%"


class TestFigure6:
    def test_rows_and_formatting(self):
        rows = speedup.run(workloads=FAST)
        assert len(rows) == 3
        for row in rows:
            assert 0.5 < row.speedup < 2.0
        text = speedup.format(rows)
        assert "Figure 6" in text
        averages = speedup.suite_averages(rows)
        assert set(averages) == {"SPECint", "SPECfp", "mediabench"}


class TestTable1:
    def test_inventory(self):
        rows = table1.run()
        assert len(rows) == 22
        assert all(row.instructions > 1000 for row in rows)
        assert "Table 1" in table1.format(rows)


class TestTable3:
    def test_rows_have_paper_reference(self):
        rows = table3.run()
        assert [row.suite for row in rows] == ["SPECint", "SPECfp",
                                               "mediabench", "avg"]
        for row in rows:
            assert 0 <= row.exec_early <= 100
            assert 0 <= row.loads_removed <= 100
        text = table3.format(rows)
        assert "26.0" in text  # the paper's avg exec-early appears


class TestSensitivityFigures:
    def test_figure8_bars(self):
        rows = machine_models.run(workloads_per_suite=1)
        assert len(rows) == 3
        for row in rows:
            assert set(row.bars) == set(machine_models.BAR_ORDER)
        assert "Figure 8" in machine_models.format(rows)

    def test_figure9_bars(self):
        rows = feedback.run(workloads_per_suite=1)
        for row in rows:
            assert row.feedback_plus_opt > 0
            assert row.feedback_only > 0
        assert "Figure 9" in feedback.format(rows)

    def test_figure10_bars_monotone_interface(self):
        rows = depth.run(workloads_per_suite=1)
        for row in rows:
            assert len(row.bars) == 4
        assert "Figure 10" in depth.format(rows)

    def test_figure11_bars(self):
        rows = latency.run(workloads_per_suite=1)
        for row in rows:
            # Fewer extra stages can only help (or tie).
            assert row.bars[0] >= row.bars[4] - 0.05
        assert "Figure 11" in latency.format(rows)

    def test_figure12_bars_insensitive(self):
        rows = vf_delay.run(workloads_per_suite=1)
        for row in rows:
            values = list(row.bars.values())
            # Paper: essentially no sensitivity to feedback delay.
            assert max(values) - min(values) < 0.2
        assert "Figure 12" in vf_delay.format(rows)
