"""Unit tests for the gshare/BTB/RAS front-end predictor."""

from repro.isa import Opcode, Reg
from repro.isa.instructions import Instruction
from repro.uarch import (BranchTargetBuffer, FrontEndPredictor,
                         GsharePredictor, ReturnAddressStack)


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor(history_bits=8)
        for _ in range(8):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_always_not_taken(self):
        predictor = GsharePredictor(history_bits=8)
        for _ in range(8):
            predictor.update(0x1000, False)
        assert not predictor.predict(0x1000)

    def test_two_bit_hysteresis(self):
        predictor = GsharePredictor(history_bits=8)
        pc = 0x1000
        # Saturate taken, then one not-taken must not flip the
        # prediction (counter drops 3 -> 2, still predicting taken).
        history = []
        for _ in range(4):
            predictor.update(pc, True)
            history.append(True)
        # Recreate the index state: same history, same pc.
        assert predictor.predict(pc)

    def test_alternating_pattern_learned_via_history(self):
        predictor = GsharePredictor(history_bits=8)
        pc = 0x2000
        outcomes = [True, False] * 40
        correct = 0
        for outcome in outcomes:
            if predictor.predict(pc) == outcome:
                correct += 1
            predictor.update(pc, outcome)
        # After warm-up the history disambiguates the alternation.
        assert correct > 60


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16)
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(entries=16)
        btb.install(0x1000, 0x2000)
        btb.install(0x1000 + 16 * 4, 0x3000)  # same index, different tag
        assert btb.lookup(0x1000) is None
        assert btb.lookup(0x1000 + 16 * 4) == 0x3000

    def test_power_of_two_required(self):
        import pytest
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=100)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop(self):
        assert ReturnAddressStack().pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


def _branch(pc=0x1000):
    return Instruction(opcode=Opcode.BNE, srcs=(Reg(1),),
                       target=0x2000, pc=pc)


def _jsr(pc=0x1000):
    return Instruction(opcode=Opcode.JSR, dst=26, target=0x3000, pc=pc)


def _ret(pc=0x1000):
    return Instruction(opcode=Opcode.RET, srcs=(Reg(26),), pc=pc)


class TestFrontEndPredictor:
    def test_correct_prediction_after_training(self):
        fe = FrontEndPredictor()
        for _ in range(8):
            fe.predict(_branch(), True, 0x2000)
        mispredicted, bubble = fe.predict(_branch(), True, 0x2000)
        assert not mispredicted
        assert not bubble  # BTB trained too

    def test_btb_bubble_on_first_taken(self):
        fe = FrontEndPredictor()
        # Default counters predict weakly-taken, so the direction is
        # right but the target is unknown: a decode-redirect bubble.
        mispredicted, bubble = fe.predict(_branch(), True, 0x2000)
        assert not mispredicted
        assert bubble
        assert fe.btb_misses == 1

    def test_direction_mispredict_detected(self):
        fe = FrontEndPredictor()
        for _ in range(8):
            fe.predict(_branch(), True, 0x2000)
        mispredicted, _ = fe.predict(_branch(), False, 0x1004)
        assert mispredicted
        assert fe.cond_mispredicts >= 1

    def test_ras_predicts_matching_return(self):
        fe = FrontEndPredictor()
        fe.predict(_jsr(pc=0x1000), True, 0x3000)
        mispredicted, _ = fe.predict(_ret(pc=0x3000), True, 0x1004)
        assert not mispredicted

    def test_ras_mispredicts_mismatched_return(self):
        fe = FrontEndPredictor()
        fe.predict(_jsr(pc=0x1000), True, 0x3000)
        mispredicted, _ = fe.predict(_ret(pc=0x3000), True, 0x9999)
        assert mispredicted
        assert fe.indirect_mispredicts == 1

    def test_jmp_uses_btb(self):
        fe = FrontEndPredictor()
        jmp = Instruction(opcode=Opcode.JMP, srcs=(Reg(5),), pc=0x1000)
        mispredicted, _ = fe.predict(jmp, True, 0x4000)
        assert mispredicted  # cold BTB
        mispredicted, _ = fe.predict(jmp, True, 0x4000)
        assert not mispredicted  # trained

    def test_statistics_counted(self):
        fe = FrontEndPredictor()
        fe.predict(_branch(), True, 0x2000)
        fe.predict(_branch(), False, 0x1004)
        assert fe.cond_branches == 2
