"""repro.engine: parallel sweep engine with a persistent artifact store.

The engine turns the repo's one-figure-at-a-time experiment harness
into a design-space-exploration tool:

* :mod:`repro.engine.campaign` — declarative sweep specs: a grid of
  ``(workload x scale x MachineConfig variant)`` points built from
  named parameter axes (dotted config paths such as
  ``optimizer.vf_delay``).
* :mod:`repro.engine.store` — a content-addressed on-disk artifact
  store keyed by stable hashes of ``(workload, scale)`` for oracle
  traces and ``(workload, scale, config)`` for pipeline stats, so
  repeated figures and resumed sweeps are near-free.
* :mod:`repro.engine.pool` — a :class:`~concurrent.futures.\
ProcessPoolExecutor` sharding layer that groups sweep points by
  workload (one emulation per worker per workload), streams completed
  results back with progress reporting, and counts cache hits.
* :mod:`repro.engine.segments` — intra-workload sharding: traces are
  split into fixed-instruction-count segments (checkpointed streaming
  emulation, per-segment partial stats, associative merge) so a single
  long workload fans out across every worker.
* :mod:`repro.engine.search` — design-space search over the axes a
  ``Campaign`` sweeps: int-range/categorical dimensions, grid /
  seeded-random / successive-halving strategies, pluggable objectives,
  streaming per-evaluation progress, and store-ledgered resume.
* :mod:`repro.engine.events` — the unified typed event vocabulary
  every engine producer streams through its ``progress=`` callback
  (``point`` / ``evaluation`` / ``segment`` / ``finding`` / job
  lifecycle), with a stable JSON-lines wire form.
* :mod:`repro.engine.telemetry` — the dependency-free process
  metrics registry (counters / gauges / log-bucketed histograms /
  timer spans) every layer above records into; snapshots merge
  associatively so worker processes ship theirs back through the
  same result path as :class:`~repro.uarch.pipeline.PipelineStats`.
* :mod:`repro.engine.service` — the async streaming results service:
  a :class:`~repro.engine.service.JobManager` running sweeps,
  searches, segmented sweeps, and fuzz campaigns as named concurrent
  jobs over one shared store, plus the stdlib HTTP front end behind
  ``repro serve`` / ``repro watch``.

``experiments/runner.py`` is a thin in-memory cache over this engine,
and ``repro sweep`` / ``repro search`` / ``repro serve`` on the
command line drive it directly.
"""

from .campaign import (Campaign, SweepPoint, apply_override, expand_axes,
                       parse_axis, split_workloads)
from .events import (EvaluationEvent, Event, FindingEvent,
                     JobFailedEvent, JobFinishedEvent, JobStartedEvent,
                     MetricEvent, PointEvent, SegmentEvent,
                     event_from_dict, event_from_json_line,
                     format_event)
from .pool import (ExecutionContext, PointResult, SweepResult, run_sweep,
                   run_sweep_iter)
from .search import (Candidate, Categorical, Evaluation, IntRange,
                     SearchResult, SearchSpace, make_objective, parse_dim,
                     run_search)
from .segments import (SegmentPlan, plan_segments, run_segmented_sweep,
                       simulate_workload_segmented)
from .store import ArtifactStore
from .telemetry import TELEMETRY, MetricsRegistry

#: Service symbols resolve lazily (PEP 562): importing the engine for
#: a plain sweep must not pay for asyncio + the HTTP server machinery.
_SERVICE_EXPORTS = ("JobManager", "ServiceError", "ServiceServer",
                    "TenantLimits", "parse_auth_tokens",
                    "run_service", "watch_job")


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from . import service
        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")

__all__ = [
    "ArtifactStore",
    "Campaign", "SweepPoint", "apply_override", "expand_axes",
    "parse_axis", "split_workloads",
    "Event", "PointEvent", "EvaluationEvent", "SegmentEvent",
    "FindingEvent", "JobStartedEvent", "JobFinishedEvent",
    "JobFailedEvent", "MetricEvent", "event_from_dict",
    "event_from_json_line", "format_event",
    "MetricsRegistry", "TELEMETRY",
    "ExecutionContext", "PointResult", "SweepResult", "run_sweep",
    "run_sweep_iter",
    "Candidate", "Categorical", "Evaluation", "IntRange",
    "SearchResult", "SearchSpace", "make_objective", "parse_dim",
    "run_search",
    "SegmentPlan", "plan_segments", "run_segmented_sweep",
    "simulate_workload_segmented",
    # service symbols are deliberately NOT in __all__: a star-import
    # would resolve each name through __getattr__ and eagerly load
    # asyncio + the HTTP machinery — exactly what the lazy export
    # below avoids.  Import them explicitly (or from .service).
]
