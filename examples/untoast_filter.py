#!/usr/bin/env python
"""Section 5.2 case study: untoast's short-term synthesis filter.

The paper's largest mediabench speedup comes from GSM
``Short_term_synthesis_filtering``: two 8-entry arrays fit entirely in
the Memory Bypass Cache, so after the first iteration all array
accesses are eliminated.  This example reproduces the effect and also
demonstrates the Figure 10 interaction: because the filter's inner
loop packs dependent additions tightly, raising the intra-bundle
dependence depth unlocks substantially more optimization — the paper's
own mediabench finding (1.11 -> 1.25 from depth 0 to depth 3).

Run:  python examples/untoast_filter.py
"""

from repro import default_config, simulate_trace
from repro.workloads import build_trace


def main() -> None:
    oracle = build_trace("untoast")
    trace = oracle.trace
    print(f"untoast synthesis-filter kernel: {len(trace)} dynamic "
          f"instructions")

    baseline_cfg = default_config()
    base = simulate_trace(trace, baseline_cfg)
    print(f"baseline: {base.cycles} cycles (IPC {base.ipc:.2f})\n")

    print(f"{'configuration':>22}  {'speedup':>7}  {'early':>6}  "
          f"{'lds removed':>11}")
    scenarios = [
        ("depth 0 (default)", dict(add_depth=0, mem_depth=0)),
        ("depth 1", dict(add_depth=1, mem_depth=0)),
        ("depth 3", dict(add_depth=3, mem_depth=0)),
        ("depth 3 & 1 mem", dict(add_depth=3, mem_depth=1)),
    ]
    for label, overrides in scenarios:
        config = baseline_cfg.with_optimizer(**overrides)
        stats = simulate_trace(trace, config)
        print(f"{label:>22}  {base.cycles / stats.cycles:>7.3f}  "
              f"{100 * stats.frac_early_executed:>5.1f}%  "
              f"{100 * stats.frac_loads_removed:>10.1f}%")

    print("\nDeeper intra-bundle chaining lets the filter's tightly packed")
    print("index arithmetic reach the MBC, eliminating the state-array")
    print("accesses the paper describes.")


if __name__ == "__main__":
    main()
