"""Instruction-set architecture: registers, opcodes, assembler, programs.

This subpackage defines the Alpha-flavoured RISC ISA that the whole
reproduction is built on: the workload kernels are written in its
assembly dialect, the functional emulator executes it, and the
continuous optimizer transforms its instructions at rename.
"""

from .assembler import Assembler, AssemblerError, assemble
from .instructions import Imm, Instruction, Reg, Source
from .opcodes import (BranchCond, MNEMONIC_TO_OPCODE, OP_SPECS, OpClass,
                      Opcode, OpSpec, spec_of)
from .program import (DATA_BASE, HEAP_BASE, INSTR_BYTES, Program, STACK_BASE,
                      TEXT_BASE)
from .registers import (FP_ZERO_REG, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS,
                        RETURN_ADDR_REG, STACK_POINTER_REG, ZERO_REG, fp_reg,
                        int_reg, is_fp_reg, is_int_reg, is_zero_reg,
                        parse_reg, reg_name)

__all__ = [
    "Assembler", "AssemblerError", "assemble",
    "Imm", "Instruction", "Reg", "Source",
    "BranchCond", "MNEMONIC_TO_OPCODE", "OP_SPECS", "OpClass", "Opcode",
    "OpSpec", "spec_of",
    "DATA_BASE", "HEAP_BASE", "INSTR_BYTES", "Program", "STACK_BASE",
    "TEXT_BASE",
    "FP_ZERO_REG", "NUM_ARCH_REGS", "NUM_FP_REGS", "NUM_INT_REGS",
    "RETURN_ADDR_REG", "STACK_POINTER_REG", "ZERO_REG",
    "fp_reg", "int_reg", "is_fp_reg", "is_int_reg", "is_zero_reg",
    "parse_reg", "reg_name",
]
