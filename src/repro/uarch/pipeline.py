"""Cycle-level out-of-order superscalar timing model.

Trace-driven replay of the oracle instruction stream through the
paper's machine (Table 2): fetch → decode → rename(/optimize) →
schedule → register read → execute → retire.

Modeling notes (all standard for SimpleScalar-era studies, and
documented in DESIGN.md):

* **Wrong-path fetch** is charged as a front-end bubble: when a
  mispredicted control instruction is fetched, fetch stops until the
  branch resolves, then pays a redirect and refills the front end.
  The minimum resolution loop of the baseline machine is 20 cycles.
* **Bypass** is modeled by separating *wakeup* (dependents may issue
  ``exec_latency`` cycles after the producer issues) from
  *completion* (architectural effects: branch redirects, value
  feedback, retirement eligibility — ``regread_stages`` later).
* **Memory disambiguation** is oracle-based: true addresses identify
  the youngest in-flight older store that overlaps each load.  An
  exact-match store forwards its data; partial overlaps force the load
  to wait for the store and access the cache.
* **Stores** complete at address generation + 1 (write-buffer
  semantics); their cache-line touch happens at issue so later loads
  see warm lines.

The pipeline consumes a packed
:class:`~repro.functional.trace.PackedTrace` directly — the fetch
stage walks the integer columns by row index and builds
:class:`DynInstr` records via :meth:`DynInstr.from_packed`, never
materializing per-entry objects.  Any other iterable of
:class:`TraceEntry` (a list, a lazy stream) is packed up front by
``PackedTrace.from_entries``; the columns are a fraction of the size
of the equivalent entry list, so materializing is cheap.

The per-cycle loop fast-forwards across *provably idle* stretches —
cycles where no event fires, no queue holds a ready instruction, and
neither fetch, rename, dispatch, nor retire can act — crediting the
front-end stall counters for the skipped cycles exactly as the
cycle-by-cycle loop would have.  Cycle counts and every stat are
bit-identical to the unskipped loop; only wall-clock time changes.

When the stream ends the machine performs a deterministic drain:
fetch stops, every in-flight instruction retires, and the final cycle
count includes the drain.  Per-segment runs of a split trace
therefore produce exact instruction and event counters (each entry is
fetched/issued/retired exactly once across segments) while cycle
counts carry one pipeline-fill + drain overhead per segment (see
``PipelineStats.merge``).
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Iterable

from ..functional.emulator import ArchState, TraceEntry
from ..functional.trace import PackedTrace
from ..isa.opcodes import OP_LATENCY, OPCODE_ID, Opcode, QUEUE_MEM
from .branch_predictor import FrontEndPredictor
from .caches import MemoryHierarchy
from .config import MachineConfig
from .dyninstr import DynInstr
from .regfile import OutOfRegisters, PhysRegFile
from .rename import BaselineRenamer, Renamer
from .scheduler import SchedulerBank
from .stats import PipelineStats

_BLOCK_SHIFT = 3  # 8-byte blocks for memory-dependence tracking

_EV_WAKEUP = 0
_EV_COMPLETE = 1

_NOP_ID = OPCODE_ID[Opcode.NOP]

_DEADLOCK_WINDOW = 500_000


class SimulationDeadlock(Exception):
    """Raised when the pipeline stops making forward progress."""


class Pipeline:
    """One simulated machine executing one dynamic trace."""

    def __init__(self, trace: "PackedTrace | Iterable[TraceEntry]",
                 config: MachineConfig,
                 renamer: Renamer | None = None,
                 prf: PhysRegFile | None = None,
                 arch_state: ArchState | None = None):
        if not isinstance(trace, PackedTrace):
            trace = PackedTrace.from_entries(trace)
        self._trace = trace
        self._next_row = 0
        self._n_rows = len(trace)
        self.config = config
        self.prf = prf if prf is not None else PhysRegFile(config.num_pregs)
        if renamer is None:
            renamer = BaselineRenamer(self.prf)
        self.renamer = renamer
        self.hierarchy = MemoryHierarchy(config.il1, config.dl1, config.l2,
                                         config.memory_latency)
        self.predictor = FrontEndPredictor(config.gshare_bits,
                                           config.btb_entries,
                                           config.ras_entries)
        self.sched = SchedulerBank(config.sched_entries,
                                   config.n_simple_ialu,
                                   config.n_complex_ialu, config.n_fpalu,
                                   config.n_agen)
        self.stats = PipelineStats()
        self.now = 0
        # front end
        self._frontend: deque[tuple[int, DynInstr]] = deque()
        self._frontend_cap = config.frontend_depth * config.fetch_width
        self._fetch_blocked_by: DynInstr | None = None
        self._fetch_resume_cycle = 0
        self._current_fetch_line = -1
        # rename / dispatch
        self._dispatch_queue: deque[tuple[int, DynInstr]] = deque()
        self._dispatch_cap = (config.dispatch_stages + 1) * config.rename_width
        self._rob: deque[DynInstr] = deque()
        # execution bookkeeping
        self._events: list[tuple[int, int, int, DynInstr]] = []
        self._waiting_on_preg: dict[int, list[DynInstr]] = {}
        self._waiting_on_store: dict[int, list[DynInstr]] = {}
        self._last_writer: dict[int, DynInstr] = {}
        self._last_retire_cycle = 0
        # Optional retirement-side architectural replay: every retired
        # entry is folded into *arch_state* in retirement order, so the
        # differential harness can compare the state this machine's
        # retirement implies against the emulator's final state.
        self._arch_state = arch_state

    # ==================================================================
    # main loop
    # ==================================================================

    def run(self) -> PipelineStats:
        """Simulate until the trace is exhausted **and** fully drained."""
        stats = self.stats
        events = self._events
        frontend = self._frontend
        dispatch_queue = self._dispatch_queue
        rob = self._rob
        queues = self.sched.queues_by_idx
        q0, q1, q2, q3 = queues
        frontend_cap = self._frontend_cap
        n_rows = self._n_rows
        while self._next_row < n_rows or stats.retired < stats.fetched:
            self.now += 1
            now = self.now
            # Each stage call is guarded by the exact condition under
            # which the stage would do anything (the method bodies
            # early-return on the same condition, so the guards only
            # skip no-op calls, never work).
            if events and events[0][0] <= now:
                self._writeback()
            if q0.ready or q3.ready or q1.ready or q2.ready:
                self._issue()
            if dispatch_queue and dispatch_queue[0][0] <= now:
                self._dispatch()
            if frontend and frontend[0][0] <= now:
                self._rename()
            if self._fetch_blocked_by is not None:
                stats.fetch_blocked_cycles += 1
            elif now < self._fetch_resume_cycle:
                stats.fetch_icache_stall_cycles += 1
            elif self._next_row < n_rows:
                self._fetch()
            head = rob[0] if rob else None
            if (head is not None and head.completed
                    and head.complete_cycle <= now):
                self._retire()
            if self.now - self._last_retire_cycle > _DEADLOCK_WINDOW:
                raise SimulationDeadlock(
                    f"no retirement since cycle {self._last_retire_cycle} "
                    f"(now {self.now}, retired "
                    f"{stats.retired}/{stats.fetched} fetched, "
                    f"rob {len(rob)}, "
                    f"head {rob[0] if rob else None})")
            # --- idle-cycle fast-forward -------------------------------
            # If the next cycle provably does nothing, jump straight to
            # the next cycle where anything *can* happen, crediting the
            # per-cycle fetch stall counters for the skipped cycles.
            if self._next_row >= n_rows and stats.retired >= stats.fetched:
                break  # drained this cycle; nothing left to skip to
            nxt = self.now + 1
            if frontend and frontend[0][0] <= nxt:
                continue  # rename (or a rename stall) next cycle
            if rob and rob[0].completed:
                continue  # retirement can proceed next cycle
            if q0.ready or q3.ready or q1.ready or q2.ready:
                continue  # issue next cycle
            if dispatch_queue and dispatch_queue[0][0] <= nxt:
                continue
            blocked = self._fetch_blocked_by is not None
            resume = self._fetch_resume_cycle
            can_fetch = (not blocked and nxt >= resume
                         and self._next_row < n_rows
                         and len(frontend) < frontend_cap)
            if can_fetch:
                continue
            target = self._last_retire_cycle + _DEADLOCK_WINDOW + 1
            if events:
                target = min(target, events[0][0])
            if dispatch_queue:
                target = min(target, dispatch_queue[0][0])
            if frontend:
                target = min(target, frontend[0][0])
            if (not blocked and resume > nxt and self._next_row < n_rows
                    and len(frontend) < frontend_cap):
                target = min(target, resume)
            if target <= nxt:
                continue
            # Cycles nxt .. target-1 would each have run _fetch and
            # counted a stall; replicate that bookkeeping in bulk.
            if blocked:
                stats.fetch_blocked_cycles += target - nxt
            elif resume > nxt:
                stats.fetch_icache_stall_cycles += min(target, resume) - nxt
            self.now = target - 1
        self.stats.cycles = self.now
        self._finalize_stats()
        return self.stats

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.il1_hits = self.hierarchy.il1.hits
        stats.il1_misses = self.hierarchy.il1.misses
        stats.dl1_hits = self.hierarchy.dl1.hits
        stats.dl1_misses = self.hierarchy.dl1.misses
        stats.l2_hits = self.hierarchy.l2.hits
        stats.l2_misses = self.hierarchy.l2.misses
        stats.cond_branches = self.predictor.cond_branches
        stats.cond_mispredicts = self.predictor.cond_mispredicts
        stats.indirect_jumps = self.predictor.indirect_jumps
        stats.indirect_mispredicts = self.predictor.indirect_mispredicts
        stats.preg_high_water = self.prf.high_water
        stats.preg_alloc_stalls = self.prf.allocation_stalls
        self.renamer.collect_stats(stats)

    # ==================================================================
    # writeback: wakeup + completion events
    # ==================================================================

    def _schedule(self, kind: int, cycle: int, di: DynInstr) -> None:
        heapq.heappush(self._events, (cycle, di.seq, kind, di))

    def _writeback(self) -> None:
        events = self._events
        now = self.now
        while events and events[0][0] <= now:
            _, _, kind, di = heapq.heappop(events)
            if kind == _EV_WAKEUP:
                self._do_wakeup(di)
            else:
                self._do_complete(di)

    def _do_wakeup(self, di: DynInstr) -> None:
        if di.dst_preg is not None:
            self.prf.mark_ready(di.dst_preg, di.result)
            waiters = self._waiting_on_preg.pop(di.dst_preg, None)
            if waiters:
                queues = self.sched.queues_by_idx
                for waiter in waiters:
                    waiter.deps_remaining -= 1
                    if waiter.deps_remaining == 0:
                        queues[waiter.queue_idx].ready += 1
        if di.is_store:
            waiters = self._waiting_on_store.pop(di.seq, None)
            if waiters:
                queues = self.sched.queues_by_idx
                for waiter in waiters:
                    waiter.deps_remaining -= 1
                    if waiter.deps_remaining == 0:
                        queues[waiter.queue_idx].ready += 1

    def _do_complete(self, di: DynInstr) -> None:
        di.completed = True
        di.complete_cycle = self.now
        self.renamer.on_complete(di, self.now)
        if di.is_store:
            self.renamer.on_store_executed(di)
        if di is self._fetch_blocked_by:
            self._fetch_blocked_by = None
            self._fetch_resume_cycle = self.now + self.config.redirect_penalty
            if di.early_resolved:
                self.stats.mispredicts_recovered_early += 1

    # ==================================================================
    # issue / execute
    # ==================================================================

    def _issue(self) -> None:
        now = self.now
        regread = self.config.regread_stages
        events = self._events
        push = heapq.heappush
        stats = self.stats
        for di in self.sched.select_all():
            di.issue_cycle = now
            stats.issued += 1
            latency = self._execution_latency(di)
            di.exec_latency = latency
            seq = di.seq
            push(events, (now + latency, seq, _EV_WAKEUP, di))
            push(events, (now + regread + latency, seq, _EV_COMPLETE, di))

    def _execution_latency(self, di: DynInstr) -> int:
        if di.queue_idx != QUEUE_MEM:
            if di.removed_load:
                return 1  # load converted to a register move
            return OP_LATENCY[di.op]
        agen = 0 if di.addr_known else 1
        if di.is_store:
            # Write-buffer semantics: touch the line, complete quickly.
            self.hierarchy.dwrite(di.addr)
            self.stats.dcache_accesses += 1
            return agen + 1
        store_dep = di.store_dep
        if (store_dep is not None and not store_dep.retired
                and store_dep.addr == di.addr
                and store_dep.mem_size == di.mem_size):
            self.stats.store_forwards_lsq += 1
            return agen + 1
        self.stats.dcache_accesses += 1
        return agen + self.hierarchy.dread(di.addr)

    # ==================================================================
    # dispatch: rename exit -> scheduler entry
    # ==================================================================

    def _dispatch(self) -> None:
        moved = 0
        queue = self._dispatch_queue
        now = self.now
        width = self.config.rename_width
        queues = self.sched.queues_by_idx
        while queue and moved < width:
            enter_cycle, di = queue[0]
            if enter_cycle > now:
                break
            target = queues[di.queue_idx]
            if len(target._entries) >= target.capacity:
                target.full_stalls += 1
                break
            queue.popleft()
            self._setup_deps(di)
            target.insert(di)
            moved += 1

    def _setup_deps(self, di: DynInstr) -> None:
        deps = 0
        src_pregs = di.src_pregs
        if src_pregs:
            is_ready = self.prf.is_ready
            waiting = self._waiting_on_preg
            for preg in set(src_pregs):
                if not is_ready(preg):
                    deps += 1
                    waiting.setdefault(preg, []).append(di)
        store_dep = di.store_dep
        if store_dep is not None:
            if store_dep.issue_cycle < 0:
                # Store hasn't produced its data/address yet.
                deps += 1
                self._waiting_on_store.setdefault(store_dep.seq,
                                                  []).append(di)
            elif not store_dep.completed:
                # Store issued; its wakeup may still be in flight.
                wakeup = store_dep.issue_cycle + store_dep.exec_latency
                if wakeup > self.now:
                    deps += 1
                    self._waiting_on_store.setdefault(store_dep.seq,
                                                      []).append(di)
        di.deps_remaining = deps

    # ==================================================================
    # rename (+ optimize)
    # ==================================================================

    def _rename(self) -> None:
        config = self.config
        frontend = self._frontend
        now = self.now
        if not frontend or frontend[0][0] > now:
            return
        renamer = self.renamer
        rob = self._rob
        dispatch_queue = self._dispatch_queue
        rob_size = config.rob_size
        dispatch_cap = self._dispatch_cap
        renamed = 0
        began_bundle = False
        while (renamed < config.rename_width and frontend
               and frontend[0][0] <= now):
            if len(rob) >= rob_size:
                self.stats.rename_stall_rob += 1
                break
            if len(dispatch_queue) >= dispatch_cap:
                self.stats.rename_stall_dispatch += 1
                break
            di = frontend[0][1]
            if not began_bundle:
                renamer.begin_bundle(now)
                began_bundle = True
            try:
                renamer.rename(di, now)
            except OutOfRegisters:
                if renamer.relieve_pressure():
                    continue  # retry this instruction
                self.stats.rename_stall_pregs += 1
                break
            frontend.popleft()
            renamed += 1
            rob.append(di)
            self._post_rename(di)

    def _post_rename(self, di: DynInstr) -> None:
        """Classify the renamed instruction and route it onward."""
        config = self.config
        stats = self.stats
        rename_done = self.now + config.effective_rename_stages
        if di.misspec_flush and self._fetch_blocked_by is None:
            # An MBC speculative-staleness recovery: treat it like a
            # mispredict — fetch is squashed until this load resolves.
            self._fetch_blocked_by = di
        if di.mem_size:
            stats.mem_ops += 1
            if di.addr_known:
                stats.mem_addr_known += 1
            if di.is_load:
                stats.loads += 1
                if di.removed_load:
                    stats.loads_removed += 1
            self._track_memory_dependence(di)
        if di.early:
            stats.early_executed += 1
            if di.is_control:
                stats.early_branches += 1
            if di.mispredicted:
                di.early_resolved = True
            self._schedule(_EV_WAKEUP, rename_done, di)
            self._schedule(_EV_COMPLETE, rename_done, di)
            return
        if di.op == _NOP_ID:
            self._schedule(_EV_WAKEUP, rename_done, di)
            self._schedule(_EV_COMPLETE, rename_done, di)
            return
        enter = rename_done + config.dispatch_stages
        self._dispatch_queue.append((enter, di))

    def _track_memory_dependence(self, di: DynInstr) -> None:
        addr = di.addr
        size = di.mem_size
        first_block = addr >> _BLOCK_SHIFT
        last_block = (addr + size - 1) >> _BLOCK_SHIFT
        last_writer = self._last_writer
        if di.is_store:
            for block in range(first_block, last_block + 1):
                last_writer[block] = di
            return
        # Load: find the youngest older overlapping in-flight store.
        best: DynInstr | None = None
        for block in range(first_block, last_block + 1):
            store = last_writer.get(block)
            if store is None or store.retired:
                continue
            s_addr = store.addr
            if s_addr < addr + size and addr < s_addr + store.mem_size:
                if best is None or store.seq > best.seq:
                    best = store
        if best is not None and not di.removed_load:
            di.store_dep = best

    # ==================================================================
    # fetch
    # ==================================================================

    def _fetch(self) -> None:
        config = self.config
        stats = self.stats
        if self._fetch_blocked_by is not None:
            stats.fetch_blocked_cycles += 1
            return
        now = self.now
        if now < self._fetch_resume_cycle:
            stats.fetch_icache_stall_cycles += 1
            return
        row = self._next_row
        n = self._n_rows
        if row >= n:
            return
        frontend = self._frontend
        cap = self._frontend_cap
        trace = self._trace
        pcs = trace.pcs
        takens = trace.takens
        fetch_width = config.fetch_width
        block_mask = ~(fetch_width * 4 - 1)
        hierarchy = self.hierarchy
        line_address = hierarchy.il1.line_address
        il1_latency = config.il1.latency
        frontend_time = now + config.frontend_depth
        from_packed = DynInstr.from_packed
        fe_append = frontend.append
        fetched = 0
        block_start = -1
        while fetched < fetch_width and row < n and len(frontend) < cap:
            pc = pcs[row]
            if block_start < 0:
                block_start = pc & block_mask
            elif pc & block_mask != block_start:
                # Fetch delivers one aligned block per cycle; the next
                # block starts next cycle.
                break
            line = line_address(pc)
            if line != self._current_fetch_line:
                latency = hierarchy.ifetch(pc)
                self._current_fetch_line = line
                if latency > il1_latency:
                    # I-cache miss: this group ends; resume after fill.
                    self._fetch_resume_cycle = now + latency
                    break
            di = from_packed(trace, row, now)
            taken = takens[row]
            row += 1
            fe_append((frontend_time, di))
            stats.fetched += 1
            fetched += 1
            if di.is_control:
                mispredicted, bubble = self.predictor.predict_op(
                    di.op, di.instr, taken == 1, di.next_pc)
                di.mispredicted = mispredicted
                if mispredicted:
                    self._fetch_blocked_by = di
                    self._current_fetch_line = -1
                    break
                if bubble:
                    di.btb_bubble = True
                    stats.btb_bubbles += 1
                    self._fetch_resume_cycle = (
                        now + config.btb_miss_penalty)
                    self._current_fetch_line = -1
                    break
                if taken:
                    # Correctly predicted taken: the fetch group ends,
                    # the next group starts at the target next cycle.
                    self._current_fetch_line = -1
                    break
        self._next_row = row

    # ==================================================================
    # retire
    # ==================================================================

    def _retire(self) -> None:
        retired = 0
        rob = self._rob
        now = self.now
        arch_state = self._arch_state
        renamer = self.renamer
        last_writer = self._last_writer
        while (rob and retired < self.config.retire_width
               and rob[0].completed and rob[0].complete_cycle <= now):
            di = rob.popleft()
            di.retired = True
            if arch_state is not None:
                arch_state.apply_di(di)
            renamer.on_retire(di)
            if di.is_store:
                addr = di.addr
                first = addr >> _BLOCK_SHIFT
                last = (addr + di.mem_size - 1) >> _BLOCK_SHIFT
                for block in range(first, last + 1):
                    if last_writer.get(block) is di:
                        del last_writer[block]
            retired += 1
            self.stats.retired += 1
        if retired:
            self._last_retire_cycle = now


def make_pipeline(trace: "PackedTrace | Iterable[TraceEntry]",
                  config: MachineConfig,
                  arch_state: ArchState | None = None) -> Pipeline:
    """Build a :class:`Pipeline` with the config-appropriate renamer.

    ``arch_state``, if given, receives every retired entry in
    retirement order (see :class:`~repro.functional.emulator.\
ArchState`); the differential harness uses this to audit retirement
    against the architectural oracle.
    """
    prf = PhysRegFile(config.num_pregs)
    if config.optimizer.enabled:
        from ..core.optimizer import OptimizingRenamer
        renamer: Renamer = OptimizingRenamer(prf, config)
    else:
        renamer = BaselineRenamer(prf)
    return Pipeline(trace, config, renamer=renamer, prf=prf,
                    arch_state=arch_state)


#: Lazily bound telemetry registry.  The uarch layer must not import
#: :mod:`repro.engine` at module level (the engine imports *this*
#: module during its package init — a module-level import here would
#: touch a partially initialized package); binding at first simulation
#: keeps the layering one-way at import time.
_TELEMETRY = None


def _telemetry():
    global _TELEMETRY
    if _TELEMETRY is None:
        from ..engine.telemetry import TELEMETRY
        _TELEMETRY = TELEMETRY
    return _TELEMETRY


def simulate_trace(trace: "PackedTrace | Iterable[TraceEntry]",
                   config: MachineConfig) -> PipelineStats:
    """Simulate *trace* on *config*'s machine and return its stats.

    *trace* is ideally a :class:`PackedTrace` (what the emulator
    produces); lists and lazy iterables of entries are packed on
    entry.  Builds the optimizing renamer when
    ``config.optimizer.enabled``, otherwise the baseline renamer.

    Telemetry sits at per-run granularity (one clock read pair around
    the whole simulation — never per cycle), recording wall time,
    retired instruction and cycle totals, and a simulation-throughput
    gauge.
    """
    started_ns = time.perf_counter_ns()
    stats = make_pipeline(trace, config).run()
    telemetry = _telemetry()
    if telemetry.enabled:
        elapsed = (time.perf_counter_ns() - started_ns) / 1e9
        telemetry.counter("repro_sim_runs_total").inc()
        telemetry.counter("repro_sim_retired_insns_total").inc(
            stats.retired)
        telemetry.counter("repro_sim_cycles_total").inc(stats.cycles)
        telemetry.histogram("repro_sim_run_seconds").observe(elapsed)
        if elapsed > 0:
            telemetry.gauge("repro_sim_insns_per_second").set(
                stats.retired / elapsed)
            telemetry.gauge("repro_sim_cycles_per_second").set(
                stats.cycles / elapsed)
    return stats
