"""Symbolic register values: ``(preg << scale) ± offset``.

Section 3.1 of the paper: the optimizer maintains, per integer
architectural register, a symbolic expression of the form
``(reg << scale) ± offset`` where ``reg`` is a physical register,
``scale`` is a two-bit shift (0-3), and ``offset`` is a 64-bit
immediate.  A constant is encoded by pointing ``reg`` at the hardwired
zero register; here we use ``base is None``.

:class:`SymVal` is immutable.  The helper functions implement the
algebra the CP/RA hardware performs: adding constants, scaling, and
folding to a constant once the base register's value becomes known.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..functional.alu import to_signed64

#: Hardware limit on the scale field (two bits).
MAX_SCALE = 3


@dataclass(frozen=True)
class SymVal:
    """One symbolic value: ``(base << scale) + offset`` or a constant."""

    base: int | None  # physical register index; None encodes a constant
    scale: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.base is None and self.scale != 0:
            raise ValueError("constants must have scale 0")
        if not 0 <= self.scale <= MAX_SCALE:
            raise ValueError(f"scale out of range: {self.scale}")

    @property
    def is_const(self) -> bool:
        """True if this value is a known 64-bit constant."""
        return self.base is None

    @property
    def const_value(self) -> int:
        """The constant's value (only valid when :attr:`is_const`)."""
        if self.base is not None:
            raise ValueError(f"{self} is not a constant")
        return self.offset

    @property
    def is_plain(self) -> bool:
        """True if this is just a physical register, unshifted, offset 0."""
        return self.base is not None and self.scale == 0 and self.offset == 0

    def evaluate(self, base_value: int) -> int:
        """The concrete value given the base register's value."""
        if self.base is None:
            return self.offset
        return to_signed64((base_value << self.scale) + self.offset)

    def __str__(self) -> str:
        if self.base is None:
            return f"#{self.offset}"
        text = f"p{self.base}"
        if self.scale:
            text = f"(p{self.base}<<{self.scale})"
        if self.offset:
            sign = "+" if self.offset >= 0 else "-"
            text = f"{text}{sign}{abs(self.offset)}"
        return text


def const(value: int) -> SymVal:
    """A known constant value."""
    return SymVal(base=None, scale=0, offset=to_signed64(value))


def plain(preg: int) -> SymVal:
    """The value of physical register *preg*, unmodified."""
    return SymVal(base=preg, scale=0, offset=0)


def add_const(sym: SymVal, value: int) -> SymVal:
    """``sym + value`` — always representable (offset arithmetic)."""
    return SymVal(base=sym.base, scale=sym.scale,
                  offset=to_signed64(sym.offset + value))


def shift_left(sym: SymVal, amount: int) -> SymVal | None:
    """``sym << amount`` if representable in the 2-bit scale field.

    Returns None when the shifted form does not fit (scale would
    exceed :data:`MAX_SCALE`); constants always fold.
    """
    if sym.is_const:
        return const(to_signed64(sym.offset << (amount & 0x3F)))
    if amount < 0:
        return None
    if sym.scale + amount > MAX_SCALE:
        return None
    return SymVal(base=sym.base, scale=sym.scale + amount,
                  offset=to_signed64(sym.offset << amount))


def fold(sym: SymVal, base_value: int) -> SymVal:
    """Replace the base register with its now-known value.

    This is the value-feedback integration step (Section 3.3): a table
    entry whose base physical register matches a produced value is
    rewritten as a constant.
    """
    return const(sym.evaluate(base_value))
