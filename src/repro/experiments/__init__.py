"""Experiment harness: one module per table/figure of the paper.

============  =======================================================
Module        Paper result
============  =======================================================
``table1``    Table 1 — workload inventory
``table3``    Table 3 — effects of continuous optimization
``speedup``   Figure 6 — per-benchmark speedup over the baseline
``machine_models``  Figure 8 — fetch-/execution-bound machine variants
``feedback``  Figure 9 — value feedback alone vs. feedback + opt
``depth``     Figure 10 — intra-bundle dependence-depth sweep
``latency``   Figure 11 — optimizer pipeline-latency sweep
``vf_delay``  Figure 12 — feedback transmission-delay sweep
``autotune``  Figure 10's best config, recovered by design-space search
============  =======================================================

All modules expose ``run(...) -> rows`` and ``format(rows) -> str``.
"""

from . import (ablation, autotune, depth, feedback, latency,
               machine_models, report, runner, speedup, table1, table3,
               vf_delay)
from .runner import (active_store, clear_caches, configure, geomean,
                     get_trace, prewarm, prewarm_suites, prewarm_traces,
                     run_workload, speedup as workload_speedup,
                     suite_lists, workload_names)

__all__ = [
    "ablation", "autotune",
    "depth", "feedback", "latency", "machine_models", "report", "runner",
    "speedup", "table1", "table3", "vf_delay",
    "active_store", "clear_caches", "configure", "geomean", "get_trace",
    "prewarm", "prewarm_suites", "prewarm_traces", "run_workload",
    "workload_speedup", "suite_lists", "workload_names",
]
