"""Regenerates Table 3: effects of continuous optimization.

Paper reference (percent, suite averages):
exec early 20.0/28.6/33.5 (avg 26.0); recovered mispredicted branches
10.5/17.5/13.5 (12.2); ld/st address generation 56.2/71.2/84 (65.3);
loads removed 5.5/21.7/47.2 (17.4).
"""

from conftest import publish, rows_data

from repro.experiments import table3


def test_table3_optimization_effects(benchmark, smoke):
    kwargs = {"workloads_per_suite": 1} if smoke else {}
    rows = benchmark.pedantic(table3.run, rounds=1, iterations=1,
                              kwargs=kwargs)
    assert [r.suite for r in rows][-1] == "avg"
    average = rows[-1]
    if not smoke:
        # Shape assertions: every effect is present at a meaningful
        # level.
        assert average.exec_early > 10
        assert average.addr_generated > 30
        assert average.loads_removed > 2
    publish("table3_effects", table3.format(rows), smoke,
            data={"rows": rows_data(rows)})
