"""Integer and floating-point operation semantics.

This module is the single source of truth for what every opcode
computes.  It is shared by:

* the functional emulator (the architectural oracle),
* the timing model's execution units, and
* the continuous optimizer's rename-stage ALUs (early execution).

Sharing one implementation is how the reproduction honours the paper's
"strict expression and value checking" (Section 4.2): any value the
optimizer computes early is, by construction and by test, the value the
execution core would have computed.

Integer values are 64-bit two's complement, carried as Python ints in
the signed range ``[-2**63, 2**63 - 1]``.
"""

from __future__ import annotations

from ..isa.opcodes import BranchCond, Opcode

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def to_signed64(value: int) -> int:
    """Wrap an arbitrary Python int into signed 64-bit range."""
    value &= _MASK64
    if value & _SIGN64:
        value -= 1 << 64
    return value


def to_unsigned64(value: int) -> int:
    """Reinterpret a signed 64-bit value as unsigned."""
    return value & _MASK64


def sign_extend(value: int, size: int) -> int:
    """Sign-extend the low *size* bytes of *value* to 64 bits."""
    bits = size * 8
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def zero_extend(value: int, size: int) -> int:
    """Zero-extend the low *size* bytes of *value* to 64 bits."""
    return value & ((1 << (size * 8)) - 1)


def _shift_amount(value: int) -> int:
    return value & 0x3F


def _div_trunc(a: int, b: int) -> int:
    if b == 0:
        return 0  # Alpha-style: no trap in this ISA; define as zero
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return to_signed64(quotient)


def _rem_trunc(a: int, b: int) -> int:
    if b == 0:
        return 0
    return to_signed64(a - _div_trunc(a, b) * b)


_INT_OPS = {
    Opcode.ADD: lambda a, b: to_signed64(a + b),
    Opcode.SUB: lambda a, b: to_signed64(a - b),
    Opcode.AND: lambda a, b: to_signed64(a & b),
    Opcode.OR: lambda a, b: to_signed64(a | b),
    Opcode.XOR: lambda a, b: to_signed64(a ^ b),
    Opcode.BIC: lambda a, b: to_signed64(a & ~b),
    Opcode.SLL: lambda a, b: to_signed64(a << _shift_amount(b)),
    Opcode.SRL: lambda a, b: to_signed64(
        to_unsigned64(a) >> _shift_amount(b)),
    Opcode.SRA: lambda a, b: to_signed64(a >> _shift_amount(b)),
    Opcode.S4ADD: lambda a, b: to_signed64((a << 2) + b),
    Opcode.S8ADD: lambda a, b: to_signed64((a << 3) + b),
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPNE: lambda a, b: 1 if a != b else 0,
    Opcode.CMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.CMPULT: lambda a, b: 1 if to_unsigned64(a) < to_unsigned64(b)
    else 0,
    Opcode.CMPULE: lambda a, b: 1 if to_unsigned64(a) <= to_unsigned64(b)
    else 0,
    Opcode.MUL: lambda a, b: to_signed64(a * b),
    Opcode.DIV: _div_trunc,
    Opcode.REM: _rem_trunc,
}

_UNARY_INT_OPS = {
    Opcode.MOV: lambda a: to_signed64(a),
    Opcode.SEXTB: lambda a: sign_extend(a, 1),
    Opcode.SEXTW: lambda a: sign_extend(a, 2),
    Opcode.SEXTL: lambda a: sign_extend(a, 4),
}

_FP_OPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b if b != 0.0 else 0.0,
    Opcode.FCMPEQ: lambda a, b: 1.0 if a == b else 0.0,
    Opcode.FCMPLT: lambda a, b: 1.0 if a < b else 0.0,
    Opcode.FCMPLE: lambda a, b: 1.0 if a <= b else 0.0,
}

_UNARY_FP_OPS = {
    Opcode.FMOV: lambda a: a,
    Opcode.FNEG: lambda a: -a,
}


#: Public views of the per-opcode handler dicts, used to build the
#: emulator's integer-dispatch tables (one callable per opcode id).
INT_OPS = _INT_OPS
UNARY_INT_OPS = _UNARY_INT_OPS
FP_OPS = _FP_OPS
UNARY_FP_OPS = _UNARY_FP_OPS

#: Branch-condition test per :class:`BranchCond`, mirroring
#: :func:`branch_taken` one closure per condition so the emulator's
#: dispatch loop skips the if-chain.
COND_TESTS = {
    BranchCond.ALWAYS: lambda v: True,
    BranchCond.EQ: lambda v: v == 0,
    BranchCond.NE: lambda v: v != 0,
    BranchCond.LT: lambda v: v < 0,
    BranchCond.GE: lambda v: v >= 0,
    BranchCond.LE: lambda v: v <= 0,
    BranchCond.GT: lambda v: v > 0,
}


def evaluate_int(opcode: Opcode, a: int, b: int = 0) -> int:
    """Evaluate an integer opcode over signed 64-bit inputs."""
    op = _INT_OPS.get(opcode)
    if op is not None:
        return op(a, b)
    unary = _UNARY_INT_OPS.get(opcode)
    if unary is not None:
        return unary(a)
    if opcode is Opcode.LDA:
        return to_signed64(a + b)  # base + displacement
    raise ValueError(f"not an integer ALU opcode: {opcode}")


def evaluate_fp(opcode: Opcode, a: float, b: float = 0.0) -> float:
    """Evaluate a floating-point opcode."""
    op = _FP_OPS.get(opcode)
    if op is not None:
        return op(a, b)
    unary = _UNARY_FP_OPS.get(opcode)
    if unary is not None:
        return unary(a)
    raise ValueError(f"not an FP opcode: {opcode}")


def convert_itof(value: int) -> float:
    """``itof``: integer value to FP value."""
    return float(value)


def convert_ftoi(value: float) -> int:
    """``ftoi``: truncate an FP value toward zero into 64-bit range."""
    if value != value or value in (float("inf"), float("-inf")):
        return 0
    return to_signed64(int(value))


def branch_taken(cond: BranchCond, value: int | float) -> bool:
    """Evaluate a branch condition against a register value vs. zero."""
    if cond is BranchCond.ALWAYS:
        return True
    if cond is BranchCond.EQ:
        return value == 0
    if cond is BranchCond.NE:
        return value != 0
    if cond is BranchCond.LT:
        return value < 0
    if cond is BranchCond.GE:
        return value >= 0
    if cond is BranchCond.LE:
        return value <= 0
    if cond is BranchCond.GT:
        return value > 0
    raise ValueError(f"unknown branch condition: {cond}")


def is_int_alu_op(opcode: Opcode) -> bool:
    """True if :func:`evaluate_int` can evaluate *opcode*."""
    return (opcode in _INT_OPS or opcode in _UNARY_INT_OPS
            or opcode is Opcode.LDA)
