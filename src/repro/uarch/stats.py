"""Statistics collected by one timing-simulation run.

Covers everything the paper's evaluation reports:

* cycles and IPC (speedup figures 6, 8-12),
* the Table 3 optimizer-effect counters (early execution, early branch
  recovery, rename-time address generation, load removal),
* supporting counters (cache hits/misses, predictor accuracy, stall
  breakdowns) used by the analysis in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Iterable

from .config import canonical_json

#: Counters combined with ``max`` (not ``+``) by :meth:`PipelineStats.merge`:
#: peak values, not event counts.
_MERGE_MAX_FIELDS = frozenset({"preg_high_water"})

#: Counters that merge **exactly** across trace segments for any
#: machine configuration: each trace entry is fetched/retired exactly
#: once no matter how the trace is split, so these are invariant under
#: segmentation.  (Cycle counts, cache/predictor/optimizer counters
#: are not: every segment restarts a cold microarchitecture.)  The
#: differential harness and the segmentation tests both check against
#: this list.
EXACT_MERGE_FIELDS = ("retired", "fetched", "loads", "mem_ops",
                      "cond_branches", "indirect_jumps")


@dataclass
class PipelineStats:
    """Mutable counter block filled in by the pipeline."""

    # progress
    cycles: int = 0
    retired: int = 0
    # front end
    fetched: int = 0
    fetch_icache_stall_cycles: int = 0
    fetch_blocked_cycles: int = 0
    btb_bubbles: int = 0
    # branches
    cond_branches: int = 0
    cond_mispredicts: int = 0
    indirect_jumps: int = 0
    indirect_mispredicts: int = 0
    mispredicts_recovered_early: int = 0
    # rename
    rename_stall_rob: int = 0
    rename_stall_pregs: int = 0
    rename_stall_dispatch: int = 0
    # optimizer effects (Table 3)
    early_executed: int = 0
    early_branches: int = 0
    mem_ops: int = 0
    mem_addr_known: int = 0
    loads: int = 0
    loads_removed: int = 0
    stores_forwardable: int = 0
    mbc_hits: int = 0
    mbc_misses: int = 0
    mbc_invalidations: int = 0
    optimizer_verify_failures: int = 0
    # execution
    issued: int = 0
    dcache_accesses: int = 0
    store_forwards_lsq: int = 0
    # memory hierarchy (filled from the cache objects at the end)
    il1_hits: int = 0
    il1_misses: int = 0
    dl1_hits: int = 0
    dl1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    # register file
    preg_high_water: int = 0
    preg_alloc_stalls: int = 0
    # derived inputs
    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.retired / self.cycles

    @property
    def total_mispredicts(self) -> int:
        return self.cond_mispredicts + self.indirect_mispredicts

    @property
    def frac_early_executed(self) -> float:
        """Fraction of the instruction stream executed in the optimizer."""
        if self.retired == 0:
            return 0.0
        return self.early_executed / self.retired

    @property
    def frac_mispredicts_recovered(self) -> float:
        """Fraction of mispredicted branches resolved at rename."""
        if self.total_mispredicts == 0:
            return 0.0
        return self.mispredicts_recovered_early / self.total_mispredicts

    @property
    def frac_mem_addr_gen(self) -> float:
        """Fraction of loads/stores with rename-time addresses."""
        if self.mem_ops == 0:
            return 0.0
        return self.mem_addr_known / self.mem_ops

    @property
    def frac_loads_removed(self) -> float:
        """Fraction of loads converted to moves by RLE/SF."""
        if self.loads == 0:
            return 0.0
        return self.loads_removed / self.loads

    # ------------------------------------------------------------------
    # merging (segmented simulation combines per-segment partials)
    # ------------------------------------------------------------------

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        """Combine two partial stats blocks into one (associative).

        Event counters add; peak counters (``preg_high_water``) take
        the max; ``extra`` entries add per key.  Merging the stats of
        consecutive trace segments yields the whole run's instruction
        and event counters exactly; the summed ``cycles`` includes one
        pipeline fill + drain per segment, so derived rates (IPC,
        miss rates) are approximations of the monolithic run.
        """
        merged = PipelineStats()
        for spec in fields(self):
            if spec.name == "extra":
                continue
            a = getattr(self, spec.name)
            b = getattr(other, spec.name)
            setattr(merged, spec.name,
                    max(a, b) if spec.name in _MERGE_MAX_FIELDS else a + b)
        extra = dict(self.extra)
        for key, value in other.extra.items():
            extra[key] = extra.get(key, 0) + value
        merged.extra = extra
        return merged

    @classmethod
    def merge_all(cls, parts: Iterable["PipelineStats"]) -> "PipelineStats":
        """Fold any number of partial stats blocks into one."""
        merged: PipelineStats | None = None
        for part in parts:
            merged = part if merged is None else merged.merge(part)
        if merged is None:
            raise ValueError("merge_all of no stats")
        return merged

    # ------------------------------------------------------------------
    # serialization (the engine's artifact store persists stats as JSON)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Every counter as a plain dict (JSON-serializable)."""
        return asdict(self)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineStats":
        """Rebuild a stats block from :meth:`to_dict` output.

        Forward/backward compatible: unknown keys are ignored and
        missing ones take their defaults, so artifacts written by an
        older or newer stats schema still load (the store's
        ``FORMAT_VERSION`` guards genuinely incompatible changes).
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "PipelineStats":
        """Rebuild a stats block from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> dict[str, float]:
        """A flat dict of headline metrics for reports."""
        return {
            "cycles": self.cycles,
            "retired": self.retired,
            "ipc": round(self.ipc, 4),
            "early_executed_pct": round(100 * self.frac_early_executed, 2),
            "mispred_recovered_pct": round(
                100 * self.frac_mispredicts_recovered, 2),
            "mem_addr_gen_pct": round(100 * self.frac_mem_addr_gen, 2),
            "loads_removed_pct": round(100 * self.frac_loads_removed, 2),
            "cond_mispredict_rate": round(
                self.cond_mispredicts / self.cond_branches, 4)
            if self.cond_branches else 0.0,
        }
