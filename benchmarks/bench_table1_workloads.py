"""Regenerates Table 1: the experimental workload inventory."""

from conftest import publish

from repro.experiments import table1


def test_table1_workload_inventory(benchmark):
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    assert len(rows) == 22
    publish("table1_workloads", table1.format(rows))
