"""Packed-trace fidelity: round-trips, views, and engine-level parity.

The packed SoA trace (:class:`repro.functional.trace.PackedTrace`) is
the storage format every layer now ships — the emulator builds it, the
store pickles it, the segment planner slices it, and the pipeline's
fetch stage reads its columns directly.  These tests pin the contract
that packing is *pure representation*: converting through the legacy
``list[TraceEntry]`` form and back changes nothing observable, from
individual entry views all the way up to the byte-exact canonical
ledgers of flat, segmented, and search runs.
"""

import pickle

import pytest

from repro.engine import pool
from repro.engine.campaign import Campaign
from repro.engine.pool import run_sweep
from repro.engine.search import SearchSpace, run_search
from repro.experiments import runner
from repro.functional.trace import PackedTrace, TraceEntry
from repro.uarch.config import default_config
from repro.uarch.pipeline import simulate_trace
from repro.workloads import build_trace

WORKLOAD = "synth:mixed@seed=3"


@pytest.fixture(autouse=True)
def _clean_runner_state():
    runner.clear_caches(detach_store=True)
    yield
    runner.clear_caches(detach_store=True)


@pytest.fixture(scope="module")
def trace() -> PackedTrace:
    return build_trace(WORKLOAD, 1).trace


def _repack(packed: PackedTrace) -> PackedTrace:
    """Round-trip through the legacy per-entry representation."""
    return PackedTrace.from_entries(packed.to_entries())


class TestRoundTrip:
    def test_emulator_builds_packed(self, trace):
        assert isinstance(trace, PackedTrace)
        assert len(trace) > 0

    def test_entries_round_trip_exactly(self, trace):
        repacked = _repack(trace)
        assert len(repacked) == len(trace)
        for a, b in zip(trace, repacked):
            assert isinstance(a, TraceEntry)
            assert a == b

    def test_entry_views_match_columns(self, trace):
        for i in (0, 1, len(trace) // 2, len(trace) - 1):
            e = trace.entry(i)
            assert e.seq == trace.seqs[i]
            assert e.pc == trace.pcs[i]
            assert e.next_pc == trace.next_pcs[i]
            assert e.instr is trace.instrs[trace.iidx[i]]
            # Sentinel decoding: -1 columns become None views.
            assert (e.addr is None) == (trace.addrs[i] == -1)
            assert (e.taken is None) == (trace.takens[i] == -1)

    def test_equality_against_entry_list(self, trace):
        assert trace == trace.to_entries()
        assert trace == _repack(trace)

    def test_static_instruction_table_is_shared(self, trace):
        # Dynamic rows vastly outnumber static instructions; the table
        # holds each static instruction once.
        assert len(trace.instrs) < len(trace)
        assert len(trace.reg_srcs) == len(trace.instrs)


class TestSliceAndPickle:
    def test_slice_stays_packed_and_shares_tables(self, trace):
        window = trace[100:300]
        assert isinstance(window, PackedTrace)
        assert window.instrs is trace.instrs
        assert window.reg_srcs is trace.reg_srcs
        assert list(window) == trace.to_entries()[100:300]

    def test_slice_of_slice(self, trace):
        assert list(trace[50:250][10:20]) == trace.to_entries()[60:70]

    def test_pickle_round_trip(self, trace):
        clone = pickle.loads(pickle.dumps(trace))
        assert isinstance(clone, PackedTrace)
        assert clone == trace
        assert clone.column_bytes() == trace.column_bytes()

    def test_packed_pickle_is_smaller_than_entry_list(self, trace):
        packed = len(pickle.dumps(trace))
        legacy = len(pickle.dumps(trace.to_entries()))
        assert packed < legacy


class TestPipelineParity:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_stats_identical_packed_vs_entry_list(self, trace, optimize):
        config = default_config()
        if optimize:
            config = config.with_optimizer()
        from_packed = simulate_trace(trace, config)
        from_entries = simulate_trace(trace.to_entries(), config)
        assert from_packed.to_dict() == from_entries.to_dict()


class TestEngineLedgerParity:
    """Byte-identical canonical ledgers, packed vs legacy-round-trip.

    The legacy variant monkeypatches the engine's trace builder to
    route every freshly built trace through ``to_entries`` /
    ``from_entries`` — i.e. the exact data a pre-packing engine would
    have consumed — and requires the resulting ledger bytes to match
    the packed run's.
    """

    WORKLOADS = ["synth:ilp@seed=0", "synth:mixed@seed=1"]
    AXES = [("optimizer.enabled", [False, True])]

    def _points(self):
        return Campaign.from_axes(workloads=self.WORKLOADS,
                                  axes=self.AXES).points()

    def _legacy_build_trace(self, monkeypatch):
        original = pool.build_trace

        def build_via_entries(name, scale=1):
            result = original(name, scale)
            result.trace = _repack(result.trace)
            return result

        monkeypatch.setattr(pool, "build_trace", build_via_entries)

    def test_flat_sweep_ledger(self, monkeypatch):
        packed = run_sweep(self._points(), jobs=1).ledger_json()
        runner.clear_caches(detach_store=True)
        self._legacy_build_trace(monkeypatch)
        legacy = run_sweep(self._points(), jobs=1).ledger_json()
        assert packed == legacy

    def test_segmented_sweep_ledger(self, monkeypatch, tmp_path):
        packed = run_sweep(self._points(), jobs=1,
                           store_dir=tmp_path / "packed",
                           segment_insns=2000).ledger_json()
        runner.clear_caches(detach_store=True)
        self._legacy_build_trace(monkeypatch)
        legacy = run_sweep(self._points(), jobs=1,
                           store_dir=tmp_path / "legacy",
                           segment_insns=2000).ledger_json()
        assert packed == legacy

    def test_search_ledger(self, monkeypatch):
        space = SearchSpace.from_specs(
            ["optimizer.enabled=false,true", "sched_entries=8,16"])

        def search():
            return run_search(space, workloads=tuple(self.WORKLOADS),
                              strategy="random", budget=3, seed=11,
                              jobs=1).ledger_json()

        packed = search()
        runner.clear_caches(detach_store=True)
        self._legacy_build_trace(monkeypatch)
        assert packed == search()
