"""Sweep planner: shards a grid into work units for any backend.

:func:`run_sweep_iter` executes a list of :class:`SweepPoint` grid
points **incrementally**, yielding each completed point as soon as its
shard finishes; :func:`run_sweep` is the collect-everything wrapper:

* Points are **sharded by** ``(workload, scale)`` so every machine
  variant of one workload lands on the same worker and shares a single
  functional emulation (the trace is configuration-independent).
* Shards become ``sweep-shard`` :class:`~repro.engine.backend.WorkUnit`
  s submitted to an :class:`~repro.engine.backend.ExecutionBackend` —
  inline (serial, in-process), a local process pool, or remote socket
  workers; the planner only absorbs results by grid index, so the
  ledger is identical on every backend.  Completed shards stream back
  as they finish; a consumer that stops iterating early (``break`` /
  ``close()``) abandons the not-yet-consumed results — shards already
  *executing* finish (their artifacts land in the store), still-queued
  shards are cancelled, so a cancelled service job stops near its next
  completed shard instead of running the whole grid.
* When an :class:`~repro.engine.store.ArtifactStore` directory is
  given, workers consult it before emulating or simulating anything
  and persist whatever they compute, so a re-run of the same grid
  performs **zero** emulations and simulations.
* ``limit_insns`` simulates only each trace's first N instructions —
  the cheap-evaluation budget the search engine's successive-halving
  rungs use (:mod:`repro.engine.search`).  Truncated stats are stored
  under budget-specific keys — except when the budget does not
  actually truncate the trace, in which case the result *is* the full
  run's and is stored under the full-run key so later full-budget
  evaluations reuse it instead of re-simulating identical work.

All execution state lives in an explicit :class:`ExecutionContext`
(store binding + bounded LRU trace cache + counters), one per
executing environment: the inline backend builds a fresh environment
per planner run, so two interleaved serial sweeps — exactly what the
streaming service (:mod:`repro.engine.service`) produces — can never
clobber each other's store or corrupt each other's hit/miss
accounting; each pool or socket worker keeps one in its environment
scratch and reuses it across the units it leases.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

from ..uarch.stats import PipelineStats
from ..uarch.pipeline import simulate_trace
from ..workloads import build_trace
from .backend import WorkUnit, register_executor, resolve_backend
from .campaign import SweepPoint
from .events import PointEvent
from .store import ArtifactStore
from .telemetry import TELEMETRY
# Re-exported for back-compat: both lived here before the worker
# scaffolding moved to engine/workers.py (shared with backend.py).
from .workers import observe_wait, set_worker_start_method  # noqa: F401
from .workers import pool_kwargs as _pool_kwargs  # noqa: F401


#: Default cap on driver/worker-cached traces.  Shards are grouped by
#: ``(workload, scale)``, so one cached trace already covers a whole
#: shard; a handful absorbs per-point sharding's re-visits while
#: keeping a long-lived ``repro serve`` process from holding every
#: trace it ever emulated.
DEFAULT_TRACE_CACHE = 8


class ExecutionContext:
    """Per-sweep execution state: store, trace cache, eviction counter.

    Replaces the old module-level ``_worker_store``/``_worker_traces``
    globals, which made interleaved serial sweeps clobber each other's
    store binding (and grew without bound in a long-lived driver).
    One context belongs to exactly one inline planner run, or to one
    worker process's execution environment.

    The trace cache is a **bounded LRU** keyed ``(workload, scale)``:
    at most *max_cached_traces* traces stay resident
    (``None`` = unbounded); evictions are counted in
    ``trace_evictions`` and only cost a store unpickle (or, with no
    store, a re-emulation) on the next touch — results are unaffected.
    """

    def __init__(self, store_dir: str | os.PathLike | None = None,
                 max_cached_traces: int | None = DEFAULT_TRACE_CACHE):
        if max_cached_traces is not None and max_cached_traces < 1:
            raise ValueError(f"max_cached_traces must be >= 1 or None, "
                             f"got {max_cached_traces}")
        self.store = (ArtifactStore(store_dir)
                      if store_dir is not None else None)
        self.max_cached_traces = max_cached_traces
        self._traces: OrderedDict[tuple[str, int], list] = OrderedDict()
        self.trace_evictions = 0

    @property
    def cached_traces(self) -> int:
        return len(self._traces)

    def get_trace(self, workload: str,
                  scale: int) -> tuple[list, bool, bool]:
        """The oracle trace plus (emulated, store_hit) flags."""
        key = (workload, scale)
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            TELEMETRY.counter("repro_trace_cache_hits_total").inc()
            return trace, False, False
        TELEMETRY.counter("repro_trace_cache_misses_total").inc()
        store_hit = False
        if self.store is not None:
            trace = self.store.load_trace(workload, scale)
            store_hit = trace is not None
        emulated = trace is None
        if emulated:
            trace = build_trace(workload, scale).trace
            if self.store is not None:
                self.store.save_trace(workload, scale, trace)
        self._traces[key] = trace
        if self.max_cached_traces is not None:
            while len(self._traces) > self.max_cached_traces:
                self._traces.popitem(last=False)
                self.trace_evictions += 1
                TELEMETRY.counter(
                    "repro_trace_cache_evictions_total").inc()
        return trace, emulated, store_hit

    def run_shard(self, shard: list[tuple[int, str, int, str, object]],
                  limit_insns: int | None = None
                  ) -> list[tuple[int, PipelineStats, dict]]:
        """Execute one shard of (index, workload, scale, variant, config).

        ``limit_insns`` truncates every trace to its first N
        instructions before simulating (the search engine's
        cheap-evaluation budget).  Truncated stats go into the store
        under budget-specific keys — unless the trace is no longer
        than the budget, in which case the "truncated" run is exactly
        the full run and is loaded from / saved under the **full-run**
        key, so a successive-halving promotion to the full budget is a
        stats cache hit instead of a duplicate simulation + artifact.
        """
        out = []
        for index, workload, scale, variant, config in shard:
            flags = {"emulated": False, "simulated": False,
                     "trace_hit": False, "stats_hit": False}
            stats = None
            if self.store is not None:
                stats = self.store.load_stats(workload, scale, config,
                                              limit_insns=limit_insns)
                flags["stats_hit"] = stats is not None
            if stats is None:
                trace, emulated, trace_hit = self.get_trace(workload,
                                                            scale)
                flags["emulated"] = emulated
                flags["trace_hit"] = trace_hit
                effective_limit = limit_insns
                if limit_insns is not None and len(trace) <= limit_insns:
                    # the budget doesn't truncate this trace: alias to
                    # the full-run key.  Detecting this needs the
                    # trace length, so a store whose trace artifact
                    # was gc-evicted (full-run stats still present)
                    # pays one trace rebuild before the aliased hit —
                    # a deliberate trade-off vs persisting lengths as
                    # their own artifact kind
                    effective_limit = None
                    if self.store is not None:
                        stats = self.store.load_stats(workload, scale,
                                                      config)
                        flags["stats_hit"] = stats is not None
                if stats is None:
                    if effective_limit is not None:
                        trace = trace[:effective_limit]
                    stats = simulate_trace(trace, config)
                    flags["simulated"] = True
                    if self.store is not None:
                        self.store.save_stats(
                            workload, scale, config, stats,
                            limit_insns=effective_limit)
            out.append((index, stats, flags))
        return out

    def prewarm_shard(self, shard: list[tuple[str, int]]
                      ) -> list[tuple[str, int, int, bool]]:
        """Ensure traces exist for (workload, scale) pairs + lengths."""
        out = []
        for workload, scale in shard:
            trace, emulated, _ = self.get_trace(workload, scale)
            out.append((workload, scale, len(trace), emulated))
        return out


# ----------------------------------------------------------------------
# unit executors (run wherever the backend puts them)
# ----------------------------------------------------------------------

def _env_context(env, max_cached_traces: int | None) -> ExecutionContext:
    """The environment's sweep context, built once per cache size.

    Keyed into the environment's scratch dict so one worker reuses its
    trace cache across every unit it executes — exactly what the old
    per-process ``_worker_context`` global provided.
    """
    key = ("context", max_cached_traces)
    context = env.scratch.get(key)
    if context is None:
        context = ExecutionContext(env.store_dir, max_cached_traces)
        env.scratch[key] = context
    return context


@register_executor("sweep-shard")
def _execute_sweep_shard(payload, env):
    """One sweep shard; returns (results, cumulative evictions)."""
    shard, limit_insns, max_cached_traces = payload
    context = _env_context(env, max_cached_traces)
    with TELEMETRY.timer("repro_pool_shard_execute_seconds"):
        out = context.run_shard(shard, limit_insns)
    return out, context.trace_evictions


@register_executor("prewarm-shard")
def _execute_prewarm_shard(payload, env):
    (shard,) = payload
    return _env_context(env, DEFAULT_TRACE_CACHE).prewarm_shard(shard)


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PointResult:
    """One completed grid point.

    ``segments``/``segments_from_cache`` are filled by the segmented
    engine (:mod:`repro.engine.segments`); a flat sweep leaves them 0.
    ``estimated`` marks stats extrapolated from sampled segments
    (``SegmentPolicy(mode="sampled")``) rather than simulated in full;
    ``error_bounds`` then carries the per-field confidence
    half-widths (see ``segments._extrapolate``).
    """

    point: SweepPoint
    stats: PipelineStats
    emulated: bool
    simulated: bool
    segments: int = 0
    segments_from_cache: int = 0
    estimated: bool = False
    error_bounds: dict | None = None

    @property
    def from_cache(self) -> bool:
        return not self.simulated


@dataclass
class SweepResult:
    """Everything one sweep produced, in grid order."""

    results: list[PointResult]
    counters: dict[str, int]
    elapsed: float = 0.0
    jobs: int = 1

    def stats_by_label(self) -> dict[str, PipelineStats]:
        """``"workload@scale/variant" -> stats`` for easy lookup."""
        return {r.point.label: r.stats for r in self.results}

    def to_dict(self) -> dict:
        """JSON-ready report: per-point summaries plus counters."""
        return {
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed, 3),
            "counters": dict(self.counters),
            "points": [
                {
                    "workload": r.point.workload,
                    "scale": r.point.scale,
                    "variant": r.point.variant,
                    "config_key": r.point.config.cache_key(),
                    "from_cache": r.from_cache,
                    **({"segments": r.segments,
                        "segment_cache_hits": r.segments_from_cache}
                       if r.segments else {}),
                    **({"estimated": True,
                        "relative_error":
                            (r.error_bounds or {}).get("relative_error"),
                        "error_bounds": r.error_bounds}
                       if r.estimated else {}),
                    **r.stats.summary(),
                }
                for r in self.results
            ],
        }

    def ledger_json(self) -> str:
        """Canonical JSON of the sweep's *deterministic* content.

        Strips everything that legitimately varies between otherwise
        identical runs — wall-clock, worker count, cache-hit
        provenance — and keeps the full per-point stats in grid order.
        Two runs of the same grid must produce **byte-identical**
        ledgers regardless of ``jobs``, backend, or store warmth; the
        determinism test suite pins exactly that.
        """
        from ..uarch.config import canonical_json
        return canonical_json({
            "points": [
                {"workload": r.point.workload, "scale": r.point.scale,
                 "variant": r.point.variant,
                 "config_key": r.point.config.cache_key(),
                 # only sampled mode writes these keys, so exact-mode
                 # ledgers stay byte-identical to every prior release
                 **({"estimated": True,
                     "error_bounds": r.error_bounds}
                    if r.estimated else {}),
                 "stats": r.stats.to_dict()}
                for r in self.results
            ],
        })


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 serial, <=0 all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _make_shards(points: list[SweepPoint], by_point: bool = False
                 ) -> list[list[tuple[int, str, int, str, object]]]:
    if by_point:
        return [[(index, p.workload, p.scale, p.variant, p.config)]
                for index, p in enumerate(points)]
    shards: dict[tuple[str, int], list] = {}
    for index, p in enumerate(points):
        shards.setdefault((p.workload, p.scale), []).append(
            (index, p.workload, p.scale, p.variant, p.config))
    return list(shards.values())


def run_sweep_iter(points: list[SweepPoint], jobs: int | None = 1,
                   store_dir: str | os.PathLike | None = None,
                   counters: dict | None = None,
                   limit_insns: int | None = None,
                   shard_by_point: bool = False,
                   max_cached_traces: int | None = DEFAULT_TRACE_CACHE,
                   backend=None
                   ) -> Iterator[tuple[int, PointResult]]:
    """Execute a sweep grid incrementally, yielding per-point results.

    A generator over ``(grid_index, PointResult)`` pairs in
    **completion order** (shards finish whenever their worker does;
    within a shard, points come back in grid order).  The caller can
    stop consuming at any time — an early ``break`` abandons the
    results it has not read; shards already executing on workers
    finish (their artifacts still land in the store) while still-
    queued shards are cancelled.

    ``backend`` selects the execution mechanism: ``None`` auto-picks
    (inline for serial shapes, a process pool otherwise), a name from
    :data:`~repro.engine.backend.BACKEND_NAMES` forces one, and a live
    :class:`~repro.engine.backend.ExecutionBackend` instance (the
    service's shared socket backend) is used without being closed.
    Backends never change *what* is planned — ``jobs`` keeps that role
    — so the yielded results are backend-independent.

    ``counters``, if given, is a dict the generator updates in place
    (``points``/``shards``/``emulations``/``simulations``/
    ``trace_cache_hits``/``stats_cache_hits``/``trace_evictions`` —
    the last counts inline-execution LRU evictions, always 0 on the
    pool and workers paths where eviction happens inside workers) —
    read it after exhausting the iterator for final totals.

    ``limit_insns`` simulates only each trace's first N instructions:
    the search engine's successive-halving rungs use this to buy cheap
    candidate rankings before promoting survivors to full runs.

    ``shard_by_point`` makes every grid point its own shard, so many
    variants of one workload spread across all workers instead of
    serializing on one.  Only sensible with a *store* whose traces are
    already present (each worker process unpickles a workload's trace
    once and caches it) — see :func:`run_trace_prewarm`; without a
    store it would re-emulate per point.  The search engine uses this
    for candidate batches, which are exactly the many-variants/
    few-workloads shape.

    ``max_cached_traces`` bounds every context's LRU trace cache
    (``None`` = unbounded).
    """
    jobs = resolve_jobs(jobs)
    store_dir = os.fspath(store_dir) if store_dir is not None else None
    shards = _make_shards(points, by_point=shard_by_point)
    if counters is None:
        counters = {}
    counters.update({"points": len(points), "shards": len(shards),
                     "emulations": 0, "simulations": 0,
                     "trace_cache_hits": 0, "stats_cache_hits": 0,
                     "trace_evictions": 0})

    def _absorb(shard_out) -> list[tuple[int, PointResult]]:
        absorbed = []
        for index, stats, flags in shard_out:
            point = points[index]
            result = PointResult(point=point, stats=stats,
                                 emulated=flags["emulated"],
                                 simulated=flags["simulated"])
            counters["emulations"] += flags["emulated"]
            counters["simulations"] += flags["simulated"]
            counters["trace_cache_hits"] += flags["trace_hit"]
            counters["stats_cache_hits"] += flags["stats_hit"]
            absorbed.append((index, result))
        return absorbed

    backend, owned = resolve_backend(backend, jobs=jobs,
                                     store_dir=store_dir,
                                     units=len(shards))
    inline = backend.name == "inline"
    try:
        group = backend.group()
        if backend.parallelism <= 1:
            # one unit in flight: an abandoned generator stops at its
            # next shard boundary instead of running the whole grid
            for shard in shards:
                group.submit(WorkUnit("sweep-shard",
                                      (shard, limit_insns,
                                       max_cached_traces)))
                _, (shard_out, evictions) = group.wait_any()
                # before the yields: a consumer that breaks mid-shard
                # must still see this shard's evictions
                counters["trace_evictions"] = evictions
                yield from _absorb(shard_out)
        else:
            for shard in shards:
                group.submit(WorkUnit("sweep-shard",
                                      (shard, limit_insns,
                                       max_cached_traces)))
            while group.pending:
                _, (shard_out, evictions) = group.wait_any()
                if inline:
                    counters["trace_evictions"] = evictions
                yield from _absorb(shard_out)
    finally:
        # an abandoned generator (early break / close(), or a
        # cancelled service job) must not run the rest of the grid:
        # closing an owned pool cancels its still-queued units
        if owned:
            backend.close()


def run_sweep(points: list[SweepPoint], jobs: int | None = 1,
              store_dir: str | os.PathLike | None = None,
              progress=None, segment_policy=None,
              max_cached_traces: int | None = DEFAULT_TRACE_CACHE,
              segment_insns: int | None = None,
              backend=None) -> SweepResult:
    """Execute a sweep grid, optionally in parallel and/or persisted.

    Collects :func:`run_sweep_iter` into a :class:`SweepResult` in
    grid order.  ``progress``, if given, is called after every
    completed point with a :class:`~repro.engine.events.PointEvent`
    (or, on the segmented path, per completed unit with a
    :class:`~repro.engine.events.SegmentEvent`).

    ``segment_policy`` (a
    :class:`~repro.engine.segments.SegmentPolicy`, a bare segment
    size, or a policy-manifest dict) switches to the segmented engine
    (:func:`repro.engine.segments.run_segmented_sweep`): traces are
    split into instruction-count segments that parallelize *within* a
    workload, at the cost of per-segment cold-start/drain effects on
    cycle counts.  ``segment_insns`` is the deprecated spelling of
    ``segment_policy=<int>``.
    """
    if segment_policy is None:
        segment_policy = segment_insns
    if segment_policy is not None:
        from .segments import run_segmented_sweep
        return run_segmented_sweep(points, segment_policy, jobs=jobs,
                                   store_dir=store_dir, progress=progress,
                                   backend=backend)
    started = time.perf_counter()
    slots: list = [None] * len(points)
    counters: dict = {}
    done = 0
    for index, result in run_sweep_iter(points, jobs=jobs,
                                        store_dir=store_dir,
                                        counters=counters,
                                        max_cached_traces=
                                        max_cached_traces,
                                        backend=backend):
        slots[index] = result
        done += 1
        if progress is not None:
            progress(PointEvent(label=result.point.label, done=done,
                                total=len(points),
                                from_cache=result.from_cache))
    return SweepResult(results=slots, counters=counters,
                       elapsed=time.perf_counter() - started,
                       jobs=resolve_jobs(jobs))


def run_trace_prewarm(pairs: list[tuple[str, int]], jobs: int | None,
                      store_dir: str | os.PathLike,
                      backend=None) -> dict[str, int]:
    """Emulate any missing oracle traces in parallel into a store.

    Only useful with a persistent store: workers deposit the traces
    there, and the caller's subsequent :func:`ArtifactStore.load_trace`
    calls become unpickles instead of emulations.  Returns counters
    ``{"traces": ..., "emulations": ...}``.
    """
    jobs = resolve_jobs(jobs)
    store_dir = os.fspath(store_dir)
    shards = [[pair] for pair in dict.fromkeys(pairs)]
    counters = {"traces": len(shards), "emulations": 0}
    if not shards:
        return counters
    backend, owned = resolve_backend(backend, jobs=jobs,
                                     store_dir=store_dir,
                                     units=len(shards))
    try:
        group = backend.group()
        for shard in shards:
            group.submit(WorkUnit("prewarm-shard", (shard,),
                                  phase="prewarm"))
        while group.pending:
            _, out = group.wait_any()
            counters["emulations"] += sum(emulated
                                          for *_, emulated in out)
    finally:
        if owned:
            backend.close()
    return counters
