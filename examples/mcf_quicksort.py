#!/usr/bin/env python
"""Section 5.2 case study: why mcf's quicksort loves the optimizer.

The paper singles out mcf's ``sort_basket`` (a quicksort): once a
sub-array is small enough not to thrash the 128-entry Memory Bypass
Cache, every array access is eliminated and the dependent compares
execute in the optimizer.  This example reproduces that analysis by
sweeping the MBC size and watching load removal and speedup respond.

Run:  python examples/mcf_quicksort.py
"""

from repro import default_config, simulate_trace
from repro.workloads import build_trace


def main() -> None:
    oracle = build_trace("mcf")
    trace = oracle.trace
    print(f"mcf sort_basket kernel: {len(trace)} dynamic instructions")

    baseline_cfg = default_config()
    base = simulate_trace(trace, baseline_cfg)
    print(f"baseline: {base.cycles} cycles (IPC {base.ipc:.2f})\n")

    print(f"{'MBC entries':>12}  {'cycles':>8}  {'speedup':>7}  "
          f"{'loads removed':>13}  {'MBC hits':>8}")
    for entries in (8, 32, 128, 512):
        config = baseline_cfg.with_optimizer(mbc_entries=entries)
        stats = simulate_trace(trace, config)
        print(f"{entries:>12}  {stats.cycles:>8}  "
              f"{base.cycles / stats.cycles:>7.3f}  "
              f"{100 * stats.frac_loads_removed:>12.1f}%  "
              f"{stats.mbc_hits:>8}")

    print("\nThe paper's observation holds: load removal grows with MBC")
    print("capacity as more of the partition's working set survives")
    print("between the quicksort's passes (the cycle count barely moves")
    print("because these loads were L1 hits off the critical path — the")
    print("power win of replacing cache reads with table reads is the")
    print("paper's point in Section 2.5.1).")


if __name__ == "__main__":
    main()
