"""Tests for segmented trace simulation.

Covers the full stack introduced for intra-workload sharding: the
emulator's lazy iteration + checkpoint/restore, the pipeline's
iterable consumption, ``PipelineStats.merge``, the segment planner's
store artifacts and resume path, the segmented sweep scheduler, and
the store's LRU garbage collection.
"""

import json
import os

import pytest

from repro.engine.campaign import Campaign, parse_axis
from repro.engine.pool import run_sweep
from repro.engine.segments import (SegmentPlan, plan_segments,
                                   run_segmented_sweep,
                                   simulate_workload_segmented)
from repro.engine.store import (ArtifactStore, manifest_key,
                                segment_stats_key, segment_trace_key)
from repro.experiments import runner
from repro.functional.emulator import Emulator
from repro.uarch.config import default_config
from repro.uarch.pipeline import simulate_trace
from repro.uarch.stats import PipelineStats
from repro.workloads import build_program, build_trace

WORKLOAD = "mcf"
SEG = 4000
MAX_INSNS = 20_000_000

#: Counters that must merge exactly for ANY config: each trace entry is
#: fetched/retired once across segments regardless of machine state.
EXACT_FIELDS = ("retired", "fetched", "loads", "mem_ops",
                "cond_branches", "indirect_jumps")

#: Documented boundary-drain tolerance for this repo's tiny kernels:
#: every segment restarts a cold microarchitecture and ends in a full
#: drain, so merged IPC undershoots the monolithic run.  For mcf@1
#: (~24k instructions) the measured drift is ~27% at 2k-instruction
#: segments, ~20% at 4k, ~14% at 8k, ~10% at 12k — shrinking as
#: segments grow; production-sized segments (>=1M instructions) make
#: it negligible.
IPC_REL_TOLERANCE = 0.25


@pytest.fixture(scope="module")
def mcf_trace():
    return build_trace(WORKLOAD, 1).trace


@pytest.fixture(scope="module")
def mono_stats(mcf_trace):
    return simulate_trace(mcf_trace, default_config())


def fresh_emulator() -> Emulator:
    return Emulator(build_program(WORKLOAD, 1),
                    max_instructions=MAX_INSNS)


def small_points():
    campaign = Campaign.from_axes(
        name="seg-test", workloads=[WORKLOAD],
        base=default_config().with_optimizer(),
        axes=[parse_axis("optimizer.vf_delay=0,1")],
        include_baseline=True)
    return campaign.points()


# ----------------------------------------------------------------------
# emulator: lazy iteration + checkpoint/restore
# ----------------------------------------------------------------------

class TestEmulatorStreaming:
    def test_iter_trace_matches_run(self, mcf_trace):
        assert list(fresh_emulator().iter_trace()) == mcf_trace

    def test_iter_trace_is_lazy(self):
        emulator = fresh_emulator()
        stream = emulator.iter_trace()
        for _ in range(10):
            next(stream)
        assert emulator.instruction_count == 10
        assert not emulator.halted

    def test_checkpoint_restore_skips_prefix_replay(self, mcf_trace):
        from itertools import islice
        source = fresh_emulator()
        prefix = list(islice(source.iter_trace(), 5000))
        state = source.checkpoint()
        assert state.instret == 5000

        resumed = fresh_emulator()
        resumed.restore(state)
        suffix = list(resumed.iter_trace())
        assert prefix + suffix == mcf_trace
        # seq numbering continues across the boundary
        assert suffix[0].seq == 5000
        assert resumed.halted

    def test_checkpoint_is_immutable_snapshot(self):
        from itertools import islice
        emulator = fresh_emulator()
        list(islice(emulator.iter_trace(), 100))
        state = emulator.checkpoint()
        list(islice(emulator.iter_trace(), 100))
        assert state.instret == 100
        assert emulator.instruction_count == 200


# ----------------------------------------------------------------------
# stats: associative merge + forward-compatible deserialization
# ----------------------------------------------------------------------

class TestStatsMerge:
    def segment_stats(self, mcf_trace, seg):
        return [simulate_trace(mcf_trace[i:i + seg], default_config())
                for i in range(0, len(mcf_trace), seg)]

    def test_merge_is_associative(self, mcf_trace):
        a, b, c, *rest = self.segment_stats(mcf_trace, SEG)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert PipelineStats.merge_all([a, b, c]) == left

    def test_merge_counters_add_and_peaks_max(self):
        a = PipelineStats(cycles=10, retired=5, preg_high_water=40)
        b = PipelineStats(cycles=20, retired=7, preg_high_water=30)
        merged = a.merge(b)
        assert merged.cycles == 30
        assert merged.retired == 12
        assert merged.preg_high_water == 40

    def test_merge_extra_adds_per_key(self):
        a = PipelineStats(extra={"x": 1.0, "y": 2.0})
        b = PipelineStats(extra={"y": 3.0, "z": 4.0})
        assert a.merge(b).extra == {"x": 1.0, "y": 5.0, "z": 4.0}

    def test_merge_all_requires_at_least_one(self):
        with pytest.raises(ValueError, match="no stats"):
            PipelineStats.merge_all([])

    def test_merged_segments_match_monolith_event_counters(
            self, mcf_trace, mono_stats):
        merged = PipelineStats.merge_all(self.segment_stats(mcf_trace, SEG))
        for name in EXACT_FIELDS + ("issued",):  # issued exact: baseline
            assert getattr(merged, name) == getattr(mono_stats, name), name

    def test_merged_ipc_within_drain_tolerance(self, mcf_trace,
                                               mono_stats):
        merged = PipelineStats.merge_all(self.segment_stats(mcf_trace, SEG))
        drift = abs(merged.ipc - mono_stats.ipc) / mono_stats.ipc
        assert drift < IPC_REL_TOLERANCE
        # the overhead is per boundary: doubling the segment size
        # must shrink it
        coarser = PipelineStats.merge_all(
            self.segment_stats(mcf_trace, 2 * SEG))
        coarser_drift = abs(coarser.ipc - mono_stats.ipc) / mono_stats.ipc
        assert coarser_drift < drift


class TestFromDictForwardCompat:
    def test_unknown_keys_ignored(self):
        stats = PipelineStats.from_dict({"cycles": 7, "warp_drive": 9})
        assert stats.cycles == 7
        assert not hasattr(stats, "warp_drive")

    def test_missing_keys_default(self):
        stats = PipelineStats.from_dict({"cycles": 7})
        assert stats.retired == 0
        assert stats.extra == {}

    def test_old_artifact_survives_schema_growth(self, tmp_path,
                                                 mono_stats):
        store = ArtifactStore(tmp_path)
        path = store.save_stats(WORKLOAD, 1, default_config(), mono_stats)
        grown = json.loads(path.read_text())
        grown["counter_from_the_future"] = 123
        path.write_text(json.dumps(grown))
        assert store.load_stats(WORKLOAD, 1, default_config()) == mono_stats


# ----------------------------------------------------------------------
# planner: segment artifacts, manifests, checkpoint resume
# ----------------------------------------------------------------------

class TestPlanSegments:
    def test_plan_covers_trace_exactly(self, tmp_path, mcf_trace):
        store = ArtifactStore(tmp_path)
        plan, counters = plan_segments(WORKLOAD, 1, SEG, store)
        assert plan.total_instructions == len(mcf_trace)
        assert all(n == SEG for n in plan.lengths[:-1])
        assert 0 < plan.lengths[-1] <= SEG
        assert counters["emulated_instructions"] == len(mcf_trace)
        stitched = []
        for index in range(plan.num_segments):
            stitched.extend(store.load_segment_trace(WORKLOAD, 1, SEG,
                                                     index))
        assert stitched == mcf_trace

    def test_replan_serves_from_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first, _ = plan_segments(WORKLOAD, 1, SEG, store)
        again, counters = plan_segments(WORKLOAD, 1, SEG, store)
        assert again == first
        assert counters["emulated_instructions"] == 0

    def test_resume_from_checkpoint_skips_prefix(self, tmp_path,
                                                 mcf_trace):
        store = ArtifactStore(tmp_path)
        plan, _ = plan_segments(WORKLOAD, 1, SEG, store)
        # simulate a killed run: manifest + the tail segments vanish
        kept = 3
        (store.root / "manifests" /
         f"{manifest_key(WORKLOAD, 1, SEG)}.json").unlink()
        for index in range(kept, plan.num_segments):
            (store.root / "segments" /
             f"{segment_trace_key(WORKLOAD, 1, SEG, index)}.pkl").unlink()
        replanned, counters = plan_segments(WORKLOAD, 1, SEG, store)
        assert replanned == plan
        assert counters["resumed_at"] == kept
        assert counters["emulated_instructions"] == \
            len(mcf_trace) - kept * SEG
        stitched = []
        for index in range(plan.num_segments):
            stitched.extend(store.load_segment_trace(WORKLOAD, 1, SEG,
                                                     index))
        assert stitched == mcf_trace

    def test_rejects_nonpositive_segment_size(self, tmp_path):
        with pytest.raises(ValueError, match="segment_insns"):
            plan_segments(WORKLOAD, 1, 0, ArtifactStore(tmp_path))

    def test_manifest_round_trip(self):
        plan = SegmentPlan(workload=WORKLOAD, scale=1, segment_insns=SEG,
                           lengths=(SEG, SEG, 215))
        assert SegmentPlan.from_manifest(plan.to_manifest()) == plan


# ----------------------------------------------------------------------
# segmented sweep: parity, persistence, resume
# ----------------------------------------------------------------------

class TestSegmentedSweep:
    def test_serial_and_parallel_identical(self, tmp_path):
        points = small_points()
        serial = run_segmented_sweep(points, SEG, jobs=1,
                                     store_dir=tmp_path / "serial")
        ncpu = os.cpu_count() or 1
        parallel = run_segmented_sweep(points, SEG, jobs=ncpu,
                                       store_dir=tmp_path / "parallel")
        assert [r.stats.to_json() for r in serial.results] == \
            [r.stats.to_json() for r in parallel.results]
        assert serial.counters["segment_simulations"] == \
            parallel.counters["segment_simulations"]

    def test_rerun_is_pure_cache(self, tmp_path):
        points = small_points()
        first = run_segmented_sweep(points, SEG, jobs=1,
                                    store_dir=tmp_path)
        assert first.counters["emulations"] == 1
        again = run_segmented_sweep(points, SEG, jobs=2,
                                    store_dir=tmp_path)
        assert again.counters["emulations"] == 0
        assert again.counters["segment_simulations"] == 0
        assert again.counters["segment_stats_hits"] == \
            first.counters["segment_simulations"]
        assert [r.stats.to_json() for r in first.results] == \
            [r.stats.to_json() for r in again.results]
        assert all(r.from_cache for r in again.results)

    def test_resume_after_partial_store_loss(self, tmp_path):
        points = small_points()
        first = run_segmented_sweep(points, SEG, jobs=1, store_dir=tmp_path)
        # evict two specific partial-stats artifacts, as store gc might
        victims = [(0, points[0].config), (2, points[1].config)]
        for seg_index, config in victims:
            key = segment_stats_key(WORKLOAD, 1, SEG, seg_index, config)
            (tmp_path / "stats" / f"{key}.json").unlink()
        resumed = run_segmented_sweep(points, SEG, jobs=2,
                                      store_dir=tmp_path)
        assert resumed.counters["segment_simulations"] == len(victims)
        assert [r.stats.to_json() for r in first.results] == \
            [r.stats.to_json() for r in resumed.results]

    def test_matches_monolithic_event_counters(self, tmp_path):
        points = small_points()
        segmented = run_segmented_sweep(points, SEG, jobs=1,
                                        store_dir=tmp_path)
        mono = run_sweep(points, jobs=1)
        for seg_result, mono_result in zip(segmented.results,
                                           mono.results):
            for name in EXACT_FIELDS:
                assert getattr(seg_result.stats, name) == \
                    getattr(mono_result.stats, name), name
            drift = abs(seg_result.stats.ipc - mono_result.stats.ipc) \
                / mono_result.stats.ipc
            assert drift < IPC_REL_TOLERANCE

    def test_point_results_report_segment_cache_hits(self, tmp_path):
        points = small_points()
        run_segmented_sweep(points, SEG, jobs=1, store_dir=tmp_path)
        again = run_segmented_sweep(points, SEG, jobs=1,
                                    store_dir=tmp_path)
        point = again.to_dict()["points"][0]
        assert point["segments"] > 1
        assert point["segment_cache_hits"] == point["segments"]

    def test_run_sweep_delegates_on_segment_insns(self, tmp_path):
        points = small_points()[:1]
        result = run_sweep(points, jobs=1, store_dir=tmp_path,
                           segment_insns=SEG)
        assert result.counters["segment_insns"] == SEG
        assert result.results[0].segments > 1

    def test_works_without_a_store(self):
        points = small_points()[:1]
        result = run_segmented_sweep(points, SEG, jobs=1)
        assert result.results[0].stats.retired > 0


# ----------------------------------------------------------------------
# runner + CLI plumbing
# ----------------------------------------------------------------------

class TestRunnerSegmented:
    def setup_method(self):
        runner.clear_caches(detach_store=True)

    def teardown_method(self):
        runner.clear_caches(detach_store=True)

    def test_run_workload_segmented_path(self, tmp_path):
        runner.configure(store_dir=tmp_path, segment_insns=SEG)
        config = default_config()
        stats = runner.run_workload(WORKLOAD, config)
        expected = simulate_workload_segmented(
            WORKLOAD, config, 1, SEG, ArtifactStore(tmp_path))
        assert stats == expected
        # cached under the segmented key, not the monolithic one
        assert runner.run_workload(WORKLOAD, config) is stats

    def test_segmented_and_monolithic_cached_separately(self, tmp_path):
        config = default_config()
        runner.configure(store_dir=tmp_path)
        mono = runner.run_workload(WORKLOAD, config)
        runner.configure(segment_insns=SEG)
        segmented = runner.run_workload(WORKLOAD, config)
        assert segmented.retired == mono.retired
        assert segmented.cycles > mono.cycles  # boundary drains

    def test_configure_rejects_bad_segment_size(self):
        with pytest.raises(ValueError, match="segment_insns"):
            runner.configure(segment_insns=-5)

    def test_sweep_cli_segmented(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["--jobs", "2", "--store", str(tmp_path / "store"),
                "--segment-insns", str(SEG),
                "sweep", "--workloads", WORKLOAD, "--quiet"]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["segment_insns"] == SEG
        assert report["counters"]["emulations"] == 1
        runner.clear_caches(detach_store=True)
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["emulations"] == 0
        assert report["counters"]["segment_simulations"] == 0

    def test_sweep_cli_store_cap_autogc(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["--store", str(tmp_path), "--store-max-bytes", "20000",
                "--segment-insns", str(SEG),
                "sweep", "--workloads", WORKLOAD, "--quiet"]
        assert main(argv) == 0
        capsys.readouterr()
        assert ArtifactStore(tmp_path).total_bytes() <= 20000


class TestGeomean:
    def test_empty_raises_value_error(self):
        with pytest.raises(ValueError, match="at least one"):
            runner.geomean([])

    def test_nonpositive_raises_value_error(self):
        with pytest.raises(ValueError, match="positive"):
            runner.geomean([1.0, 0.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            runner.geomean([-1.0])

    def test_normal_values(self):
        assert runner.geomean([2.0, 8.0]) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# store garbage collection
# ----------------------------------------------------------------------

class TestStoreGC:
    def _fill(self, store: ArtifactStore, mono_stats) -> list:
        paths = []
        for scale in (1, 2, 3, 4):
            paths.append(store.save_stats(WORKLOAD, scale,
                                          default_config(), mono_stats))
        return paths

    def test_gc_evicts_least_recently_used_first(self, tmp_path,
                                                 mono_stats):
        store = ArtifactStore(tmp_path)
        paths = self._fill(store, mono_stats)
        for age, path in enumerate(paths):
            os.utime(path, (1000 + age, 1000 + age))  # paths[0] oldest
        size = paths[0].stat().st_size
        report = store.gc(max_bytes=2 * size)
        assert report["evicted"] == 2
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert store.total_bytes() <= 2 * size

    def test_load_refreshes_lru_position(self, tmp_path, mono_stats):
        store = ArtifactStore(tmp_path)
        paths = self._fill(store, mono_stats)
        for age, path in enumerate(paths):
            os.utime(path, (1000 + age, 1000 + age))
        # a load makes the oldest artifact the most recently used
        assert store.load_stats(WORKLOAD, 1, default_config()) is not None
        report = store.gc(max_bytes=paths[0].stat().st_size)
        assert report["evicted"] == 3
        assert paths[0].exists()

    def test_gc_to_zero_clears_everything(self, tmp_path, mono_stats):
        store = ArtifactStore(tmp_path)
        self._fill(store, mono_stats)
        report = store.gc(max_bytes=0)
        assert report["remaining_bytes"] == 0
        assert store.total_bytes() == 0

    def test_gc_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path).gc(max_bytes=-1)

    def test_store_cli_gc_and_info(self, tmp_path, mono_stats, capsys):
        from repro.cli import main
        store = ArtifactStore(tmp_path)
        self._fill(store, mono_stats)
        try:
            assert main(["--store", str(tmp_path), "store", "info"]) == 0
            info = json.loads(capsys.readouterr().out)
            assert info["artifacts"]["stats"] == 4
            assert main(["--store", str(tmp_path), "store", "gc",
                         "--max-bytes", "0"]) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["evicted"] == 4
            with pytest.raises(SystemExit):
                main(["store", "info"])
        finally:
            runner.clear_caches(detach_store=True)


# ----------------------------------------------------------------------
# SegmentPolicy: validation, coercion, manifest round-trips
# ----------------------------------------------------------------------

class TestSegmentPolicy:
    def test_fixed_requires_positive_segment_insns(self):
        from repro.engine.segments import SegmentPolicy
        with pytest.raises(ValueError, match="segment_insns"):
            SegmentPolicy(mode="fixed")
        with pytest.raises(ValueError, match="segment_insns"):
            SegmentPolicy(mode="fixed", segment_insns=0)

    def test_adaptive_rejects_explicit_size(self):
        from repro.engine.segments import SegmentPolicy
        with pytest.raises(ValueError, match="adaptive"):
            SegmentPolicy(mode="adaptive", segment_insns=SEG)
        SegmentPolicy(mode="adaptive")  # and is valid without one

    def test_sampled_validation(self):
        from repro.engine.segments import SegmentPolicy
        with pytest.raises(ValueError, match="sample_period"):
            SegmentPolicy(mode="sampled", segment_insns=SEG,
                          sample_period=1)
        with pytest.raises(ValueError, match="sample_period"):
            SegmentPolicy(mode="fixed", segment_insns=SEG,
                          sample_period=4)
        with pytest.raises(ValueError, match="warmup_insns"):
            SegmentPolicy(mode="fixed", segment_insns=SEG,
                          warmup_insns=10)
        defaulted = SegmentPolicy(mode="sampled", segment_insns=SEG)
        assert defaulted.sample_period == 4

    def test_unknown_mode_rejected(self):
        from repro.engine.segments import SegmentPolicy
        with pytest.raises(ValueError, match="mode"):
            SegmentPolicy(mode="turbo", segment_insns=SEG)

    def test_coerce_accepts_every_spelling(self):
        from repro.engine.segments import SegmentPolicy
        assert SegmentPolicy.coerce(None) is None
        fixed = SegmentPolicy.coerce(SEG)
        assert fixed.mode == "fixed" and fixed.segment_insns == SEG
        policy = SegmentPolicy(mode="sampled", segment_insns=SEG,
                               sample_period=3)
        assert SegmentPolicy.coerce(policy) is policy
        assert SegmentPolicy.coerce(policy.to_manifest()) == policy

    def test_manifest_round_trip(self):
        from repro.engine.segments import SegmentPolicy
        for policy in (SegmentPolicy(segment_insns=SEG),
                       SegmentPolicy(mode="adaptive"),
                       SegmentPolicy(mode="sampled", segment_insns=SEG,
                                     sample_period=5, warmup_insns=100,
                                     phase_seed=7)):
            manifest = policy.to_manifest()
            assert SegmentPolicy.from_manifest(manifest) == policy
            assert json.loads(json.dumps(manifest)) == manifest

    def test_from_manifest_names_unknown_fields(self):
        from repro.engine.segments import SegmentPolicy
        with pytest.raises(ValueError) as err:
            SegmentPolicy.from_manifest({"mode": "fixed",
                                         "segment_insns": SEG,
                                         "warmpu_insns": 1,
                                         "zzz": 2})
        assert "warmpu_insns" in str(err.value)
        assert "zzz" in str(err.value)

    def test_tokens_distinguish_policies(self):
        from repro.engine.segments import SegmentPolicy
        tokens = {SegmentPolicy(segment_insns=SEG).token(),
                  SegmentPolicy(segment_insns=SEG * 2).token(),
                  SegmentPolicy(mode="adaptive").token(),
                  SegmentPolicy(mode="sampled", segment_insns=SEG,
                                sample_period=4).token(),
                  SegmentPolicy(mode="sampled", segment_insns=SEG,
                                sample_period=2).token()}
        assert len(tokens) == 5

    def test_adaptive_resolution(self):
        from repro.engine.segments import (ADAPTIVE_MIN_SEGMENT,
                                           SegmentPolicy)
        adaptive = SegmentPolicy(mode="adaptive")
        # serial or short traces collapse to one segment
        assert adaptive.resolve(100_000, jobs=1) == 100_000
        assert adaptive.resolve(3000, jobs=4) == 3000
        # long traces split into ~2x jobs shards, floored
        assert adaptive.resolve(80_000, jobs=4) == 10_000
        assert adaptive.resolve(40_000, jobs=4) \
            == max(5000, ADAPTIVE_MIN_SEGMENT)
        fixed = SegmentPolicy(segment_insns=SEG)
        assert fixed.resolve(10 ** 9, jobs=8) == SEG


class TestAdaptiveMode:
    def test_adaptive_serial_matches_flat_stats(self, tmp_path,
                                                mono_stats):
        from repro.engine.segments import SegmentPolicy
        stats = simulate_workload_segmented(
            WORKLOAD, default_config(), 1, SegmentPolicy(mode="adaptive"),
            ArtifactStore(tmp_path))
        # one whole-trace segment: identical to the monolithic run,
        # not merely close — the cold jobs=1 bench gate rests on this
        assert stats == mono_stats

    def test_adaptive_pool_splits_by_jobs(self, tmp_path):
        from repro.engine.segments import SegmentPolicy
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        sweep = run_segmented_sweep(points,
                                    SegmentPolicy(mode="adaptive"),
                                    jobs=2, store_dir=tmp_path)
        assert sweep.counters["segments"] in (4, 5)

    def test_adaptive_pool_counters_match_flat(self, tmp_path,
                                               mono_stats):
        from repro.engine.segments import SegmentPolicy
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        sweep = run_segmented_sweep(points,
                                    SegmentPolicy(mode="adaptive"),
                                    jobs=2, store_dir=tmp_path)
        for field in EXACT_FIELDS:
            assert getattr(sweep.results[0].stats, field) \
                == getattr(mono_stats, field), field


class TestSampledMode:
    def _policy(self, period=3):
        from repro.engine.segments import SegmentPolicy
        return SegmentPolicy(mode="sampled", segment_insns=2000,
                             sample_period=period)

    def test_sampled_marks_results_estimated(self, tmp_path):
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        sweep = run_segmented_sweep(points, self._policy(),
                                    jobs=1, store_dir=tmp_path)
        result = sweep.results[0]
        assert result.estimated
        bounds = result.error_bounds
        assert bounds["sampled_segments"] < bounds["total_segments"]
        assert 0 < bounds["coverage"] < 1
        assert bounds["relative_error"] >= 0
        assert "cycles" in bounds["half_width"]
        assert '"estimated":true' in sweep.ledger_json()

    def test_sampled_retired_is_exact(self, tmp_path, mono_stats):
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        sweep = run_segmented_sweep(points, self._policy(),
                                    jobs=1, store_dir=tmp_path)
        # instruction counts come from emulation, which always covers
        # the whole trace — only simulated *timing* is extrapolated
        assert sweep.results[0].stats.retired == mono_stats.retired

    def test_sampled_simulates_fewer_segments(self, tmp_path):
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        sweep = run_segmented_sweep(points, self._policy(),
                                    jobs=1, store_dir=tmp_path)
        counters = sweep.counters
        assert counters["segments_detailed"] < counters["segments"]
        assert counters["segments_detailed"] \
            + counters["segments_skipped"] == counters["segments"]
        assert counters["segment_simulations"] \
            == counters["segments_detailed"]

    def test_final_segment_is_always_sampled(self):
        from repro.engine.segments import SegmentPolicy
        policy = self._policy(period=4)
        indices = policy.detailed_indices(10, WORKLOAD, 1)
        assert 9 in indices  # the certainty stratum
        assert list(indices) == sorted(set(indices))

    def test_exact_modes_report_no_bounds(self, tmp_path):
        from repro.engine.segments import SegmentPolicy
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        sweep = run_segmented_sweep(points,
                                    SegmentPolicy(segment_insns=SEG),
                                    jobs=1, store_dir=tmp_path)
        assert not sweep.results[0].estimated
        assert sweep.results[0].error_bounds is None
        assert '"estimated"' not in sweep.ledger_json()

    def test_sampled_event_stream_marked(self, tmp_path):
        points = Campaign.from_axes(workloads=[WORKLOAD],
                                    scales=[1]).points()
        events = []
        run_segmented_sweep(points, self._policy(), jobs=1,
                            store_dir=tmp_path, progress=events.append)
        simulate = [e for e in events if e.kind == "segment"
                    and e.phase == "simulate"]
        assert simulate and all(e.estimated for e in simulate)
        from repro.engine.events import format_event
        assert "~estimated" in format_event(simulate[0])


class TestSegmentPolicyCli:
    def test_bad_flag_combos_exit_2(self, capsys):
        from repro.cli import main
        combos = [
            ["--segment-mode", "adaptive", "--segment-insns", "100",
             "sweep", "--workloads", WORKLOAD, "--quiet"],
            ["--segment-mode", "sampled",
             "sweep", "--workloads", WORKLOAD, "--quiet"],
            ["--sample-period", "4",
             "sweep", "--workloads", WORKLOAD, "--quiet"],
            ["--segment-mode", "sampled", "--segment-insns", "100",
             "--sample-period", "1",
             "sweep", "--workloads", WORKLOAD, "--quiet"],
        ]
        try:
            for argv in combos:
                assert main(argv) == 2, argv
                err = capsys.readouterr().err
                assert "error" in err, argv
        finally:
            runner.clear_caches(detach_store=True)

    def test_sampled_sweep_cli_reports_bounds(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["--store", str(tmp_path), "--segment-mode", "sampled",
                "--segment-insns", "2000", "--sample-period", "3",
                "sweep", "--workloads", WORKLOAD, "--quiet"]
        try:
            assert main(argv) == 0
            report = json.loads(capsys.readouterr().out)
            point = report["points"][0]
            assert point["estimated"] is True
            assert point["relative_error"] >= 0
            assert point["error_bounds"]["total_segments"] > 0
        finally:
            runner.clear_caches(detach_store=True)
