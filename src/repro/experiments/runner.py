"""Experiment runner: workload -> trace -> timing simulation, cached.

All experiment modules funnel through :func:`run_workload`, which
memoizes both the functional traces (one emulation per workload/scale)
and the timing results (one simulation per workload/scale/machine
configuration).  Configurations are frozen dataclasses, so they key
the cache directly; re-running a figure after a sweep costs nothing
for overlapping points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..functional.emulator import TraceEntry
from ..uarch.config import MachineConfig
from ..uarch.pipeline import simulate_trace
from ..uarch.stats import PipelineStats
from ..workloads import ALL_WORKLOADS, build_trace, get_workload

_trace_cache: dict[tuple[str, int], list[TraceEntry]] = {}
_stats_cache: dict[tuple[str, int, MachineConfig], PipelineStats] = {}


def clear_caches() -> None:
    """Drop all memoized traces and simulation results."""
    _trace_cache.clear()
    _stats_cache.clear()


def get_trace(name: str, scale: int = 1) -> list[TraceEntry]:
    """The oracle trace for a workload (memoized)."""
    key = (name, scale)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = build_trace(name, scale).trace
        _trace_cache[key] = trace
    return trace


def run_workload(name: str, config: MachineConfig,
                 scale: int = 1) -> PipelineStats:
    """Simulate one workload on one machine configuration (memoized)."""
    key = (name, scale, config)
    stats = _stats_cache.get(key)
    if stats is None:
        stats = simulate_trace(get_trace(name, scale), config)
        _stats_cache[key] = stats
    return stats


def speedup(name: str, baseline: MachineConfig, variant: MachineConfig,
            scale: int = 1) -> float:
    """Cycle-count speedup of *variant* over *baseline* for a workload."""
    base = run_workload(name, baseline, scale)
    opt = run_workload(name, variant, scale)
    return base.cycles / opt.cycles


def geomean(values: list[float]) -> float:
    """Geometric mean (the conventional speedup aggregate)."""
    if not values:
        raise ValueError("geomean of no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def workload_names(suite: str | None = None,
                   subset: list[str] | None = None) -> list[str]:
    """Workload names, optionally filtered to a suite or explicit subset."""
    if subset is not None:
        return [get_workload(n).name for n in subset]
    names = [w.name for w in ALL_WORKLOADS]
    if suite is not None:
        names = [w.name for w in ALL_WORKLOADS if w.suite == suite]
    return names


@dataclass(frozen=True)
class SuiteAverages:
    """Per-suite aggregate of one metric across its workloads."""

    suite: str
    workloads: tuple[str, ...]
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def geomean(self) -> float:
        return geomean(list(self.values))
