"""Unit tests for opcode metadata consistency."""

from repro.isa import MNEMONIC_TO_OPCODE, OP_SPECS, OpClass, Opcode, spec_of


class TestCoverage:
    def test_every_opcode_has_a_spec(self):
        for opcode in Opcode:
            assert opcode in OP_SPECS

    def test_mnemonics_unique_and_complete(self):
        assert len(MNEMONIC_TO_OPCODE) == len(Opcode)
        for mnemonic, opcode in MNEMONIC_TO_OPCODE.items():
            assert spec_of(opcode).mnemonic == mnemonic


class TestClassInvariants:
    def test_simple_ops_are_single_cycle(self):
        # 'Simple' is the paper's term for optimizer-executable ops:
        # they must take exactly one cycle (footnote 1).
        for opcode, spec in OP_SPECS.items():
            if spec.simple:
                assert spec.latency == 1, opcode

    def test_complex_integer_ops_multi_cycle(self):
        for opcode in (Opcode.MUL, Opcode.DIV, Opcode.REM):
            spec = spec_of(opcode)
            assert spec.op_class is OpClass.INT_COMPLEX
            assert spec.latency > 1
            assert not spec.simple

    def test_loads_marked(self):
        for opcode in (Opcode.LDB, Opcode.LDBU, Opcode.LDW, Opcode.LDWU,
                       Opcode.LDL, Opcode.LDLU, Opcode.LDQ, Opcode.LDF):
            spec = spec_of(opcode)
            assert spec.is_load
            assert spec.op_class is OpClass.MEM
            assert spec.mem_size in (1, 2, 4, 8)

    def test_stores_have_no_destination(self):
        for opcode in (Opcode.STB, Opcode.STW, Opcode.STL, Opcode.STQ,
                       Opcode.STF):
            spec = spec_of(opcode)
            assert spec.is_store
            assert not spec.has_dst

    def test_load_store_sizes_pair_up(self):
        pairs = [(Opcode.LDB, Opcode.STB), (Opcode.LDW, Opcode.STW),
                 (Opcode.LDL, Opcode.STL), (Opcode.LDQ, Opcode.STQ)]
        for load, store in pairs:
            assert spec_of(load).mem_size == spec_of(store).mem_size

    def test_unsigned_loads_flagged(self):
        assert not spec_of(Opcode.LDBU).mem_signed
        assert spec_of(Opcode.LDB).mem_signed

    def test_branches_have_conditions(self):
        for opcode, spec in OP_SPECS.items():
            if spec.is_branch:
                assert spec.cond is not None, opcode
                assert not spec.has_dst

    def test_jumps(self):
        assert spec_of(Opcode.JSR).has_dst  # the link register
        assert spec_of(Opcode.RET).is_indirect
        assert spec_of(Opcode.JMP).is_indirect
        assert not spec_of(Opcode.BR).is_indirect

    def test_fp_ops_write_fp(self):
        assert spec_of(Opcode.FADD).writes_fp
        assert spec_of(Opcode.ITOF).writes_fp
        assert not spec_of(Opcode.FTOI).writes_fp  # writes an int reg

    def test_commutativity_flags(self):
        assert spec_of(Opcode.ADD).commutative
        assert spec_of(Opcode.MUL).commutative
        assert not spec_of(Opcode.SUB).commutative
        assert not spec_of(Opcode.SLL).commutative
