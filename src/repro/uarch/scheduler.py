"""Issue schedulers and functional-unit pools.

The paper's machine has four 8-entry schedulers (integer, complex
integer, floating point, memory) feeding 4 simple integer ALUs, 1
complex integer ALU, 2 FP ALUs, and 2 address-generation units
(Table 2).  Conditional branches execute on the simple integer ALUs.

Each :class:`IssueQueue` holds dispatched instructions until their
physical-register (and memory-dependence) operands are ready, then
offers them oldest-first to its functional-unit pool.
"""

from __future__ import annotations

from ..isa.opcodes import (QUEUE_COMPLEX, QUEUE_FP, QUEUE_INT, QUEUE_MEM,
                           OpClass)
from .dyninstr import DynInstr

#: Scheduler bins; branches share the simple-integer scheduler and ALUs.
SCHED_INT = "int"
SCHED_COMPLEX = "complex"
SCHED_FP = "fp"
SCHED_MEM = "mem"

_CLASS_TO_SCHED = {
    OpClass.INT_SIMPLE: SCHED_INT,
    OpClass.BRANCH: SCHED_INT,
    OpClass.INT_COMPLEX: SCHED_COMPLEX,
    OpClass.FP: SCHED_FP,
    OpClass.MEM: SCHED_MEM,
    OpClass.MISC: SCHED_INT,
}


def scheduler_for(op_class: OpClass) -> str:
    """Which scheduler an operation class dispatches into."""
    return _CLASS_TO_SCHED[op_class]


class IssueQueue:
    """One out-of-order issue queue with a fixed entry count."""

    def __init__(self, name: str, entries: int, issue_width: int):
        self.name = name
        self.capacity = entries
        self.issue_width = issue_width
        self._entries: list[DynInstr] = []
        self.full_stalls = 0
        #: Entries whose operands are all ready.  Maintained by
        #: :meth:`insert`/:meth:`select` and by the pipeline's wakeup
        #: handler (which credits the queue when a waiting entry's
        #: ``deps_remaining`` reaches zero), so :meth:`select` can skip
        #: scanning queues with nothing selectable.
        self.ready = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        return len(self._entries) < self.capacity

    def insert(self, di: DynInstr) -> None:
        if not self.has_space:
            raise RuntimeError(f"scheduler {self.name} overflow")
        self._entries.append(di)
        if di.deps_remaining == 0:
            self.ready += 1

    def select(self) -> list[DynInstr]:
        """Remove and return up to ``issue_width`` ready entries.

        Selection is oldest-first (by sequence number), which the
        in-order insertion already guarantees for the entry list.

        Always scans — callers that mutate ``deps_remaining`` directly
        (unit tests) stay correct even when ``ready`` is stale; the
        pipeline avoids the scan by consulting ``ready`` up front via
        :meth:`SchedulerBank.select_all`.
        """
        selected: list[DynInstr] = []
        remaining: list[DynInstr] = []
        width = self.issue_width
        for di in self._entries:
            if di.deps_remaining == 0 and len(selected) < width:
                selected.append(di)
            else:
                remaining.append(di)
        self._entries = remaining
        self.ready -= len(selected)
        if self.ready < 0:
            self.ready = 0
        return selected

    def occupancy(self) -> int:
        return len(self._entries)


class SchedulerBank:
    """The four issue queues plus per-class issue-width limits."""

    def __init__(self, entries: int, n_simple: int, n_complex: int,
                 n_fp: int, n_agen: int):
        self.queues: dict[str, IssueQueue] = {
            SCHED_INT: IssueQueue(SCHED_INT, entries, n_simple),
            SCHED_COMPLEX: IssueQueue(SCHED_COMPLEX, entries, n_complex),
            SCHED_FP: IssueQueue(SCHED_FP, entries, n_fp),
            SCHED_MEM: IssueQueue(SCHED_MEM, entries, n_agen),
        }
        #: Same queues indexed by the ``QUEUE_*`` small ints from
        #: :mod:`repro.isa.opcodes` (what ``DynInstr.queue_idx`` holds).
        self.queues_by_idx: list[IssueQueue] = [None] * 4
        self.queues_by_idx[QUEUE_INT] = self.queues[SCHED_INT]
        self.queues_by_idx[QUEUE_COMPLEX] = self.queues[SCHED_COMPLEX]
        self.queues_by_idx[QUEUE_FP] = self.queues[SCHED_FP]
        self.queues_by_idx[QUEUE_MEM] = self.queues[SCHED_MEM]

    def queue_for(self, di: DynInstr) -> IssueQueue:
        return self.queues_by_idx[di.queue_idx]

    def select_all(self) -> list[DynInstr]:
        """One cycle of select across all queues."""
        issued: list[DynInstr] = []
        for queue in self.queues_by_idx:
            if queue.ready:
                issued.extend(queue.select())
        return issued

    def total_occupancy(self) -> int:
        return sum(len(queue) for queue in self.queues.values())
