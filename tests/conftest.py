"""Shared fixtures and options for the tier-1 suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden stats snapshots under tests/golden/ "
             "instead of diffing against them (commit the result)")


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """Whether golden snapshot tests should refresh their files."""
    return request.config.getoption("--update-golden")
