"""Figure 12: value-feedback transmission-delay sensitivity (Section 6.4).

Speedup over the baseline with feedback transmission delays of 0, 1
(default), 5, and 10 cycles.  The paper's key insight: a physical
register is either referenced by the optimizer for a long time or not
at all, so additional delay has essentially no performance impact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import geomean, prewarm_suites, run_workload

DELAYS = (0, 1, 5, 10)


@dataclass(frozen=True)
class VFDelayRow:
    """One suite's Figure 12 bars keyed by transmission delay."""

    suite: str
    bars: dict[int, float]


def run(scale: int = 1, workloads_per_suite: int | None = None,
        jobs: int | None = None) -> list[VFDelayRow]:
    """Measure Figure 12 per suite."""
    base = default_config()
    lists = prewarm_suites(
        [base] + [base.with_optimizer(vf_delay=d) for d in DELAYS],
        scale, jobs, workloads_per_suite)
    rows = []
    for suite in SUITES:
        suite_list = lists[suite]
        bars = {}
        for delay in DELAYS:
            config = base.with_optimizer(vf_delay=delay)
            values = []
            for workload in suite_list:
                baseline = run_workload(workload.name, base, scale)
                variant = run_workload(workload.name, config, scale)
                values.append(baseline.cycles / variant.cycles)
            bars[delay] = geomean(values)
        rows.append(VFDelayRow(suite=suite, bars=bars))
    return rows


def format(rows: list[VFDelayRow]) -> str:
    """Render the Figure 12 bars as text."""
    table_rows = [[row.suite] + [row.bars[d] for d in DELAYS]
                  for row in rows]
    return format_table(
        "Figure 12: value-feedback transmission delay (speedup)",
        ["suite", "delay 0", "delay 1 (default)", "delay 5", "delay 10"],
        table_rows)
