"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                 list the 22 workloads with suites
``run <workload>``       baseline-vs-optimized comparison for one kernel
``table1`` / ``table3``  regenerate the paper's tables
``fig6`` / ``fig8`` / ``fig9`` / ``fig10`` / ``fig11`` / ``fig12``
                         regenerate the paper's figures
``all``                  everything above, in order
``sweep``                run an arbitrary design-space grid (JSON out)
``store gc`` / ``store info``
                         maintain the artifact store (LRU size cap)

Global options: ``--jobs N`` fans simulation out across N worker
processes (0 = all cores); ``--store DIR`` persists oracle traces and
stats in a content-addressed artifact store so re-runs are near-free;
``--segment-insns N`` splits every trace into N-instruction segments
that parallelize *within* a workload (see README "Segmented
simulation" for the semantics); ``--store-max-bytes N`` enforces an
LRU size cap on the store after each sweep.  Sensitivity figures
accept ``--per-suite N`` to bound runtime (default: all workloads; the
benchmark harness uses 2).  ``--scale N`` grows the dynamic
instruction counts of every kernel.

``sweep`` examples::

    repro --jobs 4 --store .repro-store sweep --suite SPECint \\
        --axis optimizer.vf_delay=0,1,5,10 --optimized --baseline
    repro sweep --workloads mcf,gzip --axis sched_entries=8,16,32
    repro --jobs 0 --store .repro-store --segment-insns 100000 \\
        sweep --workloads mcf --scales 64
    repro --store .repro-store store gc --max-bytes 500000000
"""

from __future__ import annotations

import argparse
import json
import sys

from . import quick_compare
from .engine.campaign import Campaign, parse_axis
from .engine.pool import run_sweep
from .engine.store import ArtifactStore
from .experiments import (depth, feedback, latency, machine_models, runner,
                          speedup, table1, table3, vf_delay)
from .uarch.config import default_config
from .workloads import ALL_WORKLOADS

_FIGURES = {
    "fig8": machine_models,
    "fig9": feedback,
    "fig10": depth,
    "fig11": latency,
    "fig12": vf_delay,
}


def _cmd_list(_args) -> int:
    for workload in ALL_WORKLOADS:
        print(f"{workload.suite:11s}  {workload.name:13s} "
              f"({workload.abbrev})  {workload.description}")
    return 0


def _cmd_run(args) -> int:
    result = quick_compare(args.workload, scale=args.scale)
    base = result["baseline"]
    opt = result["optimized"]
    print(f"workload : {result['workload']}")
    print(f"baseline : {base.cycles} cycles (IPC {base.ipc:.3f})")
    print(f"optimized: {opt.cycles} cycles (IPC {opt.ipc:.3f})")
    print(f"speedup  : {result['speedup']:.3f}")
    print(f"early    : {result['early_executed_pct']:.1f}%   "
          f"recovered: {result['mispredicts_recovered_pct']:.1f}%   "
          f"addr-gen: {result['addr_generated_pct']:.1f}%   "
          f"lds-removed: {result['loads_removed_pct']:.1f}%")
    return 0


def _cmd_table(module):
    def run(args) -> int:
        rows = module.run(scale=args.scale, jobs=args.jobs)
        print(module.format(rows))
        return 0
    return run


def _cmd_figure(module):
    def run(args) -> int:
        rows = module.run(scale=args.scale,
                          workloads_per_suite=args.per_suite,
                          jobs=args.jobs)
        print(module.format(rows))
        return 0
    return run


def _cmd_fig6(args) -> int:
    rows = speedup.run(scale=args.scale, jobs=args.jobs)
    print(speedup.format(rows))
    return 0


def _cmd_all(args) -> int:
    for handler in (_cmd_table(table1), _cmd_table(table3), _cmd_fig6,
                    *(_cmd_figure(mod) for mod in _FIGURES.values())):
        handler(args)
        print()
    return 0


def _check_store_cap(args) -> None:
    """Enforce ``--store-max-bytes`` on the store after a sweep."""
    if args.store is None or args.store_max_bytes is None:
        return
    report = ArtifactStore(args.store).gc(args.store_max_bytes)
    if report["evicted"]:
        print(f"store over {args.store_max_bytes} bytes; evicted "
              f"{report['evicted']} LRU artifacts "
              f"({report['freed_bytes']} bytes freed, "
              f"{report['remaining_bytes']} remaining)", file=sys.stderr)


def _cmd_sweep(args) -> int:
    axes = [parse_axis(spec) for spec in args.axis or []]
    base = default_config()
    if args.optimized:
        base = base.with_optimizer()
    if args.scales is not None:
        scales = [int(s) for s in args.scales.split(",")]
    else:
        scales = [args.scale]  # honour the global --scale option
    campaign = Campaign.from_axes(
        workloads=args.workloads.split(",") if args.workloads else None,
        suite=args.suite, scales=scales,
        base=base, axes=axes, include_baseline=args.baseline)

    def progress(done: int, total: int, message: str) -> None:
        print(f"[{done}/{total}] {message}", file=sys.stderr)

    result = run_sweep(campaign.points(), jobs=args.jobs,
                       store_dir=args.store,
                       progress=progress if not args.quiet else None,
                       segment_insns=args.segment_insns)
    _check_store_cap(args)
    report = result.to_dict()
    report["campaign"] = {
        "workloads": list(campaign.workloads),
        "scales": list(campaign.scales),
        "variants": [label for label, _ in campaign.variants],
    }
    text = json.dumps(report, indent=2 if args.pretty else None,
                      sort_keys=False)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {len(result.results)} points to {args.out}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def _require_store(args) -> ArtifactStore:
    if args.store is None:
        raise SystemExit("store commands need the global --store DIR "
                         "option (e.g. repro --store .repro-store "
                         "store gc --max-bytes 1000000)")
    return ArtifactStore(args.store)


def _cmd_store_gc(args) -> int:
    store = _require_store(args)
    report = store.gc(args.max_bytes)
    print(json.dumps(report))
    return 0


def _cmd_store_info(args) -> int:
    store = _require_store(args)
    print(json.dumps({"root": str(store.root),
                      "total_bytes": store.total_bytes(),
                      "artifacts": store.artifact_count()}))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Continuous Optimization' (ISCA 2005)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--per-suite", type=int, default=None,
                        help="limit sensitivity figures to N workloads "
                             "per suite")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation "
                             "(0 = all cores, default 1)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persistent artifact store directory "
                             "(traces + stats survive across runs)")
    parser.add_argument("--segment-insns", type=int, default=None,
                        metavar="N",
                        help="split every trace into N-instruction "
                             "segments simulated independently and "
                             "merged (parallelizes within a workload; "
                             "cycle counts carry per-segment cold-start "
                             "+ drain overhead)")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        metavar="N",
                        help="after each sweep, LRU-evict store "
                             "artifacts until the store is <= N bytes")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list workloads").set_defaults(
        handler=_cmd_list)
    run_parser = sub.add_parser("run", help="compare one workload")
    run_parser.add_argument("workload")
    run_parser.set_defaults(handler=_cmd_run)
    sub.add_parser("table1").set_defaults(handler=_cmd_table(table1))
    sub.add_parser("table3").set_defaults(handler=_cmd_table(table3))
    sub.add_parser("fig6").set_defaults(handler=_cmd_fig6)
    for name, module in _FIGURES.items():
        sub.add_parser(name).set_defaults(handler=_cmd_figure(module))
    sub.add_parser("all", help="every table and figure").set_defaults(
        handler=_cmd_all)
    sweep = sub.add_parser(
        "sweep", help="run a (workload x scale x config) grid",
        description="Run an arbitrary design-space grid and emit JSON "
                    "results (per-point stats plus cache-hit counters).")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated names/abbreviations "
                            "(default: all 22)")
    sweep.add_argument("--suite", default=None,
                       help="sweep one suite (SPECint/SPECfp/mediabench)")
    sweep.add_argument("--scales", default=None,
                       help="comma-separated scale factors (default: the "
                            "global --scale value)")
    sweep.add_argument("--axis", action="append", metavar="PATH=V1,V2,...",
                       help="config axis, e.g. optimizer.vf_delay=0,1,5; "
                            "repeatable (axes take a cartesian product)")
    sweep.add_argument("--optimized", action="store_true",
                       help="enable the continuous optimizer on the "
                            "base config before applying axes")
    sweep.add_argument("--baseline", action="store_true",
                       help="also include the optimizer-off baseline "
                            "as a variant")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="write the JSON report here instead of stdout")
    sweep.add_argument("--pretty", action="store_true",
                       help="indent the JSON output")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-shard progress on stderr")
    sweep.set_defaults(handler=_cmd_sweep)
    store = sub.add_parser(
        "store", help="artifact-store maintenance",
        description="Maintain the --store directory: inspect its size "
                    "or LRU-evict artifacts down to a byte cap.")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used artifacts")
    store_gc.add_argument("--max-bytes", type=int, required=True,
                          help="target store size in bytes")
    store_gc.set_defaults(handler=_cmd_store_gc)
    store_sub.add_parser("info", help="store size and artifact counts") \
        .set_defaults(handler=_cmd_store_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    runner.configure(store_dir=args.store, jobs=args.jobs,
                     segment_insns=args.segment_insns)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
