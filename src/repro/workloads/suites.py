"""Workload registry: the paper's Table 1 workload plus ``synth``.

Groups the 22 hand-written kernels by suite (SPECint, SPECfp,
mediabench) and provides lookup, assembly, and trace-generation
helpers used by the experiment harness and the benchmarks.

On top of the fixed paper workloads, any name of the form
``synth:<family>@seed=N[,k=v,...]`` resolves **on the fly** to a
seeded synthetic program (:mod:`repro.workloads.synth`), and the
``synth`` suite names a default roster of them — so every consumer of
this registry (``run_workload``, sweeps, searches, segmented
simulation, the artifact store) handles generated programs exactly
like the hand-written ones.
"""

from __future__ import annotations

from functools import lru_cache

from ..functional.emulator import EmulationResult, run_program
from ..isa.assembler import assemble
from ..isa.program import Program
from . import mediabench, specfp, specint, synth
from .common import Workload

#: The paper's three fixed suites (Table 1).
SUITES = ("SPECint", "SPECfp", "mediabench")

#: Every suite the registry can enumerate, including the synthetic one.
ALL_SUITES = SUITES + (synth.SUITE,)

ALL_WORKLOADS: list[Workload] = (
    specint.WORKLOADS + specfp.WORKLOADS + mediabench.WORKLOADS)

_BY_NAME = {workload.name: workload for workload in ALL_WORKLOADS}
_BY_ABBREV = {workload.abbrev: workload for workload in ALL_WORKLOADS}


@lru_cache(maxsize=512)
def _synth_workload(name: str) -> Workload:
    return synth.workload_for(name)


def get_workload(name: str) -> Workload:
    """Look a workload up by full name, paper abbreviation, or
    canonical ``synth:`` spelling (resolved dynamically)."""
    workload = _BY_NAME.get(name) or _BY_ABBREV.get(name)
    if workload is None and name.startswith(synth.PREFIX):
        return _synth_workload(name)
    if workload is None:
        raise KeyError(f"unknown workload {name!r}; known: "
                       f"{sorted(_BY_NAME)} plus 'synth:...' names")
    return workload


def suite_workloads(suite: str) -> list[Workload]:
    """All workloads belonging to *suite* (``synth`` = default roster)."""
    if suite == synth.SUITE:
        return synth.roster_workloads()
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; known: {ALL_SUITES}")
    return [w for w in ALL_WORKLOADS if w.suite == suite]


def build_program(name: str, scale: int = 1) -> Program:
    """Assemble the named workload at *scale* (statically validated)."""
    program = assemble(get_workload(name).source(scale))
    # Synthetic programs are machine-generated; catch a generator bug
    # (a branch into the data segment, say) here with the instruction
    # named instead of deep inside an emulation.
    program.validate()
    return program


def build_trace(name: str, scale: int = 1,
                max_instructions: int = 20_000_000) -> EmulationResult:
    """Assemble and functionally execute the named workload."""
    program = build_program(name, scale)
    return run_program(program, max_instructions=max_instructions)
