"""The Memory Bypass Cache (MBC) for RLE and store forwarding.

Section 3.2 of the paper: a small cache (128 entries) that maps memory
locations to the symbolic representation of their current contents.

* A **store** with a rename-time address writes its data's symbolic
  value into the MBC (store forwarding).
* A **load** with a rename-time address that hits is converted into a
  move of the matching entry's symbolic value (redundant load
  elimination / store forwarding); on a miss it installs its own
  destination register so that a later load to the same address can be
  eliminated.

Tag matching is exact, as described in the paper: entries are 8-byte
aligned and the tag match includes the offset from alignment and the
access size.  Stores whose addresses are unknown at rename proceed
*speculatively* (the paper's chosen mode); when such a store executes,
overlapping entries are invalidated, and any load that was wrongly
forwarded in the window is caught by the value check and recovered.

Entries pin the physical registers named by their symbolic values via
reference counts, honouring the paper's extended-lifetime requirement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..uarch.regfile import PhysRegFile
from .symbolic import SymVal

_BLOCK_SHIFT = 3  # 8-byte alignment


@dataclass
class MBCEntry:
    """One MBC line: symbolic contents of (addr, size).

    FP entries (``is_fp``) carry no symbolic expression beyond a plain
    physical-register reference: the integer tables cannot describe FP
    values, but a forwarded FP load still becomes a register move of
    the previous memory operation's destination/source register.
    """

    addr: int
    size: int
    sym: SymVal
    #: Oracle value of the memory location at insertion time; used for
    #: the paper's strict value checking and to detect speculative
    #: staleness (an unknown-address store slipped past this entry).
    expected_value: int | float
    is_fp: bool = False


def _blocks(addr: int, size: int):
    first = addr >> _BLOCK_SHIFT
    last = (addr + size - 1) >> _BLOCK_SHIFT
    return range(first, last + 1)


class MemoryBypassCache:
    """Fixed-capacity, LRU, exact-tag-match bypass cache."""

    def __init__(self, capacity: int, prf: PhysRegFile):
        self._capacity = capacity
        self._prf = prf
        self._entries: OrderedDict[tuple[int, int], MBCEntry] = OrderedDict()
        self._by_block: dict[int, set[tuple[int, int]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------

    def lookup(self, addr: int, size: int) -> MBCEntry | None:
        """Exact-match probe; hits refresh LRU order."""
        key = (addr, size)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(self, addr: int, size: int, sym: SymVal,
               expected_value: int | float, is_fp: bool = False) -> None:
        """Install the symbolic contents of (addr, size).

        Overlapping entries with different tags are invalidated first
        (the new write supersedes them); an exact-tag entry is
        replaced.  The LRU entry is evicted if the cache is full.
        """
        self._remove_overlapping(addr, size)
        if len(self._entries) >= self._capacity:
            self._evict_lru()
        entry = MBCEntry(addr=addr, size=size, sym=sym,
                         expected_value=expected_value, is_fp=is_fp)
        if sym.base is not None:
            self._prf.add_ref(sym.base)
        key = (addr, size)
        self._entries[key] = entry
        for block in _blocks(addr, size):
            self._by_block.setdefault(block, set()).add(key)

    # ------------------------------------------------------------------
    # invalidation / eviction
    # ------------------------------------------------------------------

    def invalidate_overlap(self, addr: int, size: int) -> int:
        """Drop every entry overlapping [addr, addr+size).

        Called when a store whose address was unknown at rename
        executes — the speculative-consistency recovery path.
        Returns the number of entries dropped.
        """
        dropped = self._remove_overlapping(addr, size)
        self.invalidations += dropped
        return dropped

    def invalidate_entry(self, addr: int, size: int) -> None:
        """Drop the exact entry for (addr, size) if present."""
        key = (addr, size)
        if key in self._entries:
            self._drop(key)
            self.invalidations += 1

    def evict_lru(self) -> bool:
        """Evict the least-recently-used entry (register-pressure relief)."""
        if not self._entries:
            return False
        self._evict_lru()
        return True

    def clear(self) -> None:
        """Drop all entries (releases every pinned register)."""
        for key in list(self._entries):
            self._drop(key)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _remove_overlapping(self, addr: int, size: int) -> int:
        dropped = 0
        for block in _blocks(addr, size):
            keys = self._by_block.get(block)
            if not keys:
                continue
            for key in list(keys):
                entry_addr, entry_size = key
                if entry_addr < addr + size and addr < entry_addr + entry_size:
                    self._drop(key)
                    dropped += 1
        return dropped

    def _evict_lru(self) -> None:
        key = next(iter(self._entries))
        self._drop(key)
        self.evictions += 1

    def _drop(self, key: tuple[int, int]) -> None:
        entry = self._entries.pop(key)
        if entry.sym.base is not None:
            self._prf.release(entry.sym.base)
        for block in _blocks(entry.addr, entry.size):
            keys = self._by_block.get(block)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_block[block]
