"""Ablation: the contribution of each optimizer component.

Not a numbered figure in the paper, but the natural decomposition of
its design (Section 2.1 lists CP/RA and RLE/SF as the two optimization
stages, and Section 2.2 adds value feedback).  Four configurations,
each a speedup over the baseline:

* ``feedback only``   — eager bypassing, no symbolic optimization
* ``CP/RA only``      — symbolic tables without the MBC (no feedback)
* ``CP/RA + RLE/SF``  — the full optimizer without value feedback
* ``full``            — everything (the default configuration)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import geomean, prewarm_suites, run_workload

SCENARIOS = (
    ("feedback only", dict(enable_opt=False)),
    ("CP/RA only", dict(enable_feedback=False, enable_rle_sf=False)),
    ("CP/RA + RLE/SF", dict(enable_feedback=False)),
    ("full", dict()),
)


@dataclass(frozen=True)
class AblationRow:
    """One suite's component-ablation bars."""

    suite: str
    bars: dict[str, float]


def run(scale: int = 1, workloads_per_suite: int | None = None,
        jobs: int | None = None) -> list[AblationRow]:
    """Measure the ablation per suite."""
    base = default_config()
    lists = prewarm_suites(
        [base] + [base.with_optimizer(**overrides)
                  for _, overrides in SCENARIOS],
        scale, jobs, workloads_per_suite)
    rows = []
    for suite in SUITES:
        suite_list = lists[suite]
        bars = {}
        for label, overrides in SCENARIOS:
            config = base.with_optimizer(**overrides)
            values = []
            for workload in suite_list:
                baseline = run_workload(workload.name, base, scale)
                variant = run_workload(workload.name, config, scale)
                values.append(baseline.cycles / variant.cycles)
            bars[label] = geomean(values)
        rows.append(AblationRow(suite=suite, bars=bars))
    return rows


def format(rows: list[AblationRow]) -> str:
    """Render the ablation bars as text."""
    labels = [label for label, _ in SCENARIOS]
    table_rows = [[row.suite] + [row.bars[label] for label in labels]
                  for row in rows]
    return format_table(
        "Ablation: contribution of each optimizer component (speedup)",
        ["suite", *labels],
        table_rows)
