"""Architectural (functional) emulator and dynamic trace format.

The emulator executes a :class:`~repro.isa.program.Program` and records
one trace row per retired instruction.  The trace is both

* the **oracle**: true values, effective addresses, and branch outcomes
  used to verify every optimization the continuous optimizer performs
  (the paper's "strict expression and value checking"), and
* the **input to the timing model**: the cycle-level pipeline is
  trace-driven, replaying this dynamic instruction stream.

This mirrors the paper's SimpleScalar-based methodology, where a
functional core drives a detailed custom timing model.

The trace can be produced three ways:

* :meth:`Emulator.run` materializes the whole stream as an
  :class:`EmulationResult` whose trace is a packed
  :class:`~repro.functional.trace.PackedTrace` (entries materialize
  lazily as :class:`TraceEntry` views),
* :meth:`Emulator.run_packed` emulates a bounded window from the
  current state into a packed trace — the segment planner's fast
  path — leaving the state ready for :meth:`checkpoint`, or
* :meth:`Emulator.iter_trace` yields :class:`TraceEntry` objects
  **lazily** one at a time (the original streaming API).

The main loop is table-driven: each static instruction pre-decodes
once per program into a flat tuple of small integers and handler
callables (indexed by the tables in :mod:`repro.isa.opcodes`), so the
per-instruction work is integer dispatch plus column appends — no
enum hashing, no ``OpSpec`` attribute chasing, no dataclass
construction.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Iterator

from ..isa.instructions import Imm, Instruction, Reg
from ..isa.opcodes import OPCODE_ID, OpClass, Opcode
from ..isa.program import INSTR_BYTES, Program, STACK_BASE, TEXT_BASE
from ..isa.registers import (NUM_FP_REGS, NUM_INT_REGS, STACK_POINTER_REG,
                             is_fp_reg, is_zero_reg)
from . import alu
from .memory import Memory
from .trace import (NO_ADDR, NO_TAKEN, PackedTrace, TraceEntry,
                    note_dispatch_build, note_packed_build)

__all__ = [
    "ArchState", "Checkpoint", "EmulationError", "EmulationLimit",
    "EmulationResult", "Emulator", "PackedTrace", "TraceEntry",
    "run_program",
]

_INT64_MAX = (1 << 63) - 1
_INT64_MIN = -(1 << 63)
_STF_ID = OPCODE_ID[Opcode.STF]


class EmulationError(Exception):
    """Raised when a program performs an illegal operation."""


class EmulationLimit(EmulationError):
    """Raised when a program exceeds the dynamic instruction budget."""


@dataclass(frozen=True)
class Checkpoint:
    """A resumable snapshot of architectural state.

    Captures everything :meth:`Emulator.restore` needs to continue
    execution exactly where :meth:`Emulator.checkpoint` left off:
    registers, the sparse memory image, the PC, and the dynamic
    instruction count (so trace ``seq`` numbers keep running across
    segment boundaries).
    """

    pc: int
    instret: int
    halted: bool
    int_regs: tuple[int, ...]
    fp_regs: tuple[float, ...]
    memory_image: dict[int, int]


@dataclass
class EmulationResult:
    """Everything the emulator produced for one program run."""

    trace: "PackedTrace | list[TraceEntry]"
    halted: bool
    int_regs: list[int]
    fp_regs: list[float]
    memory: Memory

    @property
    def instruction_count(self) -> int:
        return len(self.trace)

    def state_dict(self) -> dict:
        """Canonical comparable form of the final architectural state.

        FP registers are compared as IEEE-754 bit patterns so the form
        is total (NaNs compare by identity of representation, not by
        ``==``).  This is the emulator side of the differential
        harness's state checks; :class:`ArchState` produces the same
        shape from the retirement side.
        """
        return _state_dict(self.int_regs, self.fp_regs,
                           self.memory.snapshot())


def _state_dict(int_regs, fp_regs, memory_image: dict[int, int]) -> dict:
    bits = [struct.unpack("<Q", struct.pack("<d", v))[0] for v in fp_regs]
    # Zero bytes are indistinguishable from never-written addresses
    # architecturally (BSS semantics), so drop them before comparing.
    image = {addr: byte for addr, byte in memory_image.items() if byte}
    return {"int_regs": tuple(int_regs), "fp_bits": tuple(bits),
            "memory": image}


class ArchState:
    """Architectural state replayed entry-by-entry at **retirement**.

    The timing pipeline is trace-driven, so it never recomputes
    values — but it does decide *which* entries retire and in what
    order.  Feeding every retired :class:`TraceEntry` through an
    ``ArchState`` rebuilds the architectural registers and memory that
    retirement order implies; if the pipeline drops, duplicates, or
    reorders entries (across segments, optimizer variants, or drain
    paths), the final state diverges from the emulator's.  The
    differential harness (:mod:`repro.engine.differential`) compares
    exactly that.
    """

    def __init__(self, program: Program):
        self.int_regs = [0] * NUM_INT_REGS
        self.fp_regs = [0.0] * NUM_FP_REGS
        self.int_regs[STACK_POINTER_REG] = STACK_BASE
        self.memory = Memory(program.data)
        self.applied = 0

    def apply(self, entry: TraceEntry) -> None:
        """Fold one retired trace entry into the architectural state."""
        instr = entry.instr
        spec = instr.spec
        if spec.is_store:
            if instr.opcode is Opcode.STF:
                self.memory.store_double(entry.addr,
                                         float(entry.store_value))
            else:
                self.memory.store(entry.addr, int(entry.store_value),
                                  spec.mem_size)
        elif instr.dst is not None and entry.result is not None:
            dst = instr.dst
            if not is_zero_reg(dst):
                if is_fp_reg(dst):
                    self.fp_regs[dst - NUM_INT_REGS] = float(entry.result)
                else:
                    self.int_regs[dst] = alu.to_signed64(int(entry.result))
        self.applied += 1

    def apply_di(self, di) -> None:
        """:meth:`apply` from a pipeline ``DynInstr``'s direct fields.

        Equivalent to ``apply(di.entry)`` without materializing the
        entry: the emulator records a store's data value as the row's
        ``result``, so ``store_value == result`` by construction.
        """
        if di.is_store:
            value = di.result
            if value is None:  # hand-built entries may omit it
                value = di.entry.store_value
            if di.op == _STF_ID:
                self.memory.store_double(di.addr, float(value))
            else:
                self.memory.store(di.addr, int(value), di.mem_size)
        else:
            result = di.result
            dst = di.instr.dst
            if dst is not None and result is not None \
                    and not is_zero_reg(dst):
                if is_fp_reg(dst):
                    self.fp_regs[dst - NUM_INT_REGS] = float(result)
                else:
                    self.int_regs[dst] = alu.to_signed64(int(result))
        self.applied += 1

    def state_dict(self) -> dict:
        """The same canonical form as :meth:`EmulationResult.state_dict`."""
        return _state_dict(self.int_regs, self.fp_regs,
                           self.memory.snapshot())


#: Lazily bound telemetry registry — the functional layer must not
#: import :mod:`repro.engine` at module level (the engine's package
#: init imports this module), so the registry binds at first use.
_TELEMETRY = None


def _telemetry():
    global _TELEMETRY
    if _TELEMETRY is None:
        from ..engine.telemetry import TELEMETRY
        _TELEMETRY = TELEMETRY
    return _TELEMETRY


# ---------------------------------------------------------------------------
# per-program pre-decode for the packed fast loop
# ---------------------------------------------------------------------------
# Each static instruction decodes once into a flat 11-tuple:
#
#   (kind, op, f1, m0, p0, m1, p1, dst_kind, dst_idx, disp, f2)
#
# kind selects the handler arm below; op is the opcode id; (m0, p0) and
# (m1, p1) are source read modes/payloads; dst_kind/-idx encode the
# write target; f1 holds the ALU/condition callable (or the memory
# size); f2 holds the branch target (or the load's signedness).

_K_FN2 = 0       # result = f1(a, b): two-source int/fp ALU
_K_LOAD = 1      # integer load
_K_STORE = 2     # integer store
_K_BR_COND = 3   # conditional branch (f1 = condition test)
_K_FN1 = 4       # result = f1(a): unary ALU, itof, ftoi
_K_LDA = 5       # result = signed64(base + disp)
_K_BR = 6        # direct unconditional branch
_K_JSR = 7       # call: link + direct jump
_K_JMP_IND = 8   # ret/jmp through a register
_K_LOAD_F = 9    # ldf
_K_STORE_F = 10  # stf
_K_NOP = 11
_K_HALT = 12

# source-operand read modes
_M_IMM = 0
_M_INT = 1
_M_FP = 2
_M_ZERO_INT = 3
_M_ZERO_FP = 4


def _decode_src(src: Reg | Imm) -> tuple[int, int | float]:
    if isinstance(src, Imm):
        return _M_IMM, src.value
    index = src.index
    if is_zero_reg(index):
        return (_M_ZERO_FP, 0) if is_fp_reg(index) else (_M_ZERO_INT, 0)
    if is_fp_reg(index):
        return _M_FP, index - NUM_INT_REGS
    return _M_INT, index


def _decode_instr(instr: Instruction) -> tuple:
    spec = instr.spec
    op = OPCODE_ID[instr.opcode]
    opcode = instr.opcode
    modes = [_decode_src(src) for src in instr.srcs]
    while len(modes) < 2:
        modes.append((_M_ZERO_INT, 0))
    (m0, p0), (m1, p1) = modes[0], modes[1]
    dst = instr.dst
    if dst is None or is_zero_reg(dst):
        dst_kind, dst_idx = -1, 0
    elif is_fp_reg(dst):
        dst_kind, dst_idx = 1, dst - NUM_INT_REGS
    else:
        dst_kind, dst_idx = 0, dst
    target = int(instr.target) if instr.target is not None else 0

    def rec(kind, f1=None, f2=None):
        return (kind, op, f1, m0, p0, m1, p1, dst_kind, dst_idx,
                instr.disp, f2)

    if spec.is_load:
        if opcode is Opcode.LDF:
            return rec(_K_LOAD_F, spec.mem_size)
        return rec(_K_LOAD, spec.mem_size, spec.mem_signed)
    if spec.is_store:
        if opcode is Opcode.STF:
            return rec(_K_STORE_F, spec.mem_size)
        return rec(_K_STORE, spec.mem_size)
    if spec.is_branch:
        return rec(_K_BR_COND, alu.COND_TESTS[spec.cond], target)
    if spec.is_jump:
        if opcode is Opcode.JSR:
            return rec(_K_JSR, None, target)
        if spec.is_indirect:
            return rec(_K_JMP_IND)
        return rec(_K_BR, None, target)
    if opcode is Opcode.LDA:
        return rec(_K_LDA)
    if opcode is Opcode.ITOF:
        return rec(_K_FN1, alu.convert_itof)
    if opcode is Opcode.FTOI:
        return rec(_K_FN1, alu.convert_ftoi)
    if opcode is Opcode.NOP:
        return rec(_K_NOP)
    if opcode is Opcode.HALT:
        return rec(_K_HALT)
    fn = alu.FP_OPS.get(opcode) if spec.op_class is OpClass.FP \
        else alu.INT_OPS.get(opcode)
    if fn is not None:
        return rec(_K_FN2, fn)
    fn = alu.UNARY_FP_OPS.get(opcode) if spec.op_class is OpClass.FP \
        else alu.UNARY_INT_OPS.get(opcode)
    if fn is not None:
        return rec(_K_FN1, fn)
    raise ValueError(f"cannot decode opcode {opcode}")


def decode_program(program: Program) -> tuple:
    """Pre-decoded handler records for *program*, built once and cached.

    Returns ``(decoded, reg_srcs, op_table, pc_table)``: the decode
    tuples, per-instruction register-source tuples, opcode ids, and
    byte PCs — all indexed by instruction index.
    """
    cached = program.__dict__.get("_packed_decode")
    if cached is not None:
        return cached
    started = time.perf_counter()
    instructions = program.instructions
    decoded = tuple(_decode_instr(instr) for instr in instructions)
    reg_srcs = [instr.reg_sources() for instr in instructions]
    op_table = [OPCODE_ID[instr.opcode] for instr in instructions]
    pc_table = [TEXT_BASE + i * INSTR_BYTES for i in range(len(instructions))]
    cached = (decoded, reg_srcs, op_table, pc_table)
    program._packed_decode = cached
    note_dispatch_build(time.perf_counter() - started)
    return cached


class Emulator:
    """Executes programs architecturally, producing oracle traces."""

    def __init__(self, program: Program, max_instructions: int = 5_000_000):
        self._program = program
        self._max_instructions = max_instructions
        self._int_regs = [0] * NUM_INT_REGS
        self._fp_regs = [0.0] * NUM_FP_REGS
        self._int_regs[STACK_POINTER_REG] = STACK_BASE
        self._memory = Memory(program.data)
        self._pc = program.entry
        self._instret = 0
        self._halted = False

    @property
    def memory(self) -> Memory:
        return self._memory

    @property
    def halted(self) -> bool:
        """Whether execution has reached ``halt``."""
        return self._halted

    @property
    def instruction_count(self) -> int:
        """Dynamic instructions retired so far (the next entry's seq)."""
        return self._instret

    def run(self) -> EmulationResult:
        """Run until ``halt`` (or the instruction budget is exhausted).

        Telemetry is per-run (one clock read pair around the whole
        emulation; the packed loop itself stays uninstrumented so
        nothing is paid per instruction).
        """
        started_ns = time.perf_counter_ns()
        trace = self.run_packed()
        telemetry = _telemetry()
        if telemetry.enabled:
            elapsed = (time.perf_counter_ns() - started_ns) / 1e9
            telemetry.counter("repro_emu_runs_total").inc()
            telemetry.counter("repro_emu_instructions_total").inc(
                len(trace))
            telemetry.histogram("repro_emu_run_seconds").observe(elapsed)
            if elapsed > 0:
                telemetry.gauge("repro_emu_insns_per_second").set(
                    len(trace) / elapsed)
        return EmulationResult(trace=trace, halted=self._halted,
                               int_regs=list(self._int_regs),
                               fp_regs=list(self._fp_regs),
                               memory=self._memory)

    def run_packed(self, max_entries: int | None = None) -> PackedTrace:
        """Emulate from the current state into a :class:`PackedTrace`.

        Runs until ``halt``, the dynamic-instruction budget, or (when
        *max_entries* is given) that many entries — leaving the
        architectural state exactly at the boundary, ready for
        :meth:`checkpoint`.  Semantically identical to pulling the
        same number of items from :meth:`iter_trace`, but executed by
        the table-dispatch loop.
        """
        decoded, reg_srcs, op_table, pc_table = decode_program(self._program)
        trace = PackedTrace(self._program.instructions, reg_srcs)
        if self._halted or max_entries == 0:
            return trace
        # local bindings for the hot loop
        ii_ap = trace.iidx.append
        addr_ap = trace.addrs.append
        taken_ap = trace.takens.append
        npc_ap = trace.next_pcs.append
        res_ap = trace.results.append
        src_ap = trace.srcvals.append
        int_regs = self._int_regs
        fp_regs = self._fp_regs
        memory = self._memory
        mload = memory.load
        mstore = memory.store
        mload_d = memory.load_double
        mstore_d = memory.store_double
        to_s64 = alu.to_signed64
        pc = self._pc
        instret = self._instret
        start_seq = instret
        max_instructions = self._max_instructions
        n = len(decoded)
        halted = False
        remaining = -1 if max_entries is None else max_entries
        try:
            while remaining != 0:
                if instret >= max_instructions:
                    raise EmulationLimit(
                        f"exceeded {max_instructions} dynamic instructions"
                        f" at pc={pc:#x}")
                off = pc - TEXT_BASE
                idx = off >> 2
                if off & 3 or not 0 <= idx < n:
                    raise IndexError(
                        f"PC {pc:#x} is outside the text segment")
                d = decoded[idx]
                kind = d[0]
                next_pc = pc + 4
                addr = NO_ADDR
                taken = NO_TAKEN
                result = None
                if kind == _K_FN2:
                    m0 = d[3]
                    p0 = d[4]
                    a = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    m1 = d[5]
                    p1 = d[6]
                    b = p1 if m1 == 0 else (
                        int_regs[p1] if m1 == 1 else (
                            fp_regs[p1] if m1 == 2 else (
                                0 if m1 == 3 else 0.0)))
                    result = d[2](a, b)
                    src_ap((a, b))
                elif kind == _K_LOAD:
                    m0 = d[3]
                    p0 = d[4]
                    base = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    addr = base + d[9]
                    if addr > _INT64_MAX or addr < _INT64_MIN:
                        addr = to_s64(addr)
                    if addr < 0:
                        raise EmulationError(
                            f"load from negative address {addr:#x}")
                    result = mload(addr, d[2], d[10])
                    src_ap((base,))
                elif kind == _K_STORE:
                    m0 = d[3]
                    p0 = d[4]
                    data = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    m1 = d[5]
                    p1 = d[6]
                    base = p1 if m1 == 0 else (
                        int_regs[p1] if m1 == 1 else (
                            fp_regs[p1] if m1 == 2 else (
                                0 if m1 == 3 else 0.0)))
                    addr = base + d[9]
                    if addr > _INT64_MAX or addr < _INT64_MIN:
                        addr = to_s64(addr)
                    if addr < 0:
                        raise EmulationError(
                            f"store to negative address {addr:#x}")
                    mstore(addr, int(data), d[2])
                    result = data
                    src_ap((data, base))
                elif kind == _K_BR_COND:
                    m0 = d[3]
                    p0 = d[4]
                    v = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    if d[2](v):
                        taken = 1
                        next_pc = d[10]
                    else:
                        taken = 0
                    src_ap((v,))
                elif kind == _K_FN1:
                    m0 = d[3]
                    p0 = d[4]
                    a = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    result = d[2](a)
                    src_ap((a,))
                elif kind == _K_LDA:
                    m0 = d[3]
                    p0 = d[4]
                    a = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    result = a + d[9]
                    if result > _INT64_MAX or result < _INT64_MIN:
                        result = to_s64(result)
                    src_ap((a,))
                elif kind == _K_BR:
                    taken = 1
                    next_pc = d[10]
                    src_ap(())
                elif kind == _K_JSR:
                    taken = 1
                    next_pc = d[10]
                    result = pc + 4
                    src_ap(())
                elif kind == _K_JMP_IND:
                    m0 = d[3]
                    p0 = d[4]
                    v = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    taken = 1
                    next_pc = int(v)
                    src_ap((v,))
                elif kind == _K_LOAD_F:
                    m0 = d[3]
                    p0 = d[4]
                    base = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    addr = base + d[9]
                    if addr > _INT64_MAX or addr < _INT64_MIN:
                        addr = to_s64(addr)
                    if addr < 0:
                        raise EmulationError(
                            f"load from negative address {addr:#x}")
                    result = mload_d(addr)
                    src_ap((base,))
                elif kind == _K_STORE_F:
                    m0 = d[3]
                    p0 = d[4]
                    data = p0 if m0 == 0 else (
                        int_regs[p0] if m0 == 1 else (
                            fp_regs[p0] if m0 == 2 else (
                                0 if m0 == 3 else 0.0)))
                    m1 = d[5]
                    p1 = d[6]
                    base = p1 if m1 == 0 else (
                        int_regs[p1] if m1 == 1 else (
                            fp_regs[p1] if m1 == 2 else (
                                0 if m1 == 3 else 0.0)))
                    addr = base + d[9]
                    if addr > _INT64_MAX or addr < _INT64_MIN:
                        addr = to_s64(addr)
                    if addr < 0:
                        raise EmulationError(
                            f"store to negative address {addr:#x}")
                    mstore_d(addr, float(data))
                    result = data
                    src_ap((data, base))
                elif kind == _K_NOP:
                    src_ap(())
                else:  # _K_HALT
                    halted = True
                    break
                if result is not None:
                    dst_kind = d[7]
                    if dst_kind == 0:
                        int_regs[d[8]] = result
                    elif dst_kind == 1:
                        fp_regs[d[8]] = result
                ii_ap(idx)
                addr_ap(addr)
                taken_ap(taken)
                npc_ap(next_pc)
                res_ap(result)
                pc = next_pc
                instret += 1
                remaining -= 1
        finally:
            self._pc = pc
            self._instret = instret
            if halted:
                self._halted = True
        # Derived columns, filled in bulk: seq is consecutive from the
        # window's first instruction; opcode id and pc follow from the
        # static-instruction index.
        count = len(trace.iidx)
        trace.seqs.extend(range(start_seq, start_seq + count))
        trace.ops = trace.ops.__class__(
            "B", map(op_table.__getitem__, trace.iidx))
        trace.pcs = trace.pcs.__class__(
            "q", map(pc_table.__getitem__, trace.iidx))
        note_packed_build(trace)
        return trace

    def iter_trace(self) -> Iterator[TraceEntry]:
        """Lazily yield trace entries from the current state.

        The generator advances architectural state one instruction per
        item pulled, so a consumer that stops after *n* items leaves
        the emulator exactly *n* instructions further along — at which
        point :meth:`checkpoint` captures a clean segment boundary.
        Resuming iteration (from the same generator or a fresh one)
        continues the stream with monotonically increasing ``seq``.
        """
        while not self._halted:
            if self._instret >= self._max_instructions:
                raise EmulationLimit(
                    f"exceeded {self._max_instructions} dynamic instructions"
                    f" at pc={self._pc:#x}")
            entry = self.step(self._instret)
            if entry is None:
                self._halted = True
                return
            self._instret += 1
            yield entry

    # ------------------------------------------------------------------
    # checkpoint / restore of architectural state
    # ------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the architectural state for a later :meth:`restore`."""
        return Checkpoint(pc=self._pc, instret=self._instret,
                          halted=self._halted,
                          int_regs=tuple(self._int_regs),
                          fp_regs=tuple(self._fp_regs),
                          memory_image=self._memory.snapshot())

    def restore(self, state: Checkpoint) -> None:
        """Rewind/forward the emulator to a :meth:`checkpoint` state.

        The checkpoint must come from an emulator running the same
        program; nothing about the static code image is snapshotted.
        """
        self._pc = state.pc
        self._instret = state.instret
        self._halted = state.halted
        self._int_regs = list(state.int_regs)
        self._fp_regs = list(state.fp_regs)
        self._memory = Memory(state.memory_image)

    # ------------------------------------------------------------------
    # single-step execution (the reference implementation the packed
    # loop is differentially tested against)
    # ------------------------------------------------------------------

    def step(self, seq: int) -> TraceEntry | None:
        """Execute one instruction; return its trace entry (None = halt)."""
        instr = self._program.at(self._pc)
        opcode = instr.opcode
        if opcode is Opcode.HALT:
            return None
        spec = instr.spec
        src_values = tuple(self._read(src) for src in instr.srcs)
        result: int | float | None = None
        addr: int | None = None
        taken: bool | None = None
        next_pc = self._pc + INSTR_BYTES

        if spec.is_load:
            addr = alu.to_signed64(src_values[0] + instr.disp)
            result = self._do_load(opcode, addr, spec)
        elif spec.is_store:
            addr = alu.to_signed64(src_values[1] + instr.disp)
            self._do_store(opcode, addr, src_values[0], spec)
            result = src_values[0]
        elif spec.is_branch:
            taken = alu.branch_taken(spec.cond, src_values[0])
            if taken:
                next_pc = int(instr.target)
        elif spec.is_jump:
            taken = True
            if spec.is_indirect:
                next_pc = int(src_values[0])
            else:
                next_pc = int(instr.target)
            if opcode is Opcode.JSR:
                result = self._pc + INSTR_BYTES
        elif opcode is Opcode.LDA:
            result = alu.evaluate_int(Opcode.LDA, src_values[0], instr.disp)
        elif opcode is Opcode.ITOF:
            result = alu.convert_itof(src_values[0])
        elif opcode is Opcode.FTOI:
            result = alu.convert_ftoi(src_values[0])
        elif spec.op_class is OpClass.FP:
            result = alu.evaluate_fp(opcode, *src_values)
        elif opcode is Opcode.NOP:
            result = None
        else:
            result = alu.evaluate_int(opcode, *src_values)

        if instr.dst is not None and result is not None:
            self._write(instr.dst, result)

        entry = TraceEntry(seq=seq, pc=self._pc, instr=instr,
                           src_values=src_values, result=result, addr=addr,
                           taken=taken, next_pc=next_pc)
        self._pc = next_pc
        return entry

    # ------------------------------------------------------------------
    # register and memory access helpers
    # ------------------------------------------------------------------

    def _read(self, src: Reg | Imm) -> int | float:
        if isinstance(src, Imm):
            return src.value
        index = src.index
        if is_zero_reg(index):
            return 0.0 if is_fp_reg(index) else 0
        if is_fp_reg(index):
            return self._fp_regs[index - NUM_INT_REGS]
        return self._int_regs[index]

    def _write(self, dst: int, value: int | float) -> None:
        if is_zero_reg(dst):
            return
        if is_fp_reg(dst):
            self._fp_regs[dst - NUM_INT_REGS] = float(value)
        else:
            self._int_regs[dst] = alu.to_signed64(int(value))

    def _do_load(self, opcode: Opcode, addr: int, spec) -> int | float:
        if addr < 0:
            raise EmulationError(f"load from negative address {addr:#x}")
        if opcode is Opcode.LDF:
            return self._memory.load_double(addr)
        return self._memory.load(addr, spec.mem_size, signed=spec.mem_signed)

    def _do_store(self, opcode: Opcode, addr: int, value: int | float,
                  spec) -> None:
        if addr < 0:
            raise EmulationError(f"store to negative address {addr:#x}")
        if opcode is Opcode.STF:
            self._memory.store_double(addr, float(value))
        else:
            self._memory.store(addr, int(value), spec.mem_size)


def run_program(program: Program,
                max_instructions: int = 5_000_000) -> EmulationResult:
    """Convenience wrapper: emulate *program* and return the result."""
    return Emulator(program, max_instructions=max_instructions).run()
