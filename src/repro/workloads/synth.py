"""Seeded synthetic workload generator (the ``synth`` suite).

The paper's 22 hand-written kernels pin the reproduction to a fixed
set of program behaviours.  This module manufactures an **unbounded,
deterministic** family of programs on top of the same assembly dialect
and :mod:`repro.isa.assembler` path, giving the sweep/search engine
and the differential-correctness harness
(:mod:`repro.engine.differential`) an endless supply of inputs.

A synthetic workload is named by a canonical string::

    synth:<family>@seed=<int>[,<param>=<int>,...]

e.g. ``synth:mixed@seed=7,branch=20,mem=40``.  The name round-trips
through :func:`parse_name` / :attr:`SynthSpec.name`, and the whole
registry (:func:`repro.workloads.get_workload`) resolves any such name
on the fly — so ``run_workload``, ``repro sweep --workloads
synth:...``, ``repro search``, segmented simulation, and the artifact
store (which keys traces by workload name) all work unchanged.
:meth:`SynthSpec.cache_key` gives a stable content hash of
``(family, seed, params)`` for anything that wants an explicit key.

Families
--------
``ptrchase``   serial pointer chasing over a seeded permutation cycle
``stream``     streaming array passes (``c[i] = a[i] + k*b[i]``)
``branchy``    LCG-data-dependent branch chains (``iters=0`` is the
               adversarial degenerate: an empty program that retires
               zero instructions and therefore has zero IPC)
``ilp``        wide independent arithmetic chains (high ILP)
``mixed``      tunable op-class mix: ``mem``/``branch``/``mul``
               percentages over a seeded random loop body

Generation is pure: the same ``(family, seed, params, scale)`` always
produces the same assembly text (the RNG is seeded from a string, which
Python hashes with SHA-512 — stable across interpreter versions).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..uarch.config import canonical_json
from .common import Workload, fill_random_quads, lcg_step

#: Canonical-name prefix of every synthetic workload.
PREFIX = "synth:"

#: The synthetic program families, in roster order.
FAMILIES = ("ptrchase", "stream", "branchy", "ilp", "mixed")

#: Per-family tunable parameters and their defaults.  Every parameter
#: is an integer; unlisted keys are rejected at parse time.
FAMILY_DEFAULTS: dict[str, dict[str, int]] = {
    "ptrchase": {"nodes": 128, "steps": 1500},
    "stream": {"elems": 256, "passes": 4},
    "branchy": {"iters": 1200, "taken": 50},
    "ilp": {"chains": 6, "iters": 300},
    "mixed": {"iters": 300, "ops": 24, "mem": 30, "branch": 15, "mul": 10},
}

#: Tiny parameter overrides for smoke-budget fuzzing (CI's fuzz-smoke
#: job): every family's dynamic instruction count drops by ~10x.
SMALL_PARAMS: dict[str, dict[str, int]] = {
    "ptrchase": {"nodes": 32, "steps": 150},
    "stream": {"elems": 48, "passes": 1},
    "branchy": {"iters": 120},
    "ilp": {"chains": 4, "iters": 40},
    "mixed": {"iters": 40, "ops": 16},
}


@dataclass(frozen=True)
class SynthSpec:
    """One synthetic program: a family, a seed, and its parameters.

    ``params`` holds the **full** parameter assignment (defaults
    merged), sorted by key, so two specs naming the same program
    compare and hash equal.
    """

    family: str
    seed: int
    params: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if self.family not in FAMILY_DEFAULTS:
            raise KeyError(f"unknown synth family {self.family!r}; "
                           f"known: {FAMILIES}")
        known = FAMILY_DEFAULTS[self.family]
        for key, value in self.params:
            if key not in known:
                raise KeyError(
                    f"unknown parameter {key!r} for family "
                    f"{self.family!r}; known: {sorted(known)}")
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"parameter {key}={value!r} must be an "
                                 f"int")
            if value < 0:
                raise ValueError(f"parameter {key}={value} must be >= 0")
        if self.family == "mixed":
            merged = dict(known)
            merged.update(self.params)
            total = merged["mem"] + merged["branch"] + merged["mul"]
            if total > 100:
                raise ValueError(
                    f"mixed ratios mem+branch+mul must be <= 100%, got "
                    f"mem={merged['mem']} branch={merged['branch']} "
                    f"mul={merged['mul']} ({total}%)")

    @classmethod
    def make(cls, family: str, seed: int = 0,
             params: dict[str, int] | None = None) -> "SynthSpec":
        """Build a spec with defaults merged and keys canonicalized."""
        defaults = FAMILY_DEFAULTS.get(family)
        if defaults is None:
            raise KeyError(f"unknown synth family {family!r}; "
                           f"known: {FAMILIES}")
        merged = dict(defaults)
        merged.update(params or {})
        return cls(family=family, seed=seed,
                   params=tuple(sorted(merged.items())))

    @property
    def param_dict(self) -> dict[str, int]:
        return dict(self.params)

    @property
    def name(self) -> str:
        """The canonical registry name of this program.

        Only parameters that differ from the family defaults appear,
        so ``synth:ilp@seed=3`` stays short and default-equivalent
        spellings collapse to one name (one store entry).
        """
        defaults = FAMILY_DEFAULTS[self.family]
        extras = [f"{k}={v}" for k, v in self.params if defaults[k] != v]
        return (f"{PREFIX}{self.family}@seed={self.seed}"
                + "".join("," + e for e in extras))

    def cache_key(self) -> str:
        """Stable content hash of ``(family, seed, params)``."""
        identity = {"family": self.family, "seed": self.seed,
                    "params": self.param_dict}
        return hashlib.sha256(canonical_json(identity).encode()).hexdigest()

    def source(self, scale: int = 1) -> str:
        """Generate this program's assembly text at *scale*."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return _GENERATORS[self.family](self, scale)

    def rng(self) -> random.Random:
        """The seeded generation RNG (string-seeded: version-stable)."""
        return random.Random(f"{self.family}:{self.seed}")


def parse_name(name: str) -> SynthSpec:
    """Parse a ``synth:family@seed=N[,k=v,...]`` name into a spec."""
    if not name.startswith(PREFIX):
        raise KeyError(f"not a synth workload name: {name!r}")
    body = name[len(PREFIX):]
    family, sep, rest = body.partition("@")
    if not family:
        raise KeyError(f"bad synth name {name!r}: missing family")
    seed = 0
    params: dict[str, int] = {}
    if sep:
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key or not value.strip():
                raise KeyError(f"bad synth name {name!r}: expected "
                               f"'key=int' items, got {item!r}")
            try:
                number = int(value.strip(), 0)
            except ValueError:
                raise KeyError(f"bad synth name {name!r}: parameter "
                               f"{key}={value.strip()!r} is not an "
                               f"int") from None
            if key == "seed":
                seed = number
            else:
                params[key] = number
    return SynthSpec.make(family, seed=seed, params=params)


def workload_for(name: str) -> Workload:
    """A :class:`Workload` for any canonical (or spellable) synth name."""
    spec = parse_name(name)
    return Workload(
        name=spec.name, abbrev=spec.name, suite=SUITE,
        description=(f"synthetic {spec.family} (seed {spec.seed})"),
        source_fn=spec.source)


#: The suite name synthetic workloads register under.
SUITE = "synth"

#: Default roster behind ``suite_workloads("synth")`` / ``--suite
#: synth``: every family at two seeds, default parameters.
DEFAULT_ROSTER = tuple(f"{PREFIX}{family}@seed={seed}"
                       for family in FAMILIES for seed in (0, 1))


def roster_workloads() -> list[Workload]:
    """The default ``synth`` suite as workload objects."""
    return [workload_for(name) for name in DEFAULT_ROSTER]


def fuzz_specs(seeds: range, families: tuple[str, ...] = FAMILIES,
               small: bool = False) -> list[SynthSpec]:
    """The (family x seed) spec grid a fuzzing run walks.

    ``small=True`` applies :data:`SMALL_PARAMS` so smoke runs finish
    in CI time; the resulting names still canonicalize and cache like
    any other synth program.
    """
    specs = []
    for family in families:
        params = SMALL_PARAMS.get(family, {}) if small else {}
        for seed in seeds:
            specs.append(SynthSpec.make(family, seed=seed, params=params))
    return specs


# ----------------------------------------------------------------------
# family generators (pure functions of (spec, scale))
# ----------------------------------------------------------------------


def _epilogue(checksum_reg: str, tmp_reg: str) -> str:
    """Store a guaranteed-nonzero checksum and halt."""
    return (f"        or    {checksum_reg}, {checksum_reg}, 1\n"
            f"        ldi   {tmp_reg}, result\n"
            f"        stq   {checksum_reg}, 0({tmp_reg})\n"
            f"        halt\n")


def _gen_ptrchase(spec: SynthSpec, scale: int) -> str:
    """Serial pointer chasing over a seeded single-cycle permutation.

    The next-index table is built in Python from the RNG and emitted
    as ``.quad`` data; the chase loop is a classic load-to-load
    dependence chain (``s8add`` + ``ldq``), the paper's worst case for
    ILP and best case for rename-time address generation.
    """
    p = spec.param_dict
    nodes = max(2, p["nodes"])
    steps = p["steps"] * scale
    rng = spec.rng()
    order = list(range(1, nodes))
    rng.shuffle(order)
    cycle = [0] + order
    succ = [0] * nodes
    for position, node in enumerate(cycle):
        succ[node] = cycle[(position + 1) % nodes]
    quads = ",".join(str(v) for v in succ)
    return f"""
.data
table:  .quad {quads}
result: .quad 0
.text
        ldi   r1, {steps}
        ldi   r2, table
        clr   r3
        clr   r4
chase:  s8add r5, r3, r2
        ldq   r3, 0(r5)
        add   r4, r4, r3
        sub   r1, r1, 1
        bne   r1, chase
{_epilogue('r4', 'r6')}"""


def _gen_stream(spec: SynthSpec, scale: int) -> str:
    """Streaming passes: ``c[i] = a[i] + k*b[i]`` then a reduction."""
    p = spec.param_dict
    elems = max(1, p["elems"])
    passes = max(1, p["passes"] * scale)
    rng = spec.rng()
    state = rng.randrange(1, 1 << 30) | 1
    k = rng.choice((3, 5, 7, 9))
    body = f"""
.data
a:      .space {elems * 8}
b:      .space {elems * 8}
c:      .space {elems * 8}
result: .quad 0
.text
        ldi   r3, {state}
"""
    body += fill_random_quads("a", "r1", elems, "r4", "r3", "r5", 0xFFFF)
    body += fill_random_quads("b", "r1", elems, "r4", "r3", "r5", 0xFFFF)
    body += f"""        ldi   r9, {passes}
outer:  ldi   r1, {elems}
        ldi   r4, a
        ldi   r5, b
        ldi   r6, c
inner:  ldq   r7, 0(r4)
        ldq   r8, 0(r5)
        mul   r8, r8, {k}
        add   r7, r7, r8
        stq   r7, 0(r6)
        lda   r4, 8(r4)
        lda   r5, 8(r5)
        lda   r6, 8(r6)
        sub   r1, r1, 1
        bne   r1, inner
        sub   r9, r9, 1
        bne   r9, outer
        ldi   r1, {elems}
        ldi   r4, c
        clr   r2
reduce: ldq   r7, 0(r4)
        add   r2, r2, r7
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, reduce
{_epilogue('r2', 'r6')}"""
    return body


def _gen_branchy(spec: SynthSpec, scale: int) -> str:
    """LCG-data-dependent branch chains.

    ``taken`` sets the bias of the primary branch (percent, 0-100);
    the RNG adds two to four extra data-dependent branch blocks so
    different seeds exercise different control shapes.  ``iters=0``
    degenerates to an **empty program** — the adversarial zero-IPC
    point the objective/geomean hardening is tested against.
    """
    p = spec.param_dict
    iters = p["iters"] * scale
    if p["iters"] == 0:
        return "\n.text\n        halt\n"
    rng = spec.rng()
    state = rng.randrange(1, 1 << 30) | 1
    thresh = max(1, min(63, (p["taken"] * 64) // 100))
    body = f"""
.data
result: .quad 0
.text
        ldi   r3, {state}
        ldi   r1, {iters}
        clr   r12
loop:
{lcg_step('r3', 'r5')}        and   r6, r3, 63
        cmplt r7, r6, {thresh}
        beq   r7, alt
        add   r12, r12, r6
        br    join
alt:    xor   r12, r12, r3
join:
"""
    for index in range(rng.randint(2, 4)):
        mask = (1 << rng.randint(1, 3)) - 1
        opcode = rng.choice(("beq", "bne"))
        op = rng.choice(("add", "xor", "sub"))
        const = rng.randrange(1, 1 << 12)
        body += (f"        and   r8, r3, {mask}\n"
                 f"        {opcode}   r8, sk{index}\n"
                 f"        {op}   r12, r12, {const}\n"
                 f"        srl   r9, r3, {rng.randint(1, 8)}\n"
                 f"        add   r12, r12, r9\n"
                 f"sk{index}:\n")
    body += f"""        sub   r1, r1, 1
        bne   r1, loop
{_epilogue('r12', 'r13')}"""
    return body


def _gen_ilp(spec: SynthSpec, scale: int) -> str:
    """Wide independent arithmetic chains (high-ILP loop body).

    Each chain owns one accumulator register and applies a seeded
    sequence of single-cycle ops per iteration; chains never read each
    other, so issue width and scheduler capacity are the limit.
    """
    p = spec.param_dict
    chains = max(1, min(12, p["chains"]))
    iters = max(1, p["iters"] * scale)
    rng = spec.rng()
    regs = [f"r{8 + i}" for i in range(chains)]
    body = "\n.data\nresult: .quad 0\n.text\n"
    for reg in regs:
        body += f"        ldi   {reg}, {rng.randrange(1, 1 << 16)}\n"
    body += f"        ldi   r1, {iters}\nloop:\n"
    for reg in regs:
        for _ in range(3):
            op = rng.choice(("add", "xor", "sub", "s4add"))
            const = rng.randrange(1, 1 << 12)
            body += f"        {op}   {reg}, {reg}, {const}\n"
        body += (f"        and   {reg}, {reg}, "
                 f"{(1 << rng.randint(24, 40)) - 1}\n")
    body += "        sub   r1, r1, 1\n        bne   r1, loop\n"
    body += "        clr   r2\n"
    for reg in regs:
        body += f"        add   r2, r2, {reg}\n"
    body += _epilogue("r2", "r3")
    return body


#: Simple two-source ALU opcodes the ``mixed`` generator draws from.
_MIXED_ALU_OPS = ("add", "sub", "and", "or", "xor", "s4add", "s8add",
                  "cmplt", "cmpeq")


def _gen_mixed(spec: SynthSpec, scale: int) -> str:
    """Tunable op-class mix over a seeded random loop body.

    ``mem``/``branch``/``mul`` are percentages of the ``ops`` slots in
    each iteration (the rest are simple ALU ops); the RNG decides the
    concrete instruction sequence, the registers, the scratch-array
    offsets, and the forward-branch shapes.
    """
    p = spec.param_dict
    iters = max(1, p["iters"] * scale)
    ops = max(4, p["ops"])
    # Ratios were validated to sum <= 100% at spec construction, so
    # the floor-divided slot counts can never exceed ``ops``.
    counts = {
        "mem": (ops * p["mem"]) // 100,
        "branch": (ops * p["branch"]) // 100,
        "mul": (ops * p["mul"]) // 100,
    }
    counts["alu"] = ops - sum(counts.values())
    rng = spec.rng()
    pool = [f"r{8 + i}" for i in range(12)]
    slots = [kind for kind, count in counts.items()
             for _ in range(count)]
    rng.shuffle(slots)
    body = ("\n.data\nscratch: .space 512\nresult:  .quad 0\n.text\n"
            f"        ldi   r3, {rng.randrange(1, 1 << 30) | 1}\n"
            "        ldi   r2, scratch\n")
    for reg in pool:
        body += f"        ldi   {reg}, {rng.randrange(1, 1 << 16)}\n"
    body += f"        ldi   r1, {iters}\nloop:\n{lcg_step('r3', 'r5')}"
    skip = 0
    for kind in slots:
        if kind == "mem":
            reg = rng.choice(pool)
            offset = 8 * rng.randrange(0, 64)
            if rng.random() < 0.5:
                body += f"        ldq   {reg}, {offset}(r2)\n"
            else:
                body += f"        stq   {reg}, {offset}(r2)\n"
        elif kind == "branch":
            mask = (1 << rng.randint(1, 3)) - 1
            opcode = rng.choice(("beq", "bne"))
            body += (f"        and   r6, r3, {mask}\n"
                     f"        {opcode}   r6, mix{skip}\n")
            for _ in range(rng.randint(1, 2)):
                reg = rng.choice(pool)
                op = rng.choice(_MIXED_ALU_OPS)
                body += (f"        {op}   {reg}, {reg}, "
                         f"{rng.randrange(1, 1 << 10)}\n")
            body += f"mix{skip}:\n"
            skip += 1
        elif kind == "mul":
            dst, src = rng.choice(pool), rng.choice(pool)
            body += (f"        mul   {dst}, {src}, "
                     f"{rng.randrange(3, 1 << 8)}\n")
        else:
            dst = rng.choice(pool)
            op = rng.choice(_MIXED_ALU_OPS)
            if rng.random() < 0.5:
                body += (f"        {op}   {dst}, {dst}, "
                         f"{rng.randrange(1, 1 << 12)}\n")
            else:
                body += (f"        {op}   {dst}, {dst}, "
                         f"{rng.choice(pool)}\n")
    body += "        sub   r1, r1, 1\n        bne   r1, loop\n"
    body += "        clr   r4\n"
    for reg in pool:
        body += f"        add   r4, r4, {reg}\n"
    body += _epilogue("r4", "r5")
    return body


_GENERATORS = {
    "ptrchase": _gen_ptrchase,
    "stream": _gen_stream,
    "branchy": _gen_branchy,
    "ilp": _gen_ilp,
    "mixed": _gen_mixed,
}
