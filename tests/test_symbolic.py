"""Unit and property tests for the symbolic value algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.core import symbolic
from repro.core.symbolic import SymVal
from repro.functional.alu import to_signed64

i64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
scales = st.integers(min_value=0, max_value=3)
pregs = st.integers(min_value=0, max_value=511)


def syms(draw_const=True):
    symbolic_vals = st.builds(SymVal, base=pregs, scale=scales, offset=i64)
    if draw_const:
        return st.one_of(symbolic_vals, st.builds(symbolic.const, i64))
    return symbolic_vals


class TestConstruction:
    def test_const(self):
        value = symbolic.const(42)
        assert value.is_const
        assert value.const_value == 42
        assert not value.is_plain

    def test_const_wraps_to_64_bits(self):
        assert symbolic.const(2 ** 63).const_value == -(2 ** 63)

    def test_plain(self):
        value = symbolic.plain(17)
        assert value.is_plain
        assert not value.is_const
        assert value.base == 17

    def test_const_value_on_symbolic_raises(self):
        with pytest.raises(ValueError):
            symbolic.plain(1).const_value

    def test_scale_range_enforced(self):
        with pytest.raises(ValueError):
            SymVal(base=1, scale=4)
        with pytest.raises(ValueError):
            SymVal(base=1, scale=-1)

    def test_const_with_scale_rejected(self):
        with pytest.raises(ValueError):
            SymVal(base=None, scale=1, offset=0)

    def test_str_forms(self):
        assert str(symbolic.const(5)) == "#5"
        assert str(symbolic.plain(3)) == "p3"
        assert "<<2" in str(SymVal(base=3, scale=2, offset=0))
        assert "-4" in str(SymVal(base=3, scale=0, offset=-4))


class TestEvaluate:
    def test_const_ignores_base_value(self):
        assert symbolic.const(9).evaluate(12345) == 9

    def test_plain_passes_through(self):
        assert symbolic.plain(1).evaluate(77) == 77

    def test_full_form(self):
        value = SymVal(base=1, scale=2, offset=5)
        assert value.evaluate(10) == 45

    @given(pregs, scales, i64, i64)
    def test_evaluate_wraps(self, base, scale, offset, base_value):
        value = SymVal(base=base, scale=scale, offset=offset)
        expected = to_signed64((base_value << scale) + offset)
        assert value.evaluate(base_value) == expected


class TestAddConst:
    @given(syms(), i64, i64)
    def test_add_const_semantics(self, sym, add, base_value):
        result = symbolic.add_const(sym, add)
        assert result.evaluate(base_value) == to_signed64(
            sym.evaluate(base_value) + add)

    def test_preserves_base_and_scale(self):
        value = SymVal(base=2, scale=1, offset=3)
        result = symbolic.add_const(value, 4)
        assert result.base == 2
        assert result.scale == 1
        assert result.offset == 7


class TestShiftLeft:
    @given(syms(draw_const=False), st.integers(0, 3), i64)
    def test_shift_semantics_when_representable(self, sym, amount,
                                                base_value):
        result = symbolic.shift_left(sym, amount)
        if result is not None:
            assert result.evaluate(base_value) == to_signed64(
                sym.evaluate(base_value) << amount)

    def test_overflowing_scale_unrepresentable(self):
        value = SymVal(base=1, scale=2, offset=0)
        assert symbolic.shift_left(value, 2) is None
        assert symbolic.shift_left(value, 1) is not None

    @given(i64, st.integers(0, 10))
    def test_const_always_shiftable(self, value, amount):
        result = symbolic.shift_left(symbolic.const(value), amount)
        assert result is not None
        assert result.const_value == to_signed64(value << amount)

    def test_negative_shift_rejected(self):
        assert symbolic.shift_left(symbolic.plain(1), -1) is None


class TestFold:
    @given(syms(draw_const=False), i64)
    def test_fold_equals_evaluate(self, sym, base_value):
        folded = symbolic.fold(sym, base_value)
        assert folded.is_const
        assert folded.const_value == sym.evaluate(base_value)

    def test_fold_example_from_paper(self):
        # RAT holds r1 = p35 - 2; p35 turns out to be 15.
        sym = SymVal(base=35, scale=0, offset=-2)
        assert symbolic.fold(sym, 15).const_value == 13


class TestAlgebraicProperties:
    @given(syms(), i64, i64, i64)
    def test_add_const_composes(self, sym, a, b, base_value):
        one_step = symbolic.add_const(sym, to_signed64(a + b))
        two_step = symbolic.add_const(symbolic.add_const(sym, a), b)
        assert one_step.evaluate(base_value) == two_step.evaluate(base_value)

    @given(syms(draw_const=False), i64)
    def test_add_zero_identity(self, sym, base_value):
        assert symbolic.add_const(sym, 0) == sym

    @given(i64)
    def test_immutability(self, value):
        sym = symbolic.const(value)
        with pytest.raises(Exception):
            sym.offset = 0
