"""Streaming-service overhead: direct engine vs the job manager.

The async service promises concurrency without a tax: running a sweep
as a managed job (thread dispatch + typed-event marshalling + JSON
history) should cost close to nothing over calling the engine
directly, and two jobs sharing one store should overlap rather than
serialize.  This benchmark times the same grid three ways — direct
``run_sweep``, one service job, and two concurrent service jobs over
a shared store — and checks the service's ledgers stay byte-identical
to the direct run's (the service adds concurrency, never
nondeterminism).
"""

from __future__ import annotations

import asyncio
import tempfile
import time

from conftest import publish

from repro.engine.campaign import Campaign, parse_axis
from repro.engine.pool import run_sweep
from repro.engine.service import JobManager
from repro.uarch.config import default_config

GRID_WORKLOADS = ["mcf", "gcc", "eon", "gap"]
AXIS = "optimizer.vf_delay=0,1"


def _campaign(workloads) -> Campaign:
    return Campaign.from_axes(
        name="bench", workloads=workloads,
        base=default_config().with_optimizer(),
        axes=[parse_axis(AXIS)])


def _spec(workloads) -> dict:
    return {"kind": "sweep", "workloads": list(workloads),
            "optimized": True, "axes": [AXIS]}


async def _run_jobs(store_dir: str, specs: list[dict]):
    """Submit every spec at once; collect each job's event stream."""
    manager = JobManager(store_dir=store_dir,
                         max_concurrent_jobs=len(specs))
    try:
        jobs = [await manager.submit(spec) for spec in specs]

        async def collect(job_id):
            return [e async for e in manager.events(job_id)]

        return await asyncio.gather(*(collect(job.id) for job in jobs))
    finally:
        await manager.close()


def _timed_jobs(store_dir: str, specs: list[dict]):
    started = time.perf_counter()
    streams = asyncio.run(_run_jobs(store_dir, specs))
    return streams, time.perf_counter() - started


def test_service_overhead_and_concurrency(benchmark, smoke):
    # always >= 2 workloads: the concurrency leg splits the list in
    # half, and an empty half would mean "all 22 kernels"
    workloads = GRID_WORKLOADS[:2] if smoke else GRID_WORKLOADS
    half = len(workloads) // 2
    points = _campaign(workloads).points()
    with tempfile.TemporaryDirectory() as direct_store, \
            tempfile.TemporaryDirectory() as service_store, \
            tempfile.TemporaryDirectory() as shared_store:
        direct_started = time.perf_counter()
        direct = run_sweep(points, jobs=1, store_dir=direct_store)
        direct_s = time.perf_counter() - direct_started
        (stream,), service_s = benchmark.pedantic(
            lambda: _timed_jobs(service_store, [_spec(workloads)]),
            rounds=1, iterations=1)
        # the same total work split into two concurrent jobs over ONE
        # shared store — legal only because sweep state is per-context
        pair_streams, pair_s = _timed_jobs(
            shared_store, [_spec(workloads[:half]),
                           _spec(workloads[half:])])

    assert stream[-1].kind == "job-finished"
    assert stream[-1].result["ledger"] == direct.ledger_json()
    assert all(s[-1].kind == "job-finished" for s in pair_streams)
    points_streamed = sum(1 for e in stream if e.kind == "point")
    assert points_streamed == len(points)

    lines = [
        f"sweep grid: {len(points)} points "
        f"({len(workloads)} workloads x 2 variants)",
        f"direct run_sweep        : {direct_s:8.2f} s",
        f"one service job         : {service_s:8.2f} s   "
        f"overhead {service_s - direct_s:+.2f} s "
        f"({len(stream)} events streamed)",
        f"two concurrent jobs     : {pair_s:8.2f} s   "
        f"(shared store, {sum(len(s) for s in pair_streams)} events)",
    ]
    publish("service_overhead", "\n".join(lines), smoke, data={
        "points": len(points), "workloads": list(workloads),
        "direct_seconds": round(direct_s, 4),
        "service_seconds": round(service_s, 4),
        "overhead_seconds": round(service_s - direct_s, 4),
        "events_streamed": len(stream),
        "pair_seconds": round(pair_s, 4),
        "pair_events": sum(len(s) for s in pair_streams),
    })
