"""Microarchitecture substrate: the out-of-order timing model.

Everything the paper's machine is built from: configuration (Table 2),
branch prediction, caches, the reference-counted physical register
file, issue schedulers, and the cycle-level pipeline.
"""

from .branch_predictor import (BranchTargetBuffer, FrontEndPredictor,
                               GsharePredictor, ReturnAddressStack)
from .caches import Cache, MemoryHierarchy
from .config import (CacheConfig, MachineConfig, OptimizerConfig,
                     default_config, optimized_config)
from .dyninstr import DynInstr
from .pipeline import Pipeline, SimulationDeadlock, simulate_trace
from .regfile import OutOfRegisters, PhysRegFile
from .rename import ArchRAT, BaselineRenamer, Renamer
from .scheduler import IssueQueue, SchedulerBank, scheduler_for
from .stats import PipelineStats

__all__ = [
    "BranchTargetBuffer", "FrontEndPredictor", "GsharePredictor",
    "ReturnAddressStack",
    "Cache", "MemoryHierarchy",
    "CacheConfig", "MachineConfig", "OptimizerConfig", "default_config",
    "optimized_config",
    "DynInstr",
    "Pipeline", "SimulationDeadlock", "simulate_trace",
    "OutOfRegisters", "PhysRegFile",
    "ArchRAT", "BaselineRenamer", "Renamer",
    "IssueQueue", "SchedulerBank", "scheduler_for",
    "PipelineStats",
]
