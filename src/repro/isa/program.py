"""Program container: instructions plus an initialized data image.

A :class:`Program` is the output of the assembler and the input to the
functional emulator.  It holds the instruction list (indexed by PC),
the symbol table, and the initial data-memory image.

Address map (chosen to mimic a simple Alpha-style layout):

* text segment starts at :data:`TEXT_BASE`, 4 bytes per instruction
* data segment starts at :data:`DATA_BASE`
* the stack pointer is initialized to :data:`STACK_BASE` and grows down
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction

TEXT_BASE = 0x1000
INSTR_BYTES = 4
DATA_BASE = 0x100000
STACK_BASE = 0x7F0000
HEAP_BASE = 0x400000


@dataclass
class Program:
    """An assembled program."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)  # byte address -> byte
    entry: int = TEXT_BASE

    def __len__(self) -> int:
        return len(self.instructions)

    def __getstate__(self):
        # The emulator caches its pre-decoded handler tables on the
        # instance (``_packed_decode``); they hold lambdas and are
        # rebuilt on demand, so keep them out of pickles.
        state = dict(self.__dict__)
        state.pop("_packed_decode", None)
        return state

    def pc_to_index(self, pc: int) -> int:
        """Translate a byte PC to an instruction index."""
        index, rem = divmod(pc - TEXT_BASE, INSTR_BYTES)
        if rem != 0 or not 0 <= index < len(self.instructions):
            raise IndexError(f"PC {pc:#x} is outside the text segment")
        return index

    def index_to_pc(self, index: int) -> int:
        """Translate an instruction index to a byte PC."""
        return TEXT_BASE + index * INSTR_BYTES

    def at(self, pc: int) -> Instruction:
        """Fetch the instruction at byte address *pc*."""
        return self.instructions[self.pc_to_index(pc)]

    def label_address(self, name: str) -> int:
        """Return the address bound to label *name*."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"undefined label: {name!r}") from None

    def static_count(self) -> int:
        """Number of static instructions in the program."""
        return len(self.instructions)

    def validate(self) -> None:
        """Check static control-flow sanity of the program.

        Every direct branch/call target must land on an instruction
        boundary inside the text segment.  Hand-written kernels rarely
        get this wrong, but a *generated* program (the synthetic
        workload families) should fail here, at build time, with the
        offending instruction named — not later as a baffling
        emulation error halfway through a fuzz sweep.  Raises
        :class:`ValueError`.
        """
        for instr in self.instructions:
            if instr.target is None:
                continue
            try:
                self.pc_to_index(int(instr.target))
            except IndexError:
                raise ValueError(
                    f"control transfer to {int(instr.target):#x} "
                    f"outside the text segment: {instr.text!r} "
                    f"at pc {instr.pc:#x}") from None
