"""Mediabench kernel stand-ins.

One kernel per mediabench benchmark in the paper's Table 1.  These are
the paper's best cases: small working sets (quantization tables,
filter state arrays) that fit entirely inside the 128-entry Memory
Bypass Cache, so after warm-up nearly all array accesses are
eliminated and the dependent arithmetic executes in the optimizer
(Section 5.2 analyses exactly this behaviour for untoast).
"""

from __future__ import annotations

from .common import Workload, lcg_step


def g721_decode_source(scale: int) -> str:
    """ADPCM predictor filter + table-driven dequantization (g721)."""
    samples = 600 * scale
    return f"""
.data
dqtab:  .quad 0, 4, 8, 16, 32, 64, 128, 256
        .quad -1, -4, -8, -16, -32, -64, -128, -256
state:  .space 64
result: .quad 0
.text
        ldi   r3, 13579
        ldi   r15, {samples}
        clr   r16
        ldi   r20, dqtab
        ldi   r21, state
sample:
{lcg_step('r3', 'r5')}
        and   r6, r3, 15
        s8add r7, r6, r20
        ldq   r8, 0(r7)
        ldq   r9, 0(r21)
        ldq   r10, 8(r21)
        mul   r11, r9, 3
        sra   r11, r11, 2
        mul   r12, r10, 1
        sra   r12, r12, 3
        add   r13, r11, r12
        add   r13, r13, r8
        ldi   r17, 32767
        cmple r18, r13, r17
        bne   r18, noclip
        mov   r13, r17
noclip: stq   r9, 8(r21)
        stq   r13, 0(r21)
        add   r16, r16, r13
        and   r16, r16, 0xffffffffff
        sub   r15, r15, 1
        bne   r15, sample
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def g721_encode_source(scale: int) -> str:
    """ADPCM quantization search + predictor update (g721 encode)."""
    samples = 450 * scale
    return f"""
.data
qtab:   .quad 4, 12, 28, 60, 124, 252, 508, 1020
state:  .space 32
result: .quad 0
.text
        ldi   r3, 86420
        ldi   r15, {samples}
        clr   r16
        ldi   r20, qtab
        ldi   r21, state
sample:
{lcg_step('r3', 'r5')}
        and   r6, r3, 2047
        sub   r6, r6, 1024
        ldq   r9, 0(r21)
        sra   r10, r9, 1
        sub   r7, r6, r10
        bge   r7, qpos
        sub   r7, r31, r7
qpos:   clr   r11
qloop:  s8add r12, r11, r20
        ldq   r13, 0(r12)
        cmple r18, r7, r13
        bne   r18, qdone
        add   r11, r11, 1
        cmplt r18, r11, 8
        bne   r18, qloop
        ldi   r11, 7
qdone:  add   r9, r10, r11
        stq   r9, 0(r21)
        add   r16, r16, r11
        sub   r15, r15, 1
        bne   r15, sample
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def mpeg2_decode_source(scale: int) -> str:
    """8x8 integer IDCT row/column butterflies with saturation (mpeg2)."""
    blocks = 28 * scale
    return f"""
.data
blk:    .space 512
result: .quad 0
.text
        ldi   r3, 20406
        ldi   r15, {blocks}
        clr   r16
block:  ldi   r1, 64
        ldi   r4, blk
bfill:
{lcg_step('r3', 'r5')}
        and   r5, r3, 511
        sub   r5, r5, 256
        stq   r5, 0(r4)
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, bfill
        ldi   r6, 8
        ldi   r4, blk
rowp:   ldq   r7, 0(r4)
        ldq   r8, 8(r4)
        ldq   r9, 16(r4)
        ldq   r10, 24(r4)
        add   r11, r7, r10
        sub   r12, r7, r10
        add   r13, r8, r9
        sub   r17, r8, r9
        sll   r18, r17, 1
        add   r18, r18, r12
        sra   r18, r18, 1
        stq   r11, 0(r4)
        stq   r13, 8(r4)
        stq   r12, 16(r4)
        stq   r18, 24(r4)
        ldq   r7, 32(r4)
        ldq   r8, 40(r4)
        add   r11, r7, r8
        sra   r11, r11, 1
        ldi   r19, 255
        cmple r18, r11, r19
        bne   r18, nosat
        mov   r11, r19
nosat:  stq   r11, 32(r4)
        add   r16, r16, r11
        lda   r4, 64(r4)
        sub   r6, r6, 1
        bne   r6, rowp
        and   r16, r16, 0xffffffff
        sub   r15, r15, 1
        bne   r15, block
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def mpeg2_encode_source(scale: int) -> str:
    """Sum-of-absolute-differences motion estimation (mpeg2 encode)."""
    candidates = 40 * scale
    return f"""
.data
cur:    .space 512
ref:    .space 1024
result: .quad 0
.text
        ldi   r3, 51015
        ldi   r1, 64
        ldi   r4, cur
cfill:
{lcg_step('r3', 'r5')}
        and   r5, r3, 255
        stq   r5, 0(r4)
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, cfill
        ldi   r1, 128
        ldi   r4, ref
rfill:
{lcg_step('r3', 'r5')}
        and   r5, r3, 255
        stq   r5, 0(r4)
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, rfill
        ldi   r15, {candidates}
        ldi   r16, 0x7fffffff
        clr   r22
cand:
{lcg_step('r3', 'r5')}
        and   r6, r3, 63
        ldi   r7, ref
        s8add r7, r6, r7
        ldi   r8, cur
        clr   r9
        ldi   r1, 64
sad:    ldq   r10, 0(r8)
        ldq   r11, 0(r7)
        sub   r12, r10, r11
        bge   r12, sadp
        sub   r12, r31, r12
sadp:   add   r9, r9, r12
        lda   r8, 8(r8)
        lda   r7, 8(r7)
        sub   r1, r1, 1
        bne   r1, sad
        cmplt r13, r9, r16
        beq   r13, nomin
        mov   r16, r9
nomin:  add   r22, r22, r9
        sub   r15, r15, 1
        bne   r15, cand
        add   r22, r22, r16
        ldi   r14, result
        stq   r22, 0(r14)
        halt
"""


def untoast_source(scale: int) -> str:
    """GSM Short_term_synthesis_filtering — the paper's Section 5.2 star.

    Two small arrays (the reflection coefficients ``rrp`` and the
    filter state ``v``) fit entirely in the MBC; after the first
    iteration every array access is eliminated and most of the filter
    arithmetic executes in the optimizer.
    """
    samples = 260 * scale
    return f"""
.data
rrp:    .quad 16384, -8192, 4096, -2048, 1024, -512, 256, -128
vstate: .space 80
result: .quad 0
.text
        ldi   r3, 60606
        ldi   r15, {samples}
        clr   r16
        ldi   r20, rrp
        ldi   r21, vstate
sample:
{lcg_step('r3', 'r5')}
        and   r6, r3, 8191
        sub   r6, r6, 4096
        ldi   r7, 7
filt:   s8add r8, r7, r20
        ldq   r9, 0(r8)
        s8add r10, r7, r21
        ldq   r11, 0(r10)
        mul   r12, r9, r11
        sra   r12, r12, 15
        sub   r6, r6, r12
        mul   r12, r9, r6
        sra   r12, r12, 15
        add   r13, r11, r12
        stq   r13, 8(r10)
        sub   r7, r7, 1
        bge   r7, filt
        stq   r6, 0(r21)
        add   r16, r16, r6
        sub   r15, r15, 1
        bne   r15, sample
        and   r16, r16, 0xffffffffff
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def toast_source(scale: int) -> str:
    """GSM LPC autocorrelation over a short window (toast's front end)."""
    frames = 16 * scale
    window = 40
    return f"""
.data
swin:   .space {window * 8}
acf:    .space 72
result: .quad 0
.text
        ldi   r3, 70707
        ldi   r15, {frames}
        clr   r16
frame:  ldi   r1, {window}
        ldi   r4, swin
wfill:
{lcg_step('r3', 'r5')}
        and   r5, r3, 1023
        sub   r5, r5, 512
        stq   r5, 0(r4)
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, wfill
        clr   r6
lagl:   clr   r7
        mov   r8, r6
        ldi   r9, swin
        s8add r10, r6, r9
        mov   r11, r9
corr:   ldq   r12, 0(r10)
        ldq   r13, 0(r11)
        mul   r17, r12, r13
        add   r7, r7, r17
        lda   r10, 8(r10)
        lda   r11, 8(r11)
        add   r8, r8, 1
        cmplt r18, r8, {window}
        bne   r18, corr
        ldi   r19, acf
        s8add r19, r6, r19
        stq   r7, 0(r19)
        add   r16, r16, r7
        add   r6, r6, 1
        cmplt r18, r6, 9
        bne   r18, lagl
        and   r16, r16, 0xffffffffff
        sub   r15, r15, 1
        bne   r15, frame
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


WORKLOADS = [
    Workload("g721_decode", "g721d", "mediabench",
             "ADPCM predictor filter + dequantization", g721_decode_source),
    Workload("g721_encode", "g721e", "mediabench",
             "ADPCM quantization search", g721_encode_source),
    Workload("mpeg2_decode", "mpg2d", "mediabench",
             "8x8 integer IDCT butterflies", mpeg2_decode_source),
    Workload("mpeg2_encode", "mpg2e", "mediabench",
             "SAD motion estimation", mpeg2_encode_source),
    Workload("untoast", "untst", "mediabench",
             "GSM short-term synthesis filtering", untoast_source),
    Workload("toast", "tst", "mediabench",
             "GSM LPC autocorrelation", toast_source),
]
