"""Design-space search: optimize a ``MachineConfig`` over a sweep space.

The paper's tables and figures each evaluate a handful of hand-picked
machine variants; this module *searches* the space they sample.  A
:class:`SearchSpace` names the free dimensions — dotted config paths
(the same ones ``Campaign`` axes use) with **int-range** or
**categorical** domains — and :func:`run_search` drives the sweep
engine to find the candidate that maximizes an objective:

* **strategies** — ``grid`` (exhaustive, deterministic order),
  ``random`` (seeded sampling without replacement), and ``halving``
  (successive halving: rank every candidate on a short
  ``limit_insns`` instruction budget, promote the best half to a
  doubled budget, and evaluate the finalists on full runs);
* **objectives** — geometric-mean IPC across the selected workloads,
  or a weighted arithmetic mean for skewed workload mixes;
* **evaluations** stream through the incremental
  :func:`repro.engine.pool.run_sweep_iter` API, so per-point progress
  reaches the caller as shards complete and the searcher could stop
  consuming early;
* **resume** — with an :class:`~repro.engine.store.ArtifactStore`,
  every completed evaluation is recorded in a **search manifest**
  (rewritten atomically after each candidate), so a killed search
  re-run against the same store replays its ledger instead of
  re-simulating; the per-point stats artifacts make even un-ledgered
  partial progress cheap to recover.

``repro search`` on the command line and
:mod:`repro.experiments.autotune` both drive this module.
"""

from __future__ import annotations

import math
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from ..uarch.config import MachineConfig, default_config
from ..workloads import get_workload, suite_workloads
from .backend import resolve_backend
from .campaign import SweepPoint, _parse_value, apply_override
from .events import EvaluationEvent, PointEvent
from .pool import (DEFAULT_TRACE_CACHE, PointResult, resolve_jobs,
                   run_sweep_iter, run_trace_prewarm)
from .segments import SegmentPolicy, run_segmented_sweep
from .store import ArtifactStore

# ----------------------------------------------------------------------
# search space: dimensions, candidates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IntRange:
    """An integer dimension: ``lo..hi`` inclusive, stepping by *step*."""

    path: str
    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"{self.path}: step must be > 0, "
                             f"got {self.step}")
        if self.lo > self.hi:
            raise ValueError(f"{self.path}: empty range "
                             f"{self.lo}..{self.hi}")

    def values(self) -> list[int]:
        return list(range(self.lo, self.hi + 1, self.step))

    def spec(self) -> str:
        suffix = f":{self.step}" if self.step != 1 else ""
        return f"{self.path}={self.lo}..{self.hi}{suffix}"


@dataclass(frozen=True)
class Categorical:
    """An explicit-choice dimension (bools, floats, sparse ints)."""

    path: str
    choices: tuple

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"{self.path}: no choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.path}: duplicate choices "
                             f"{list(self.choices)}")

    def values(self) -> list:
        return list(self.choices)

    def spec(self) -> str:
        rendered = ",".join(str(c).lower() if isinstance(c, bool)
                            else str(c) for c in self.choices)
        return f"{self.path}={rendered}"


def parse_dim(spec: str) -> IntRange | Categorical:
    """Parse one ``--dim`` spec into a dimension.

    ``path=lo..hi`` or ``path=lo..hi:step`` gives an :class:`IntRange`;
    ``path=v1,v2,...`` (the ``--axis`` value syntax) gives a
    :class:`Categorical`.
    """
    path, sep, domain = spec.partition("=")
    path, domain = path.strip(), domain.strip()
    if not sep or not path or not domain:
        raise ValueError(f"bad dimension {spec!r}; expected "
                         f"'path=lo..hi[:step]' or 'path=v1,v2,...'")
    if ".." in domain:
        bounds, _, step_text = domain.partition(":")
        lo_text, _, hi_text = bounds.partition("..")
        try:
            lo, hi = int(lo_text), int(hi_text)
            step = int(step_text) if step_text else 1
        except ValueError:
            raise ValueError(f"bad int range {domain!r} in {spec!r}; "
                             f"expected 'lo..hi[:step]'") from None
        return IntRange(path=path, lo=lo, hi=hi, step=step)
    return Categorical(path=path,
                       choices=tuple(_parse_value(v)
                                     for v in domain.split(",")))


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a full dimension assignment."""

    assignment: tuple[tuple[str, object], ...]

    @property
    def label(self) -> str:
        """The same ``path=value,...`` labelling sweep variants use."""
        return ",".join(f"{path}={value}"
                        for path, value in self.assignment)

    def config(self, base: MachineConfig) -> MachineConfig:
        """The machine this candidate names, on top of *base*."""
        config = base
        for path, value in self.assignment:
            config = apply_override(config, path, value)
        return config


@dataclass(frozen=True)
class SearchSpace:
    """The cartesian space spanned by a tuple of dimensions."""

    dimensions: tuple

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError("search space has no dimensions")
        paths = [d.path for d in self.dimensions]
        if len(set(paths)) != len(paths):
            raise ValueError(f"duplicate dimension paths in {paths}")
        base = default_config()
        for dimension in self.dimensions:
            # surface bad paths/values at build time, not mid-search:
            # every value is probed, so a mixed-type categorical
            # (enabled=true,2) cannot blow up after simulations were
            # already spent on earlier candidates
            for value in dimension.values():
                apply_override(base, dimension.path, value)

    @classmethod
    def from_specs(cls, specs: list[str]) -> "SearchSpace":
        """Build a space from CLI-shaped ``--dim`` strings."""
        return cls(dimensions=tuple(parse_dim(s) for s in specs))

    @property
    def size(self) -> int:
        count = 1
        for dimension in self.dimensions:
            count *= len(dimension.values())
        return count

    def candidate(self, index: int) -> Candidate:
        """Decode grid index -> candidate (first dimension major)."""
        if not 0 <= index < self.size:
            raise IndexError(f"candidate index {index} outside "
                             f"space of {self.size}")
        assignment = []
        remaining = index
        for dimension in reversed(self.dimensions):
            values = dimension.values()
            remaining, digit = divmod(remaining, len(values))
            assignment.append((dimension.path, values[digit]))
        return Candidate(assignment=tuple(reversed(assignment)))

    def candidates(self) -> list[Candidate]:
        """Every candidate, in deterministic grid order."""
        return [self.candidate(i) for i in range(self.size)]

    def sample(self, rng: random.Random, count: int) -> list[Candidate]:
        """*count* distinct candidates, deterministic given *rng*."""
        count = min(count, self.size)
        return [self.candidate(i)
                for i in rng.sample(range(self.size), count)]

    def identity(self) -> dict:
        """JSON-ready description (folded into search-manifest keys)."""
        return {"dimensions": [d.spec() for d in self.dimensions]}


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GeomeanIPC:
    """Geometric-mean IPC across every evaluated point.

    Zero-IPC degenerate points (an adversarial synthetic program that
    retires nothing, or a zero-length truncation budget) are clamped
    to ``floor`` instead of zeroing the whole score: a candidate set
    containing one degenerate workload must still be *rankable* on the
    healthy ones, and a hard 0.0 for every candidate would make the
    search pick arbitrarily.
    """

    name: str = "geomean-ipc"
    floor: float = 1e-9

    def score(self, results: list[PointResult]) -> float:
        values = [max(r.stats.ipc, self.floor) for r in results]
        if not values:
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))

    def identity(self) -> dict:
        return {"name": self.name, "floor": self.floor}


@dataclass(frozen=True)
class WeightedIPC:
    """Weighted arithmetic-mean IPC; weights keyed by workload name.

    Workloads without an explicit weight count 1.0, so a single
    ``--weight mcf=4`` skews the score toward mcf without silencing
    the rest of the mix.
    """

    weights: tuple[tuple[str, float], ...] = ()
    name: str = "weighted-ipc"

    def score(self, results: list[PointResult]) -> float:
        weights = dict(self.weights)
        total = weighted = 0.0
        for result in results:
            weight = weights.get(result.point.workload, 1.0)
            total += weight
            weighted += weight * result.stats.ipc
        return weighted / total if total else 0.0

    def identity(self) -> dict:
        return {"name": self.name,
                "weights": {w: v for w, v in sorted(self.weights)}}


OBJECTIVES = ("geomean-ipc", "weighted-ipc")


def make_objective(name: str, weights: dict[str, float] | None = None):
    """Objective factory for CLI-shaped inputs."""
    if name == "geomean-ipc":
        return GeomeanIPC()
    if name == "weighted-ipc":
        return WeightedIPC(weights=tuple(sorted((weights or {}).items())))
    raise ValueError(f"unknown objective {name!r}; "
                     f"expected one of {', '.join(OBJECTIVES)}")


# ----------------------------------------------------------------------
# evaluations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Evaluation:
    """One scored candidate at one instruction budget."""

    candidate: Candidate
    score: float
    #: ``None`` means a full-trace run; an int is a halving rung's
    #: truncation budget.
    limit_insns: int | None
    #: per-point headline numbers, keyed ``workload@scale``
    points: dict[str, dict]
    #: True when the search manifest already held this score
    from_ledger: bool = False
    #: set on sampled rungs (``rung_mode="sampled"``): the segment
    #: sample period the score was estimated at.  ``None`` everywhere
    #: else, and omitted from dict/ledger forms so exact-mode ledgers
    #: stay byte-identical to prior releases.
    sample_period: int | None = None

    @property
    def full(self) -> bool:
        return self.limit_insns is None and self.sample_period is None

    def to_dict(self) -> dict:
        return {"candidate": self.candidate.label,
                "score": round(self.score, 6),
                "limit_insns": self.limit_insns,
                "from_ledger": self.from_ledger,
                **({"sample_period": self.sample_period}
                   if self.sample_period is not None else {}),
                "points": self.points}


class _Evaluator:
    """Scores candidates through the backend, ledgered in the store."""

    def __init__(self, *, workloads: tuple[str, ...],
                 scales: tuple[int, ...], base: MachineConfig,
                 objective, jobs: int, store_dir, progress,
                 identity: dict, counters: dict, backend=None):
        self.workloads = workloads
        self.scales = scales
        self.base = base
        self.objective = objective
        self.jobs = jobs
        self.backend = backend
        self.store_dir = store_dir
        self.progress = progress
        self.identity = identity
        self.counters = counters
        self.store = (ArtifactStore(store_dir)
                      if store_dir is not None else None)
        self.ledger: dict[str, dict] = {}
        if self.store is not None:
            manifest = self.store.load_search_manifest(identity)
            if manifest is not None:
                self.ledger = manifest.get("evaluations", {})

    @staticmethod
    def _ledger_key(candidate: Candidate, limit_insns: int | None,
                    sample: "SegmentPolicy | None" = None) -> str:
        if sample is not None:
            # sampled rungs score estimates, never exact numbers; a
            # distinct key namespace keeps them from ever shadowing
            # (or being shadowed by) a truncated or full evaluation
            return (f"{candidate.label}@sampled:"
                    f"{sample.segment_insns}x{sample.sample_period}")
        return f"{candidate.label}@{limit_insns or 'full'}"

    def _emit(self, event) -> None:
        if self.progress is not None:
            self.progress(event)

    def _ledgered(self, candidate: Candidate, entry: dict,
                  limit_insns: int | None,
                  sample: "SegmentPolicy | None" = None) -> Evaluation:
        self.counters["evaluations_reused"] += 1
        period = sample.sample_period if sample is not None else None
        evaluation = Evaluation(candidate=candidate, score=entry["score"],
                                limit_insns=limit_insns,
                                points=entry.get("points", {}),
                                from_ledger=True, sample_period=period)
        self._emit(EvaluationEvent(candidate=candidate.label,
                                   score=evaluation.score,
                                   limit_insns=limit_insns,
                                   from_ledger=True,
                                   sampled=sample is not None))
        return evaluation

    def _completed(self, candidate: Candidate, results: list[PointResult],
                   limit_insns: int | None,
                   sample: "SegmentPolicy | None" = None) -> Evaluation:
        # Results stream back in shard-completion order, which depends
        # on worker timing; fix the order before scoring so float
        # accumulation (and the ledgered point dict) is byte-identical
        # between jobs=1 and jobs=N runs.
        results = sorted(results, key=lambda r: r.point.label)
        score = self.objective.score(results)
        summaries = {f"{r.point.workload}@{r.point.scale}":
                     {"ipc": round(r.stats.ipc, 4),
                      "cycles": r.stats.cycles}
                     for r in results}
        self.counters["evaluations"] += 1
        period = sample.sample_period if sample is not None else None
        entry = {"score": score, "points": summaries}
        if period is not None:
            entry["sample_period"] = period
        self.ledger[self._ledger_key(candidate, limit_insns, sample)] = \
            entry
        if self.store is not None:
            # rewritten after every candidate: a killed search resumes
            # at evaluation granularity
            self.store.save_search_manifest(
                self.identity, {"evaluations": self.ledger})
        self._emit(EvaluationEvent(candidate=candidate.label,
                                   score=score, limit_insns=limit_insns,
                                   from_ledger=False,
                                   sampled=sample is not None))
        return Evaluation(candidate=candidate, score=score,
                          limit_insns=limit_insns, points=summaries,
                          sample_period=period)

    def evaluate_sampled(self, candidates: list[Candidate],
                         sample: SegmentPolicy) -> list[Evaluation]:
        """Score a batch on **sampled** segmented runs.

        Every un-ledgered candidate's points go into one segmented
        sweep (the segment shards already carry all configs per
        window, so one pass over each trace scores the whole batch);
        the per-candidate scores are ranking *estimates* — the ledger
        keys and events mark them sampled so they can never be
        mistaken for exact results.
        """
        slots: dict[int, Evaluation] = {}
        pending: list[tuple[int, Candidate]] = []
        for batch_index, candidate in enumerate(candidates):
            entry = self.ledger.get(
                self._ledger_key(candidate, None, sample))
            if entry is not None:
                slots[batch_index] = self._ledgered(candidate, entry,
                                                    None, sample)
            else:
                pending.append((batch_index, candidate))
        if pending:
            per_candidate = len(self.workloads) * len(self.scales)
            points, owners = [], []
            for batch_index, candidate in pending:
                config = candidate.config(self.base)
                for workload in self.workloads:
                    for scale in self.scales:
                        points.append(SweepPoint(
                            workload=workload, scale=scale,
                            variant=candidate.label, config=config))
                        owners.append(batch_index)
            sweep = run_segmented_sweep(points, sample, jobs=self.jobs,
                                        store_dir=self.store_dir,
                                        backend=self.backend)
            self.counters["emulations"] += \
                sweep.counters.get("emulations", 0)
            self.counters["simulations"] += \
                sweep.counters.get("segment_simulations", 0)
            self.counters["stats_cache_hits"] += \
                sweep.counters.get("segment_stats_hits", 0)
            gathered: dict[int, list[PointResult]] = \
                {i: [] for i, _ in pending}
            for index, result in enumerate(sweep.results):
                bucket = gathered[owners[index]]
                bucket.append(result)
                self._emit(PointEvent(
                    label=result.point.label, done=len(bucket),
                    total=per_candidate, from_cache=result.from_cache,
                    candidate=result.point.variant))
            for batch_index, candidate in pending:
                slots[batch_index] = self._completed(
                    candidate, gathered[batch_index], None, sample)
        return [slots[i] for i in range(len(candidates))]

    def evaluate_batch(self, candidates: list[Candidate],
                       limit_insns: int | None = None
                       ) -> list[Evaluation]:
        """Score a batch of candidates, consulting the ledger first.

        Un-ledgered candidates are dispatched as **one** sweep with
        per-point sharding, so a rung of many candidates on few
        workloads still saturates every worker; each candidate's
        evaluation completes (ledger write + progress event) as soon
        as its last point streams back.  Returns evaluations in
        *candidates* order.
        """
        slots: dict[int, Evaluation] = {}
        pending: list[tuple[int, Candidate]] = []
        for batch_index, candidate in enumerate(candidates):
            entry = self.ledger.get(
                self._ledger_key(candidate, limit_insns))
            if entry is not None:
                slots[batch_index] = self._ledgered(candidate, entry,
                                                    limit_insns)
            else:
                pending.append((batch_index, candidate))
        if pending:
            per_candidate = len(self.workloads) * len(self.scales)
            fine = self.jobs > 1 and len(pending) > 1
            if fine:
                # per-point shards need the traces in the store first,
                # or every worker would emulate its own copy
                prewarmed = run_trace_prewarm(
                    [(w, s) for w in self.workloads
                     for s in self.scales],
                    jobs=self.jobs, store_dir=self.store_dir,
                    backend=self.backend)
                self.counters["emulations"] += prewarmed["emulations"]
            points, owners = [], []
            for batch_index, candidate in pending:
                config = candidate.config(self.base)
                for workload in self.workloads:
                    for scale in self.scales:
                        points.append(SweepPoint(
                            workload=workload, scale=scale,
                            variant=candidate.label, config=config))
                        owners.append(batch_index)
            gathered: dict[int, list[PointResult]] = \
                {i: [] for i, _ in pending}
            by_index = dict(pending)
            sweep_counters: dict = {}
            # per-point shards cycle every worker through the whole
            # (workload x scale) set once per candidate, so the trace
            # cache must hold the full set or cyclic reuse would
            # thrash an 8-entry LRU into all-misses
            cache_slots = max(per_candidate, DEFAULT_TRACE_CACHE)
            for index, result in run_sweep_iter(
                    points, jobs=self.jobs, store_dir=self.store_dir,
                    counters=sweep_counters, limit_insns=limit_insns,
                    shard_by_point=fine,
                    max_cached_traces=cache_slots,
                    backend=self.backend):
                batch_index = owners[index]
                bucket = gathered[batch_index]
                bucket.append(result)
                self._emit(PointEvent(
                    label=result.point.label, done=len(bucket),
                    total=per_candidate, from_cache=result.from_cache,
                    candidate=by_index[batch_index].label))
                if len(bucket) == per_candidate:
                    slots[batch_index] = self._completed(
                        by_index[batch_index], bucket, limit_insns)
            for name in ("emulations", "simulations",
                         "stats_cache_hits"):
                self.counters[name] += sweep_counters.get(name, 0)
        return [slots[i] for i in range(len(candidates))]

    def evaluate(self, candidate: Candidate,
                 limit_insns: int | None = None) -> Evaluation:
        """Score one candidate, consulting the ledger first."""
        return self.evaluate_batch([candidate], limit_insns)[0]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

STRATEGIES = ("grid", "random", "halving")

#: Default first-rung instruction budget for successive halving.
DEFAULT_RUNG_INSNS = 2000

#: How halving rungs spend their budget: ``limit`` truncates each
#: trace to the rung's ``limit_insns``; ``sampled`` simulates every
#: Nth segment of the *whole* trace and extrapolates, so rungs see
#: late-phase behaviour a truncated prefix never reaches.
RUNG_MODES = ("limit", "sampled")

#: Default first-rung sample period for ``rung_mode="sampled"``.
DEFAULT_RUNG_PERIOD = 4


def _search_grid(space: SearchSpace, evaluator: _Evaluator,
                 budget: int | None, rng: random.Random,
                 rung_insns: int, rung_mode: str = "limit",
                 rung_period: int = DEFAULT_RUNG_PERIOD
                 ) -> list[Evaluation]:
    candidates = space.candidates()
    if budget is not None:
        candidates = candidates[:budget]
    return evaluator.evaluate_batch(candidates)


def _search_random(space: SearchSpace, evaluator: _Evaluator,
                   budget: int | None, rng: random.Random,
                   rung_insns: int, rung_mode: str = "limit",
                   rung_period: int = DEFAULT_RUNG_PERIOD
                   ) -> list[Evaluation]:
    count = space.size if budget is None else budget
    return evaluator.evaluate_batch(space.sample(rng, count))


def _search_halving(space: SearchSpace, evaluator: _Evaluator,
                    budget: int | None, rng: random.Random,
                    rung_insns: int, rung_mode: str = "limit",
                    rung_period: int = DEFAULT_RUNG_PERIOD
                    ) -> list[Evaluation]:
    """Successive halving: cheap rungs rank, full runs decide.

    Start from *budget* sampled candidates.  With the default
    ``rung_mode="limit"`` each rung scores every survivor on a
    truncated ``rung_insns`` instruction budget and promotes the best
    half to a doubled budget.  With ``rung_mode="sampled"`` rungs run
    **sampled segmented** sweeps instead (segment size ``rung_insns``,
    starting at ``rung_period`` and halving the period — doubling
    coverage — per rung, floored at every 2nd segment), so ranking
    sees the whole trace's phase behaviour at a fraction of its cost.
    Either way, once at most two candidates survive they are
    re-evaluated on **full exact** traces (rung scores are rankings,
    never final results).
    """
    count = space.size if budget is None else budget
    survivors = space.sample(rng, count)
    evaluations: list[Evaluation] = []
    limit = rung_insns
    period = rung_period
    while len(survivors) > 2:
        if rung_mode == "sampled":
            rung = evaluator.evaluate_sampled(
                survivors, SegmentPolicy(mode="sampled",
                                         segment_insns=rung_insns,
                                         sample_period=period))
            period = max(2, period // 2)
        else:
            rung = evaluator.evaluate_batch(survivors, limit_insns=limit)
            limit *= 2
        evaluations.extend(rung)
        ranked = sorted(rung, key=lambda e: e.score, reverse=True)
        keep = max(2, math.ceil(len(survivors) / 2))
        survivors = [e.candidate for e in ranked[:keep]]
    evaluations.extend(evaluator.evaluate_batch(survivors))
    return evaluations


_STRATEGY_FUNCS = {"grid": _search_grid, "random": _search_random,
                   "halving": _search_halving}


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


@dataclass
class SearchResult:
    """Everything one search produced."""

    best: Evaluation
    evaluations: list[Evaluation]
    counters: dict
    strategy: str
    objective: str
    space: SearchSpace
    elapsed: float = 0.0
    jobs: int = 1
    seed: int = 0
    budget: int | None = None
    workloads: tuple[str, ...] = ()
    scales: tuple[int, ...] = (1,)
    base: MachineConfig = field(default_factory=default_config)

    @property
    def best_config(self) -> MachineConfig:
        return self.best.candidate.config(self.base)

    def ranked_full(self) -> list[Evaluation]:
        """Full-budget evaluations, best first."""
        return sorted((e for e in self.evaluations if e.full),
                      key=lambda e: e.score, reverse=True)

    def ledger_json(self) -> str:
        """Canonical JSON of the search's *deterministic* content.

        Strips wall-clock, worker count, counters, and ledger-reuse
        provenance; keeps every evaluation (candidate, budget, score,
        per-point numbers) in evaluation order plus the winner.  Two
        searches over the same space with the same seed must produce
        byte-identical ledgers regardless of ``jobs``.
        """
        from ..uarch.config import canonical_json
        return canonical_json({
            "strategy": self.strategy,
            "objective": self.objective,
            "space": self.space.identity(),
            "seed": self.seed,
            "budget": self.budget,
            "workloads": list(self.workloads),
            "scales": list(self.scales),
            "best": {"candidate": self.best.candidate.label,
                     "score": self.best.score},
            "evaluations": [
                {"candidate": e.candidate.label,
                 "limit_insns": e.limit_insns,
                 "score": e.score,
                 # only sampled rungs carry the key, so limit-mode
                 # search ledgers stay byte-identical to prior releases
                 **({"sample_period": e.sample_period}
                    if e.sample_period is not None else {}),
                 "points": e.points}
                for e in self.evaluations
            ],
        })

    def to_dict(self) -> dict:
        """JSON-ready report."""
        return {
            "strategy": self.strategy,
            "objective": self.objective,
            "space": self.space.identity(),
            "space_size": self.space.size,
            "workloads": list(self.workloads),
            "scales": list(self.scales),
            "seed": self.seed,
            "budget": self.budget,
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed, 3),
            "counters": dict(self.counters),
            "best": self.best.to_dict(),
            "best_config_key": self.best_config.cache_key(),
            "evaluations": [e.to_dict() for e in self.evaluations],
        }


def format_result(result: SearchResult, top: int = 5) -> str:
    """Human-readable search report: ranking plus counters."""
    lines = [f"search: {result.strategy} over "
             f"{result.space.size}-candidate space, "
             f"objective {result.objective}",
             f"workloads: {', '.join(result.workloads)}  "
             f"scales: {', '.join(map(str, result.scales))}",
             f"evaluations: {result.counters['evaluations']} run, "
             f"{result.counters['evaluations_reused']} resumed from "
             f"ledger, {result.counters['simulations']} simulations "
             f"({result.elapsed:.2f} s)",
             ""]
    ranked = result.ranked_full()[:top] if top > 0 else []
    if not ranked:
        lines.append(f"  best: {result.best.candidate.label}  "
                     f"{result.objective} {result.best.score:.4f}")
        return "\n".join(lines)
    width = max(len(e.candidate.label) for e in ranked)
    for rank, evaluation in enumerate(ranked, start=1):
        marker = " <- best" if rank == 1 else ""
        lines.append(f"  {rank}. {evaluation.candidate.label:<{width}}  "
                     f"{result.objective} {evaluation.score:.4f}{marker}")
    return "\n".join(lines)


def resolve_search_workloads(workloads: list[str] | None = None,
                             suite: str | None = None) -> tuple[str, ...]:
    """Canonical workload names for a search (names/abbrevs/suite)."""
    if workloads:
        return tuple(get_workload(n).name for n in workloads)
    if suite:
        return tuple(w.name for w in suite_workloads(suite))
    raise ValueError("search needs --workloads or --suite (searching "
                     "all 22 kernels is rarely intended; pass them "
                     "explicitly if it is)")


def run_search(space: SearchSpace, *, workloads: tuple[str, ...],
               scales: tuple[int, ...] = (1,),
               base: MachineConfig | None = None,
               strategy: str = "random", budget: int | None = None,
               objective="geomean-ipc",
               weights: dict[str, float] | None = None,
               seed: int = 0, rung_insns: int = DEFAULT_RUNG_INSNS,
               rung_mode: str = "limit",
               rung_period: int = DEFAULT_RUNG_PERIOD,
               jobs: int | None = 1,
               store_dir=None, progress=None,
               backend=None) -> SearchResult:
    """Search *space* for the config maximizing *objective*.

    ``budget`` caps the number of **candidates considered** (grid:
    first N in grid order; random/halving: N seeded samples); ``None``
    considers the whole space.  ``progress``, if given, receives typed
    :class:`~repro.engine.events.PointEvent` /
    :class:`~repro.engine.events.EvaluationEvent` objects as they
    happen.  With
    ``store_dir`` every completed evaluation is ledgered in a search
    manifest, so re-running a killed search resumes where it stopped.
    Without one, a run-scoped scratch store still carries traces and
    stats *across candidates* (one emulation per workload for the
    whole search, not per evaluation) — only the cross-run resume is
    lost.

    ``backend`` selects the execution mechanism for every evaluation
    sweep (``None`` auto-picks from ``jobs``; see
    :func:`repro.engine.backend.resolve_backend`).  The search
    resolves it **once**, so a process pool's warm workers — or a
    fleet of socket workers — persist across every rung and batch.
    """
    if strategy not in _STRATEGY_FUNCS:
        raise ValueError(f"unknown strategy {strategy!r}; expected one "
                         f"of {', '.join(STRATEGIES)}")
    if budget is not None and budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    if rung_insns <= 0:
        raise ValueError(f"rung_insns must be > 0, got {rung_insns}")
    if rung_mode not in RUNG_MODES:
        raise ValueError(f"unknown rung_mode {rung_mode!r}; expected "
                         f"one of {', '.join(RUNG_MODES)}")
    if rung_period < 2:
        raise ValueError(f"rung_period must be >= 2, got {rung_period}")
    if not workloads:
        raise ValueError("search needs at least one workload")
    if isinstance(objective, str):
        objective = make_objective(objective, weights)
    base = base if base is not None else default_config()
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    scratch_dir = None
    if store_dir is None:
        # run-scoped scratch store: candidates share one emulation per
        # workload even without a persistent store
        scratch_dir = tempfile.mkdtemp(prefix="repro-search-")
        store_dir = scratch_dir
    identity = {"space": space.identity(),
                "workloads": list(workloads), "scales": list(scales),
                "base": base.config_dict(),
                "objective": objective.identity()}
    counters = {"evaluations": 0, "evaluations_reused": 0,
                "emulations": 0, "simulations": 0, "stats_cache_hits": 0}
    backend, owned = resolve_backend(backend, jobs=jobs,
                                     store_dir=store_dir)
    try:
        evaluator = _Evaluator(workloads=workloads, scales=scales,
                               base=base, objective=objective, jobs=jobs,
                               store_dir=store_dir, progress=progress,
                               identity=identity, counters=counters,
                               backend=backend)
        rng = random.Random(seed)
        evaluations = _STRATEGY_FUNCS[strategy](space, evaluator, budget,
                                                rng, rung_insns,
                                                rung_mode, rung_period)
    finally:
        if owned:
            backend.close()
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
    full = [e for e in evaluations if e.full]
    if not full:
        raise RuntimeError("search produced no full-budget evaluations")
    best = max(full, key=lambda e: e.score)
    return SearchResult(best=best, evaluations=evaluations,
                        counters=counters, strategy=strategy,
                        objective=objective.name, space=space,
                        elapsed=time.perf_counter() - started, jobs=jobs,
                        seed=seed, budget=budget, workloads=workloads,
                        scales=scales, base=base)
