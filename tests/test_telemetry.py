"""Tests for the dependency-free metrics registry (repro.engine.telemetry).

The registry's contract has three load-bearing pieces: instruments
are cached per (name, labels) so the hot path is one dict lookup;
``merge()`` is associative the same way ``PipelineStats.merge`` is —
worker snapshots fold into the driver in any order; and the
``REPRO_TELEMETRY=0`` kill switch turns every instrument into a
shared no-op with an empty snapshot.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.engine.telemetry import (BUCKET_BOUNDS, MetricsRegistry,
                                    format_profile, format_snapshot,
                                    percentile_from_histogram,
                                    telemetry_enabled)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestInstruments:
    def test_counter_accumulates_and_is_cached(self, registry):
        registry.counter("repro_x_total").inc()
        registry.counter("repro_x_total").inc(4)
        assert registry.counter("repro_x_total").value == 5
        assert registry.counter("repro_x_total") is \
            registry.counter("repro_x_total")

    def test_labels_split_series_and_order_is_canonical(self, registry):
        registry.counter("repro_hits_total", kind="trace").inc()
        registry.counter("repro_hits_total", kind="stats").inc(2)
        snap = registry.snapshot()
        assert snap["counters"]["repro_hits_total"] == {
            'kind="trace"': 1, 'kind="stats"': 2}
        # kwargs order must not fork a new series
        a = registry.gauge("g", b="2", a="1")
        b = registry.gauge("g", a="1", b="2")
        assert a is b

    def test_gauge_set_overwrites(self, registry):
        registry.gauge("repro_depth").set(7)
        registry.gauge("repro_depth").set(3)
        assert registry.gauge("repro_depth").value == 3

    def test_histogram_buckets_sum_count(self, registry):
        hist = registry.histogram("repro_run_seconds")
        for value in (0.001, 0.002, 1.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(1.003)
        assert sum(hist.buckets) == 3
        # an observation beyond the largest bound lands in overflow
        hist.observe(BUCKET_BOUNDS[-1] * 2)
        assert hist.buckets[-1] == 1

    def test_timer_observes_elapsed_seconds(self, registry):
        with registry.timer("repro_t_seconds") as timer:
            pass
        assert timer.elapsed >= 0.0
        assert registry.histogram("repro_t_seconds").count == 1


class TestMergeAndDrain:
    def _loaded(self) -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.counter("c_total").inc(3)
        registry.gauge("g", k="v").set(5.0)
        registry.histogram("h_seconds").observe(0.25)
        return registry

    def test_merge_adds_counters_and_buckets_maxes_gauges(self):
        driver = self._loaded()
        worker_snap = self._loaded().snapshot()
        driver.merge(worker_snap)
        snap = driver.snapshot()
        assert snap["counters"]["c_total"][""] == 6
        assert snap["gauges"]["g"]['k="v"'] == 5.0  # max, not sum
        assert snap["histograms"]["h_seconds"][""]["count"] == 2
        assert snap["histograms"]["h_seconds"][""]["sum"] == \
            pytest.approx(0.5)

    def test_merge_is_associative(self):
        parts = [self._loaded().snapshot() for _ in range(3)]
        left = MetricsRegistry(enabled=True)
        for part in parts:
            left.merge(part)
        right = MetricsRegistry(enabled=True)
        for part in reversed(parts):
            right.merge(part)
        assert left.snapshot() == right.snapshot()

    def test_merge_none_and_empty_are_no_ops(self, registry):
        registry.counter("c_total").inc()
        before = registry.snapshot()
        registry.merge(None)
        registry.merge({})
        assert registry.snapshot() == before

    def test_drain_returns_snapshot_and_resets(self):
        registry = self._loaded()
        snap = registry.drain()
        assert snap["counters"]["c_total"][""] == 3
        assert registry.drain() is None  # emptied by the first drain
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}


class TestDisabled:
    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c_total").inc(10)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        with registry.timer("t") as timer:
            pass
        assert timer.elapsed == 0.0
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}
        assert registry.drain() is None
        # the shared null instrument backs every lookup
        assert registry.counter("a") is registry.histogram("b")

    def test_env_kill_switch(self):
        code = ("from repro.engine.telemetry import TELEMETRY; "
                "TELEMETRY.counter('x').inc(); "
                "assert TELEMETRY.drain() is None; "
                "assert not TELEMETRY.enabled")
        subprocess.run(
            [sys.executable, "-c", code], check=True,
            env={"PYTHONPATH": "src", "REPRO_TELEMETRY": "0"})
        assert telemetry_enabled() in (True, False)


class TestRendering:
    def test_prometheus_text_format(self, registry):
        registry.counter("repro_jobs_finished_total").inc(2)
        registry.gauge("repro_job_queue_depth").set(1)
        registry.histogram("repro_run_seconds",
                           phase="execute").observe(0.1)
        text = registry.to_prometheus()
        assert "# TYPE repro_jobs_finished_total counter" in text
        assert "repro_jobs_finished_total 2" in text
        assert "# TYPE repro_job_queue_depth gauge" in text
        assert "# TYPE repro_run_seconds histogram" in text
        assert 'repro_run_seconds_bucket{phase="execute",le="+Inf"} 1' \
            in text
        assert 'repro_run_seconds_sum{phase="execute"} 0.1' in text
        assert 'repro_run_seconds_count{phase="execute"} 1' in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.to_prometheus() == ""
        assert format_snapshot(registry.snapshot()) == \
            "(no metrics recorded)"

    def test_percentile_from_histogram(self, registry):
        hist = registry.histogram("h")
        for _ in range(99):
            hist.observe(0.001)
        hist.observe(10.0)
        data = registry.snapshot()["histograms"]["h"][""]
        assert percentile_from_histogram(data, 0.5) <= 0.002
        assert percentile_from_histogram(data, 0.999) >= 10.0
        assert percentile_from_histogram(
            {"buckets": [0] * (len(BUCKET_BOUNDS) + 1), "sum": 0.0,
             "count": 0}, 0.5) == 0.0

    def test_format_profile_groups_by_stage(self, registry):
        registry.histogram("repro_sim_run_seconds").observe(2.0)
        registry.histogram("repro_emu_run_seconds").observe(0.5)
        profile = format_profile(registry.snapshot())
        lines = profile.splitlines()
        assert lines[0] == "profile (wall time by stage):"
        # dominant stage first
        assert lines[1].lstrip().startswith("sim")
        assert "repro_sim_run_seconds" in profile
        assert format_profile({"histograms": {}}) == \
            "profile: no timings recorded"
