"""Tests for design-space search: space, strategies, resume, CLI.

The acceptance bar: ``repro search --strategy random --budget N`` and
``--strategy halving`` both find the known-best variant of a seeded
toy space, stream per-evaluation progress, and resume from a partial
store without re-running completed evaluations.

The toy space used throughout is
``optimizer.enabled x optimizer.vf_delay`` on mcf: enabling the
continuous optimizer is the paper's headline speedup, so
``optimizer.enabled=True`` is the known-best coordinate any working
strategy must land on.
"""

import json
import random

import pytest

from repro.engine.campaign import SweepPoint
from repro.engine.pool import PointResult, run_sweep, run_sweep_iter
from repro.engine.search import (Candidate, Categorical, GeomeanIPC,
                                 IntRange, SearchSpace,
                                 WeightedIPC, format_result,
                                 make_objective, parse_dim,
                                 resolve_search_workloads, run_search)
from repro.engine.store import ArtifactStore, stats_key
from repro.experiments import autotune
from repro.uarch.config import default_config
from repro.uarch.stats import PipelineStats

SPECS = ["optimizer.enabled=false,true", "optimizer.vf_delay=0,10"]
BEST_COORD = ("optimizer.enabled", True)
WORKLOADS = ("mcf",)


def toy_space() -> SearchSpace:
    return SearchSpace.from_specs(SPECS)


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    """One store for every strategy test: simulations amortize."""
    return str(tmp_path_factory.mktemp("search-store"))


def best_assignment(result) -> dict:
    return dict(result.best.candidate.assignment)


# ----------------------------------------------------------------------
# space construction
# ----------------------------------------------------------------------


class TestDimensions:
    def test_parse_int_range(self):
        dim = parse_dim("sched_entries=8..32:8")
        assert isinstance(dim, IntRange)
        assert dim.values() == [8, 16, 24, 32]
        assert parse_dim("optimizer.vf_delay=0..3").values() == [0, 1, 2, 3]

    def test_parse_categorical(self):
        dim = parse_dim("optimizer.enabled=false,true")
        assert isinstance(dim, Categorical)
        assert dim.values() == [False, True]
        assert parse_dim("optimizer.vf_delay=0,5,10").values() == [0, 5, 10]

    def test_spec_round_trips(self):
        for spec in ("sched_entries=8..32:8", "optimizer.vf_delay=0..3",
                     "optimizer.enabled=false,true"):
            assert parse_dim(spec).spec() == spec

    def test_parse_errors_are_readable(self):
        for bad in ("no-equals", "x=", "=1,2", "sched_entries=8..x",
                    "sched_entries=8..1", "sched_entries=1..8:0"):
            with pytest.raises(ValueError):
                parse_dim(bad)

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            parse_dim("optimizer.vf_delay=1,1")

    def test_space_rejects_duplicate_paths(self):
        with pytest.raises(ValueError):
            SearchSpace.from_specs(["sched_entries=8..16:8",
                                    "sched_entries=8,32"])

    def test_space_rejects_unknown_path_at_build_time(self):
        with pytest.raises(AttributeError):
            SearchSpace.from_specs(["optimizer.warp_factor=1..3"])

    def test_space_rejects_mistyped_domain_at_build_time(self):
        # bool field swept with ints: the apply_override guard fires
        # when the space is built, not mid-search
        with pytest.raises(TypeError):
            SearchSpace.from_specs(["optimizer.enabled=0,1"])

    def test_space_probes_every_value_not_just_the_first(self):
        # a mixed-type categorical whose first value is fine must
        # still fail at build time, not after simulations were spent
        with pytest.raises(TypeError):
            SearchSpace.from_specs(["optimizer.enabled=true,2"])


class TestSearchSpace:
    def test_size_and_grid_order(self):
        space = toy_space()
        assert space.size == 4
        labels = [c.label for c in space.candidates()]
        assert labels == [
            "optimizer.enabled=False,optimizer.vf_delay=0",
            "optimizer.enabled=False,optimizer.vf_delay=10",
            "optimizer.enabled=True,optimizer.vf_delay=0",
            "optimizer.enabled=True,optimizer.vf_delay=10",
        ]

    def test_candidate_decode_bounds(self):
        space = toy_space()
        with pytest.raises(IndexError):
            space.candidate(space.size)

    def test_sample_is_seeded_and_distinct(self):
        space = toy_space()
        first = [c.label for c in space.sample(random.Random(7), 3)]
        again = [c.label for c in space.sample(random.Random(7), 3)]
        assert first == again
        assert len(set(first)) == 3
        # oversampling caps at the space size
        assert len(space.sample(random.Random(7), 99)) == space.size

    def test_candidate_config_applies_assignment(self):
        candidate = Candidate(assignment=(("optimizer.enabled", True),
                                          ("optimizer.vf_delay", 10)))
        config = candidate.config(default_config())
        assert config.optimizer.enabled is True
        assert config.optimizer.vf_delay == 10


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------


def _fake_result(workload: str, retired: int, cycles: int) -> PointResult:
    point = SweepPoint(workload=workload, scale=1, variant="v",
                       config=default_config())
    return PointResult(point=point,
                       stats=PipelineStats(cycles=cycles, retired=retired),
                       emulated=False, simulated=True)


class TestObjectives:
    def test_geomean_ipc(self):
        results = [_fake_result("a", 100, 100),   # ipc 1.0
                   _fake_result("b", 400, 100)]   # ipc 4.0
        assert GeomeanIPC().score(results) == pytest.approx(2.0)

    def test_geomean_degenerate_clamps_to_floor(self):
        # A zero-IPC point (adversarial synth program that retires
        # nothing) clamps to the floor instead of zeroing the score:
        # candidates must stay rankable on their healthy workloads.
        assert GeomeanIPC().score([]) == 0.0
        floor = GeomeanIPC().floor
        assert GeomeanIPC().score(
            [_fake_result("a", 0, 100)]) == pytest.approx(floor)
        mixed = GeomeanIPC().score([_fake_result("a", 0, 100),
                                    _fake_result("b", 400, 100)])
        assert mixed == pytest.approx((floor * 4.0) ** 0.5)
        assert mixed > 0.0

    def test_weighted_ipc_defaults_to_uniform(self):
        results = [_fake_result("a", 100, 100),
                   _fake_result("b", 300, 100)]
        assert WeightedIPC().score(results) == pytest.approx(2.0)

    def test_weighted_ipc_skews(self):
        results = [_fake_result("a", 100, 100),
                   _fake_result("b", 300, 100)]
        objective = make_objective("weighted-ipc", {"b": 3.0})
        assert objective.score(results) == pytest.approx(2.5)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            make_objective("latency")

    def test_resolve_workloads(self):
        assert resolve_search_workloads(["mcf", "untst"]) == \
            ("mcf", "untoast")
        assert "untoast" in resolve_search_workloads(None, "mediabench")
        with pytest.raises(ValueError):
            resolve_search_workloads(None, None)


# ----------------------------------------------------------------------
# incremental sweep execution (run_sweep_iter)
# ----------------------------------------------------------------------


class TestRunSweepIter:
    def test_streams_every_point_with_counters(self):
        config = default_config()
        points = [SweepPoint("mcf", 1, "base", config),
                  SweepPoint("mcf", 1, "opt", config.with_optimizer())]
        counters = {}
        seen = dict(run_sweep_iter(points, jobs=1, counters=counters))
        assert sorted(seen) == [0, 1]
        assert counters["simulations"] == 2
        assert counters["emulations"] == 1  # one workload, one trace

    def test_matches_run_sweep(self):
        config = default_config()
        points = [SweepPoint("mcf", 1, "base", config),
                  SweepPoint("mcf", 1, "opt", config.with_optimizer())]
        collected = dict(run_sweep_iter(points, jobs=1))
        swept = run_sweep(points, jobs=1)
        assert [collected[i].stats.to_json()
                for i in range(len(points))] == \
            [r.stats.to_json() for r in swept.results]

    def test_limit_insns_truncates_and_keys_separately(self, tmp_path):
        config = default_config()
        points = [SweepPoint("mcf", 1, "base", config)]
        full = dict(run_sweep_iter(points, jobs=1,
                                   store_dir=tmp_path))[0]
        short = dict(run_sweep_iter(points, jobs=1, store_dir=tmp_path,
                                    limit_insns=500))[0]
        assert short.stats.retired <= 500 < full.stats.retired
        # distinct store keys: the truncated artifact never shadows
        # the full one
        assert stats_key("mcf", 1, config) != \
            stats_key("mcf", 1, config, limit_insns=500)
        store = ArtifactStore(tmp_path)
        assert store.load_stats("mcf", 1, config).retired == \
            full.stats.retired
        assert store.load_stats("mcf", 1, config,
                                limit_insns=500).retired == \
            short.stats.retired

    def test_early_break_keeps_store_artifacts(self, tmp_path):
        config = default_config()
        points = [SweepPoint("mcf", 1, "base", config),
                  SweepPoint("gcc", 1, "base", config)]
        iterator = run_sweep_iter(points, jobs=1, store_dir=tmp_path)
        index, first = next(iterator)
        iterator.close()
        store = ArtifactStore(tmp_path)
        # the consumed point's artifacts survived the early stop
        assert store.load_stats(first.point.workload, 1, config) \
            is not None


# ----------------------------------------------------------------------
# strategies find the known best (the acceptance bar)
# ----------------------------------------------------------------------


class TestStrategies:
    def test_grid_finds_known_best(self, shared_store):
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="grid", store_dir=shared_store)
        assert best_assignment(result)[BEST_COORD[0]] == BEST_COORD[1]
        assert result.counters["evaluations"] + \
            result.counters["evaluations_reused"] == 4

    def test_random_finds_known_best(self, shared_store):
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="random", budget=4, seed=0,
                            store_dir=shared_store)
        assert best_assignment(result)[BEST_COORD[0]] == BEST_COORD[1]

    def test_halving_finds_known_best(self, shared_store):
        events = []
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="halving", budget=4, seed=0,
                            rung_insns=2000, store_dir=shared_store,
                            progress=events.append)
        assert best_assignment(result)[BEST_COORD[0]] == BEST_COORD[1]
        # rung evaluations are truncated, finals are full runs, and
        # the winner comes only from the full runs
        rung = [e for e in result.evaluations if not e.full]
        finals = [e for e in result.evaluations if e.full]
        assert rung and len(finals) == 2
        assert result.best in finals

    def test_halving_short_trace_rungs_promote_for_free(self, tmp_path):
        # rung budgets beyond the trace length alias to the full-run
        # stats key, so the finals re-simulate nothing: 4 candidates
        # on 1 workload = exactly 4 simulations for the whole search
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="halving", budget=4, seed=0,
                            rung_insns=10 ** 9, store_dir=tmp_path)
        assert result.counters["simulations"] == 4 * len(WORKLOADS)
        finals = [e for e in result.evaluations if e.full]
        rungs = [e for e in result.evaluations if not e.full]
        assert rungs and finals
        # a final's score equals its rung score: same full trace
        rung_scores = {e.candidate.label: e.score for e in rungs}
        for final in finals:
            assert final.score == rung_scores[final.candidate.label]

    def test_progress_streams_typed_events(self, tmp_path):
        events = []
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="grid", store_dir=tmp_path,
                            progress=events.append)
        evaluations = [e for e in events if e.kind == "evaluation"]
        points = [e for e in events if e.kind == "point"]
        assert len(evaluations) == len(result.evaluations) == 4
        # per-point streaming arrives before each evaluation completes
        assert points and points[0].total == len(WORKLOADS)
        # every point event is tagged with its owning candidate
        assert all(p.candidate for p in points)
        labels = [e.candidate for e in evaluations]
        assert labels == [e.candidate.label for e in result.evaluations]

    def test_parallel_evaluation_matches_serial(self, tmp_path):
        space = SearchSpace.from_specs(["optimizer.enabled=false,true"])
        serial = run_search(space, workloads=("mcf", "gcc"), jobs=1,
                            strategy="grid",
                            store_dir=tmp_path / "serial")
        parallel = run_search(space, workloads=("mcf", "gcc"), jobs=2,
                              strategy="grid",
                              store_dir=tmp_path / "parallel")
        assert [e.score for e in serial.evaluations] == \
            [e.score for e in parallel.evaluations]
        assert parallel.best.candidate.label == \
            serial.best.candidate.label

    def test_degenerate_workload_keeps_search_rankable(self, tmp_path):
        # Regression: a zero-IPC workload (the empty adversarial synth
        # program) used to zero every candidate's geomean score, so
        # the search picked arbitrarily.  With the objective floor the
        # healthy workload still differentiates the candidates.
        space = SearchSpace.from_specs(["sched_entries=2,8"])
        result = run_search(
            space,
            workloads=("synth:ilp@seed=0",
                       "synth:branchy@seed=0,iters=0"),
            strategy="grid", store_dir=tmp_path)
        scores = {e.candidate.label: e.score
                  for e in result.evaluations}
        assert all(score > 0 for score in scores.values())
        assert scores["sched_entries=8"] != scores["sched_entries=2"]
        assert result.best.score == max(scores.values())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_search(toy_space(), workloads=WORKLOADS,
                       strategy="annealing")

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            run_search(toy_space(), workloads=WORKLOADS, budget=0)


# ----------------------------------------------------------------------
# resume semantics
# ----------------------------------------------------------------------


class TestResume:
    def test_partial_search_resumes_without_rerunning(self, tmp_path):
        # a "killed" search: only 2 of 4 grid candidates completed
        partial = run_search(toy_space(), workloads=WORKLOADS,
                             strategy="grid", budget=2,
                             store_dir=tmp_path)
        assert partial.counters["evaluations"] == 2
        # the restarted full search reuses both ledgered evaluations
        # and simulates only the 2 new candidates
        resumed = run_search(toy_space(), workloads=WORKLOADS,
                             strategy="grid", store_dir=tmp_path)
        assert resumed.counters["evaluations_reused"] == 2
        assert resumed.counters["evaluations"] == 2
        assert resumed.counters["simulations"] == 2
        assert best_assignment(resumed)[BEST_COORD[0]] == BEST_COORD[1]

    def test_identical_rerun_is_pure_ledger_replay(self, tmp_path):
        run_search(toy_space(), workloads=WORKLOADS, strategy="random",
                   budget=4, seed=3, store_dir=tmp_path)
        again = run_search(toy_space(), workloads=WORKLOADS,
                           strategy="random", budget=4, seed=3,
                           store_dir=tmp_path)
        assert again.counters["evaluations"] == 0
        assert again.counters["evaluations_reused"] == 4
        assert again.counters["simulations"] == 0
        assert again.counters["emulations"] == 0

    def test_strategies_share_one_ledger(self, tmp_path):
        # grid fills the ledger; halving's full-run finals replay it
        run_search(toy_space(), workloads=WORKLOADS, strategy="grid",
                   store_dir=tmp_path)
        halved = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="halving", budget=4, seed=0,
                            store_dir=tmp_path)
        finals = [e for e in halved.evaluations if e.full]
        assert finals and all(e.from_ledger for e in finals)

    def test_objective_change_invalidates_ledger(self, tmp_path):
        run_search(toy_space(), workloads=WORKLOADS, strategy="grid",
                   store_dir=tmp_path)
        other = run_search(toy_space(), workloads=WORKLOADS,
                           strategy="grid", objective="weighted-ipc",
                           store_dir=tmp_path)
        # different objective -> different manifest; but the per-point
        # stats artifacts still satisfy every simulation
        assert other.counters["evaluations_reused"] == 0
        assert other.counters["simulations"] == 0
        assert other.counters["stats_cache_hits"] == 4

    def test_search_without_store_still_works(self):
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="grid", budget=1)
        assert result.counters["evaluations"] == 1

    def test_storeless_search_shares_traces_across_candidates(self):
        # the run-scoped scratch store carries each workload's trace
        # across evaluations: one emulation for the whole search, not
        # one per candidate
        space = SearchSpace.from_specs(["optimizer.enabled=false,true"])
        result = run_search(space, workloads=WORKLOADS, strategy="grid")
        assert result.counters["evaluations"] == 2
        assert result.counters["emulations"] == len(WORKLOADS)


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------


class TestReports:
    def test_to_dict_is_json_ready(self, shared_store):
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="grid", store_dir=shared_store)
        report = json.loads(json.dumps(result.to_dict()))
        assert report["space_size"] == 4
        assert report["best"]["candidate"] == \
            result.best.candidate.label
        assert len(report["evaluations"]) == 4
        assert report["counters"]["evaluations"] + \
            report["counters"]["evaluations_reused"] == 4
        assert "mcf@1" in report["best"]["points"]

    def test_format_result_names_the_best(self, shared_store):
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="grid", store_dir=shared_store)
        text = format_result(result)
        assert result.best.candidate.label in text
        assert "<- best" in text
        assert "geomean-ipc" in text

    def test_format_result_survives_empty_ranking(self, shared_store):
        result = run_search(toy_space(), workloads=WORKLOADS,
                            strategy="grid", store_dir=shared_store)
        text = format_result(result, top=0)
        assert result.best.candidate.label in text


# ----------------------------------------------------------------------
# CLI + autotune
# ----------------------------------------------------------------------


class TestSearchCli:
    def teardown_method(self):
        from repro.experiments import runner
        runner.clear_caches(detach_store=True)

    def test_search_command_json_and_resume(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["--store", str(tmp_path / "store"), "search",
                "--dim", "optimizer.enabled=false,true",
                "--workloads", "mcf", "--strategy", "random",
                "--budget", "2", "--seed", "0", "--json", "--quiet"]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["evaluations"] == 2
        best = dict(
            pair.split("=") for pair in
            report["best"]["candidate"].split(","))
        assert best["optimizer.enabled"] == "True"
        # resumed run replays the ledger
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["evaluations"] == 0
        assert report["counters"]["evaluations_reused"] == 2
        assert report["counters"]["simulations"] == 0

    def test_search_streams_progress_on_stderr(self, capsys):
        from repro.cli import main
        assert main(["search", "--dim", "optimizer.enabled=false,true",
                     "--workloads", "mcf", "--strategy", "grid"]) == 0
        captured = capsys.readouterr()
        assert captured.err.count("[search]") == 2
        assert "<- best" in captured.out

    def test_bad_dim_exits_nonzero_with_message(self, capsys):
        from repro.cli import main
        assert main(["search", "--dim", "sched_entries=8..x",
                     "--workloads", "mcf"]) == 2
        err = capsys.readouterr().err
        assert "repro search: error:" in err
        assert "8..x" in err

    def test_missing_workloads_exits_nonzero(self, capsys):
        from repro.cli import main
        assert main(["search", "--dim",
                     "optimizer.enabled=false,true"]) == 2
        assert "--workloads or --suite" in capsys.readouterr().err

    def test_weight_keys_canonicalized_and_validated(self):
        from repro.cli import _parse_weights
        # abbreviations resolve to the canonical name the scorer uses
        assert _parse_weights(["untst=4"]) == {"untoast": 4.0}
        assert _parse_weights(None) == {}
        with pytest.raises(KeyError):
            _parse_weights(["doom3=2"])
        with pytest.raises(ValueError):
            _parse_weights(["no-equals"])

    def test_json_with_out_keeps_json_on_stdout(self, tmp_path, capsys):
        from repro.cli import main
        out_file = tmp_path / "search.json"
        assert main(["search", "--dim", "optimizer.enabled=false,true",
                     "--workloads", "mcf", "--strategy", "grid",
                     "--json", "--out", str(out_file), "--quiet"]) == 0
        stdout = capsys.readouterr().out
        # stdout and the file carry the same machine-readable report
        assert json.loads(stdout)["space_size"] == 2
        assert json.loads(out_file.read_text()) == json.loads(stdout)

    def test_segment_insns_rejected_not_ignored(self, capsys):
        from repro.cli import main
        assert main(["--segment-insns", "1000", "search",
                     "--dim", "optimizer.enabled=false,true",
                     "--workloads", "mcf"]) == 2
        assert "--segment-insns" in capsys.readouterr().err
        assert main(["--segment-insns", "1000", "autotune"]) == 2
        assert "--segment-insns" in capsys.readouterr().err

    def test_bad_scales_exit_nonzero(self, capsys):
        from repro.cli import main
        assert main(["search", "--dim", "optimizer.enabled=false,true",
                     "--workloads", "mcf", "--scales", "1,x"]) == 2
        assert "bad --scales" in capsys.readouterr().err
        assert main(["sweep", "--workloads", "mcf",
                     "--scales", "2;3", "--quiet"]) == 2
        assert "bad --scales" in capsys.readouterr().err

    def test_autotune_rejects_nonpositive_per_suite(self, capsys):
        from repro.cli import main
        assert main(["--per-suite", "0", "autotune"]) == 2
        assert "--per-suite" in capsys.readouterr().err


class TestAutotune:
    def test_autotune_recovers_figure10_best(self, tmp_path):
        report = autotune.run(workloads_per_suite=2, strategy="halving",
                              store_dir=tmp_path)
        assert report.matches_paper
        assert dict(report.result.best.candidate.assignment)[
            "optimizer.add_depth"] == 3
        text = autotune.format(report)
        assert "agrees with the paper" in text
