"""The continuous optimizer — the paper's primary contribution.

Symbolic ``(preg << scale) ± offset`` register values, the CP/RA
transformation engine, the Memory Bypass Cache (RLE/SF), the value
feedback channel, and the :class:`OptimizingRenamer` that installs all
of it into the pipeline's rename stage.
"""

from . import cpra, symbolic
from .cpra import Kind, Outcome, transform
from .feedback import ValueFeedbackChannel
from .mbc import MBCEntry, MemoryBypassCache
from .optimizer import OptimizingRenamer, VerificationError
from .symbolic import SymVal, add_const, const, fold, plain, shift_left

__all__ = [
    "cpra", "symbolic",
    "Kind", "Outcome", "transform",
    "ValueFeedbackChannel",
    "MBCEntry", "MemoryBypassCache",
    "OptimizingRenamer", "VerificationError",
    "SymVal", "add_const", "const", "fold", "plain", "shift_left",
]
