"""Figure 9: value feedback alone versus feedback plus optimization.

Two bars per suite (speedup over the baseline): the optimizer with
only value feedback enabled (the paper's "eager bypassing"
configuration — symbolic CP/RA and RLE/SF disabled), and the full
optimizer.  The paper finds feedback alone offers little; optimization
projects old values further into the future.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES
from .report import format_table
from .runner import geomean, prewarm_suites, run_workload


@dataclass(frozen=True)
class FeedbackRow:
    """One suite's Figure 9 pair."""

    suite: str
    feedback_only: float
    feedback_plus_opt: float


def run(scale: int = 1, workloads_per_suite: int | None = None,
        jobs: int | None = None) -> list[FeedbackRow]:
    """Measure Figure 9 per suite."""
    base = default_config()
    feedback_cfg = base.with_optimizer(enable_opt=False)
    full_cfg = base.with_optimizer()
    lists = prewarm_suites([base, feedback_cfg, full_cfg], scale, jobs,
                           workloads_per_suite)
    rows = []
    for suite in SUITES:
        suite_list = lists[suite]
        fb_values = []
        full_values = []
        for workload in suite_list:
            baseline = run_workload(workload.name, base, scale)
            fb = run_workload(workload.name, feedback_cfg, scale)
            full = run_workload(workload.name, full_cfg, scale)
            fb_values.append(baseline.cycles / fb.cycles)
            full_values.append(baseline.cycles / full.cycles)
        rows.append(FeedbackRow(suite=suite,
                                feedback_only=geomean(fb_values),
                                feedback_plus_opt=geomean(full_values)))
    return rows


def format(rows: list[FeedbackRow]) -> str:
    """Render the Figure 9 bars as text."""
    table_rows = [[row.suite, row.feedback_only, row.feedback_plus_opt]
                  for row in rows]
    return format_table(
        "Figure 9: value feedback vs. feedback + optimization (speedup)",
        ["suite", "feedback", "feedback + opt"],
        table_rows)
