"""Unit tests for issue queues and the scheduler bank."""

from repro.functional.emulator import TraceEntry
from repro.isa import Opcode, Reg
from repro.isa.instructions import Instruction
from repro.uarch import DynInstr, IssueQueue, SchedulerBank, scheduler_for
from repro.isa.opcodes import OpClass
from repro.uarch.scheduler import (SCHED_COMPLEX, SCHED_FP, SCHED_INT,
                                   SCHED_MEM)


def make_di(seq: int, opcode=Opcode.ADD, deps=0) -> DynInstr:
    instr = Instruction(opcode=opcode, dst=1, srcs=(Reg(2), Reg(3)),
                        pc=0x1000 + seq * 4)
    entry = TraceEntry(seq=seq, pc=instr.pc, instr=instr,
                       src_values=(0, 0), result=0, addr=None, taken=None,
                       next_pc=instr.pc + 4)
    di = DynInstr(entry, fetch_cycle=0)
    di.deps_remaining = deps
    return di


class TestSchedulerMapping:
    def test_classes_route_to_expected_queues(self):
        assert scheduler_for(OpClass.INT_SIMPLE) == SCHED_INT
        assert scheduler_for(OpClass.BRANCH) == SCHED_INT
        assert scheduler_for(OpClass.INT_COMPLEX) == SCHED_COMPLEX
        assert scheduler_for(OpClass.FP) == SCHED_FP
        assert scheduler_for(OpClass.MEM) == SCHED_MEM


class TestIssueQueue:
    def test_ready_instructions_selected_oldest_first(self):
        queue = IssueQueue("int", entries=8, issue_width=2)
        for seq in range(4):
            queue.insert(make_di(seq))
        selected = queue.select()
        assert [di.seq for di in selected] == [0, 1]
        assert len(queue) == 2

    def test_blocked_instructions_stay(self):
        queue = IssueQueue("int", entries=8, issue_width=4)
        blocked = make_di(0, deps=1)
        ready = make_di(1)
        queue.insert(blocked)
        queue.insert(ready)
        selected = queue.select()
        assert [di.seq for di in selected] == [1]
        assert len(queue) == 1

    def test_issue_width_limit(self):
        queue = IssueQueue("int", entries=8, issue_width=1)
        queue.insert(make_di(0))
        queue.insert(make_di(1))
        assert len(queue.select()) == 1
        assert len(queue.select()) == 1
        assert len(queue.select()) == 0

    def test_capacity_enforced(self):
        import pytest
        queue = IssueQueue("int", entries=2, issue_width=1)
        queue.insert(make_di(0))
        queue.insert(make_di(1))
        assert not queue.has_space
        with pytest.raises(RuntimeError):
            queue.insert(make_di(2))

    def test_out_of_order_wakeup(self):
        queue = IssueQueue("int", entries=8, issue_width=4)
        older = make_di(0, deps=1)
        younger = make_di(1)
        queue.insert(older)
        queue.insert(younger)
        assert [d.seq for d in queue.select()] == [1]
        older.deps_remaining = 0
        assert [d.seq for d in queue.select()] == [0]


class TestSchedulerBank:
    def test_queue_for_routes_by_class(self):
        bank = SchedulerBank(entries=8, n_simple=4, n_complex=1, n_fp=2,
                             n_agen=2)
        add = make_di(0, Opcode.ADD)
        mul = make_di(1, Opcode.MUL)
        assert bank.queue_for(add) is bank.queues[SCHED_INT]
        assert bank.queue_for(mul) is bank.queues[SCHED_COMPLEX]

    def test_select_all_respects_per_class_widths(self):
        bank = SchedulerBank(entries=8, n_simple=2, n_complex=1, n_fp=2,
                             n_agen=2)
        for seq in range(4):
            bank.queues[SCHED_INT].insert(make_di(seq))
        for seq in range(4, 6):
            bank.queues[SCHED_COMPLEX].insert(make_di(seq, Opcode.MUL))
        issued = bank.select_all()
        int_issued = [d for d in issued if d.sched_class is OpClass.INT_SIMPLE]
        cplx_issued = [d for d in issued
                       if d.sched_class is OpClass.INT_COMPLEX]
        assert len(int_issued) == 2
        assert len(cplx_issued) == 1

    def test_total_occupancy(self):
        bank = SchedulerBank(entries=8, n_simple=4, n_complex=1, n_fp=2,
                             n_agen=2)
        bank.queues[SCHED_INT].insert(make_di(0, deps=1))
        bank.queues[SCHED_FP].insert(make_di(1, deps=1))
        assert bank.total_occupancy() == 2
