"""Golden-stats snapshot regression suite.

Every workload in :data:`GOLDEN_WORKLOADS` is simulated on the
baseline machine configuration and its full
:meth:`PipelineStats.to_json` compared against a committed snapshot
under ``tests/golden/``.  Any behavioural change in the emulator, the
assembler, a workload kernel, the synthetic generator, or the timing
model shows up as a counter-level diff here — deliberately strict, so
unintentional drift cannot hide inside an aggregate.

Refreshing after an *intentional* change::

    PYTHONPATH=src python -m pytest tests/test_golden_stats.py \
        --update-golden

then review and commit the rewritten ``tests/golden/*.json``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.uarch.config import default_config
from repro.uarch.pipeline import simulate_trace
from repro.uarch.stats import PipelineStats
from repro.workloads import build_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: One kernel per paper suite plus one synthetic program per family —
#: broad enough to cover every workload generator, small enough that
#: the snapshot pass stays cheap.
GOLDEN_WORKLOADS = (
    "mcf",  # SPECint
    "equake",  # SPECfp
    "untoast",  # mediabench
    "synth:ptrchase@seed=0",
    "synth:stream@seed=0",
    "synth:branchy@seed=0",
    "synth:ilp@seed=0",
    "synth:mixed@seed=0",
)


def golden_path(name: str) -> pathlib.Path:
    safe = name.replace(":", "_").replace("@", "_").replace(",", "_") \
        .replace("=", "-")
    return GOLDEN_DIR / f"{safe}.baseline.json"


def compute_stats(name: str) -> PipelineStats:
    return simulate_trace(build_trace(name).trace, default_config())


@pytest.mark.parametrize("name", GOLDEN_WORKLOADS)
def test_baseline_stats_match_golden_snapshot(name, update_golden):
    stats = compute_stats(name)
    path = golden_path(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(stats.to_json() + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate it with "
        f"pytest tests/test_golden_stats.py --update-golden")
    expected = PipelineStats.from_json(path.read_text())
    current = stats.to_dict()
    recorded = expected.to_dict()
    if current != recorded:
        diffs = {key: (recorded[key], current[key])
                 for key in recorded
                 if recorded[key] != current.get(key)}
        pytest.fail(f"{name}: stats drifted from golden snapshot "
                    f"(recorded, current): {diffs}; if intentional, "
                    f"refresh with --update-golden")


def test_golden_directory_has_no_orphans():
    """Every committed snapshot corresponds to a listed workload."""
    expected = {golden_path(name).name for name in GOLDEN_WORKLOADS}
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual <= expected, (
        f"orphaned golden snapshots: {sorted(actual - expected)}")


def test_snapshots_are_canonical_json():
    """Snapshots stay byte-stable: canonical JSON, trailing newline."""
    for path in GOLDEN_DIR.glob("*.json"):
        text = path.read_text()
        assert text.endswith("\n"), path.name
        data = json.loads(text)
        assert PipelineStats.from_dict(data).to_json() == text.strip(), \
            path.name
