"""Shared process-pool worker scaffolding for the sweep engines.

Both executors (:mod:`repro.engine.pool` for flat sweeps,
:mod:`repro.engine.segments` for segmented ones) spawn
``ProcessPoolExecutor`` workers, bind a store in each worker process,
and record how long every unit sat in the pool queue.  That plumbing
lives here exactly once:

* :func:`set_worker_start_method` / :func:`pool_kwargs` — the
  process-wide multiprocessing start-method choice (the streaming
  service switches to ``spawn``; see the docstring below);
* :func:`init_store_worker` / :func:`worker_store` — the store-only
  worker initializer used by engines whose workers need no trace
  cache (the pool keeps its richer ``ExecutionContext`` initializer);
* :func:`observe_wait` — the queue-wait histogram observation every
  worker records on entry.
"""

from __future__ import annotations

import multiprocessing
import time

from .telemetry import TELEMETRY

#: How pool worker processes are started (``None`` = the platform
#: default, i.e. fork on Linux).  See :func:`set_worker_start_method`.
_MP_CONTEXT = None


def set_worker_start_method(method):
    """Choose the start method for every subsequent worker pool.

    The single-threaded CLI keeps the platform default (fork on
    Linux — cheapest startup).  The streaming service switches the
    process to ``"spawn"``: its job bodies run on executor threads,
    and ``fork()`` in a multi-threaded process can inherit a lock
    another thread held mid-operation, deadlocking the child.

    *method* is a start-method name, ``None`` for the platform
    default, or a context object a previous call returned.  Returns
    the **displaced** context so a scoped user (the service) can
    restore exactly what it found rather than clobbering another
    user's choice.
    """
    global _MP_CONTEXT
    previous = _MP_CONTEXT
    if method is None or isinstance(method, str):
        _MP_CONTEXT = (multiprocessing.get_context(method)
                       if method is not None else None)
    else:
        _MP_CONTEXT = method
    return previous


def pool_kwargs() -> dict:
    """Extra ``ProcessPoolExecutor`` kwargs for the chosen start method."""
    return {"mp_context": _MP_CONTEXT} if _MP_CONTEXT is not None else {}


#: One store binding per worker *process* (set by
#: :func:`init_store_worker`).  A module global is the only channel
#: ``ProcessPoolExecutor`` offers, but each worker process belongs to
#: exactly one pool — i.e. one sweep — so this is genuinely per-sweep
#: state; serial paths pass an explicit store instead of reading it.
_WORKER_STORE = None


def init_store_worker(store_dir: str) -> None:
    """Pool initializer: bind this worker process to one store."""
    global _WORKER_STORE
    from .store import ArtifactStore
    _WORKER_STORE = ArtifactStore(store_dir)


def worker_store():
    """This worker process's store (see :func:`init_store_worker`)."""
    return _WORKER_STORE


def observe_wait(submitted_ns: int | None,
                 phase: str | None = None) -> None:
    """Record pool-queue wait for a unit stamped by the driver.

    ``submitted_ns`` is the driver's ``time.monotonic_ns()`` at submit
    time — comparable across processes on one machine.  The flat pool
    records the histogram unlabeled; the segmented engine labels it
    with its pipeline *phase*.
    """
    if submitted_ns is None:
        return
    wait = max(0, time.monotonic_ns() - submitted_ns) / 1e9
    labels = {} if phase is None else {"phase": phase}
    TELEMETRY.histogram("repro_pool_shard_wait_seconds",
                        **labels).observe(wait)
