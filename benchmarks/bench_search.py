"""Design-space search efficiency: halving vs exhaustive grid.

Successive halving's promise is ranking candidates on cheap truncated
runs so full simulations are spent only on finalists.  This benchmark
searches an ``optimizer.enabled x vf_delay x add_depth`` space on mcf
with both strategies (separate stores — no shared artifacts) and
reports how many full-budget evaluations each needed to land on the
same winner, plus the near-free cost of resuming a finished search
from its store manifest.
"""

from __future__ import annotations

import tempfile
import time

from conftest import publish

from repro.engine.search import SearchSpace, run_search

DIMS = ["optimizer.enabled=false,true", "optimizer.vf_delay=0,5,10",
        "optimizer.add_depth=0..1"]
SMOKE_DIMS = ["optimizer.enabled=false,true", "optimizer.vf_delay=0,10"]
WORKLOADS = ("mcf",)


def _timed_search(space, strategy, store, **kwargs):
    started = time.perf_counter()
    result = run_search(space, workloads=WORKLOADS, strategy=strategy,
                        store_dir=store, **kwargs)
    return result, time.perf_counter() - started


def test_search_halving_vs_grid(benchmark, smoke):
    space = SearchSpace.from_specs(SMOKE_DIMS if smoke else DIMS)
    with tempfile.TemporaryDirectory() as grid_store, \
            tempfile.TemporaryDirectory() as halving_store:
        grid, grid_s = _timed_search(space, "grid", grid_store)
        halving, halving_s = benchmark.pedantic(
            lambda: _timed_search(space, "halving", halving_store,
                                  budget=space.size, seed=0),
            rounds=1, iterations=1)
        resumed, resumed_s = _timed_search(space, "halving",
                                           halving_store,
                                           budget=space.size, seed=0)

    # both strategies pick the optimizer-enabled region as the winner
    assert dict(grid.best.candidate.assignment)[
        "optimizer.enabled"] is True
    assert dict(halving.best.candidate.assignment)[
        "optimizer.enabled"] is True
    # the resumed search replays its ledger: zero new work
    assert resumed.counters["evaluations"] == 0
    assert resumed.counters["simulations"] == 0
    assert resumed.counters["evaluations_reused"] == \
        halving.counters["evaluations"]

    grid_full = sum(1 for e in grid.evaluations if e.full)
    halving_full = sum(1 for e in halving.evaluations if e.full)
    assert halving_full <= grid_full

    lines = [
        f"search space: {space.size} candidates on "
        f"{', '.join(WORKLOADS)}",
        f"grid     : {grid_s:8.2f} s   {grid_full} full evaluations, "
        f"{grid.counters['simulations']} simulations",
        f"halving  : {halving_s:8.2f} s   {halving_full} full + "
        f"{len(halving.evaluations) - halving_full} truncated "
        f"evaluations, {halving.counters['simulations']} simulations",
        f"resumed  : {resumed_s:8.2f} s   "
        f"{resumed.counters['evaluations_reused']} ledger replays, "
        f"0 simulations",
        f"winner   : {halving.best.candidate.label} "
        f"(geomean-ipc {halving.best.score:.4f})",
    ]
    publish("search_strategies", "\n".join(lines), smoke, data={
        "space_size": space.size, "workloads": list(WORKLOADS),
        "grid_seconds": round(grid_s, 4),
        "halving_seconds": round(halving_s, 4),
        "resumed_seconds": round(resumed_s, 4),
        "grid_full_evaluations": grid_full,
        "halving_full_evaluations": halving_full,
        "grid_simulations": grid.counters["simulations"],
        "halving_simulations": halving.counters["simulations"],
        "evaluations_reused": resumed.counters["evaluations_reused"],
        "winner": halving.best.candidate.label,
        "winner_score": halving.best.score,
    })
