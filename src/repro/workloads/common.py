"""Shared helpers for the workload kernels.

The paper evaluates SPEC2000 and mediabench Alpha binaries.  Those
binaries and inputs are not redistributable, so each benchmark is
represented here by a hand-written assembly kernel that reproduces the
benchmark's *dominant loop structure* — the code the paper's analysis
itself points at (e.g. mcf's ``sort_basket`` quicksort, untoast's
``Short_term_synthesis_filtering``).  DESIGN.md records this
substitution.

This module holds the common assembly idioms: a linear congruential
generator for reproducible pseudo-random data, and fragments for
filling arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: LCG parameters (glibc-style); all kernels derive their data from it
#: so runs are deterministic.
LCG_MUL = 1103515245
LCG_ADD = 12345
LCG_MASK = 0x7FFFFFFF


def lcg_step(state_reg: str, tmp_reg: str) -> str:
    """Assembly for one LCG step: ``state = (state*MUL+ADD) & MASK``.

    The multiply is intentionally *not* a power of two: the paper's
    optimizer cannot strength-reduce it, so pseudo-random data is
    opaque to constant propagation exactly like real input data.
    """
    return (f"        mul   {tmp_reg}, {state_reg}, {LCG_MUL}\n"
            f"        add   {tmp_reg}, {tmp_reg}, {LCG_ADD}\n"
            f"        and   {state_reg}, {tmp_reg}, {LCG_MASK}\n")


def lcg_python(state: int) -> int:
    """The same LCG step in Python, for computing expected checksums."""
    return (state * LCG_MUL + LCG_ADD) & LCG_MASK


def fill_random_quads(label: str, count_reg: str, count: int,
                      ptr_reg: str, state_reg: str, tmp_reg: str,
                      value_mask: int) -> str:
    """Assembly fragment filling *count* quads at *label* with LCG data."""
    body = (f"        ldi   {count_reg}, {count}\n"
            f"        ldi   {ptr_reg}, {label}\n"
            f"fill_{label}:\n")
    body += lcg_step(state_reg, tmp_reg)
    body += (f"        and   {tmp_reg}, {state_reg}, {value_mask}\n"
             f"        stq   {tmp_reg}, 0({ptr_reg})\n"
             f"        lda   {ptr_reg}, 8({ptr_reg})\n"
             f"        sub   {count_reg}, {count_reg}, 1\n"
             f"        bne   {count_reg}, fill_{label}\n")
    return body


@dataclass(frozen=True)
class Workload:
    """One benchmark kernel of the experimental workload (Table 1)."""

    name: str  # full benchmark name, e.g. "mcf"
    abbrev: str  # the paper's abbreviation, e.g. "mcf"
    suite: str  # "SPECint" | "SPECfp" | "mediabench"
    description: str
    source_fn: Callable[[int], str]  # scale -> assembly text

    def source(self, scale: int = 1) -> str:
        """Assembly text of this kernel at the given *scale*."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return self.source_fn(scale)
