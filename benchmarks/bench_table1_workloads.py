"""Regenerates Table 1: the experimental workload inventory."""

from conftest import publish, rows_data

from repro.experiments import table1


def test_table1_workload_inventory(benchmark, smoke):
    kwargs = {"workloads_per_suite": 1} if smoke else {}
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1,
                              kwargs=kwargs)
    assert len(rows) == (3 if smoke else 22)
    assert all(row.instructions > 0 for row in rows)
    publish("table1_workloads", table1.format(rows), smoke,
            data={"rows": rows_data(rows)})
