"""Segmented-sweep scaling: cold, adaptive, sampled, and warm rows.

The flat sweep engine shards by workload, so a grid dominated by a
single long kernel is bound by one worker no matter how many cores
exist.  This benchmark runs exactly that worst case — one scaled-up
mcf kernel, three machine variants — under each :class:`SegmentPolicy`
mode and publishes one row per regime:

* **flat serial** — the monolithic baseline everything is measured
  against;
* **adaptive, jobs=1 cold** — the policy collapses to one whole-trace
  segment and takes the fused serial path, so segmentation must not
  lose to the flat engine when there is nothing to parallelize;
* **fixed pool, cold** — (config x segment) units spread across the
  worker pool;
* **sampled, jobs=1 cold** — simulate every Nth segment and
  extrapolate; the win is bounded below and the reported confidence
  interval bounded above, so the speed/accuracy trade is pinned, not
  just demonstrated;
* **warm** — a re-run against the same store must perform zero
  emulation and zero segment simulations.
"""

from __future__ import annotations

import os
import tempfile
import time

from conftest import publish

from repro.engine.campaign import Campaign, parse_axis
from repro.engine.pool import run_sweep
from repro.engine.segments import SegmentPolicy, run_segmented_sweep
from repro.uarch.config import default_config

WORKLOAD = "mcf"
SCALE = 8
SEGMENT_INSNS = 20_000
#: Sampled-mode grain/period: fine segments give the estimator enough
#: strata for a tight interval while period 4 skips 3/4 of the
#: simulation work.
SAMPLE_SEGMENT_INSNS = 1_000
SAMPLE_PERIOD = 4
#: Reported 95% CI the sampled row must stay within.
MAX_SAMPLED_ERROR = 0.05
#: --smoke budget: a short trace split into a handful of segments.
SMOKE_SCALE = 2
SMOKE_SEGMENT_INSNS = 5_000

EXACT_FIELDS = ("retired", "fetched", "loads", "mem_ops",
                "cond_branches", "indirect_jumps")


def _campaign(scale) -> Campaign:
    return Campaign.from_axes(
        name="bench-segmented", workloads=[WORKLOAD], scales=[scale],
        base=default_config().with_optimizer(),
        axes=[parse_axis("optimizer.vf_delay=0,1")],
        include_baseline=True)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_segmented_sweep_speedup(benchmark, smoke):
    scale = SMOKE_SCALE if smoke else SCALE
    segment_insns = SMOKE_SEGMENT_INSNS if smoke else SEGMENT_INSNS
    points = _campaign(scale).points()
    ncpu = os.cpu_count() or 1
    adaptive_policy = SegmentPolicy(mode="adaptive")
    sampled_policy = SegmentPolicy(mode="sampled",
                                   segment_insns=SAMPLE_SEGMENT_INSNS,
                                   sample_period=SAMPLE_PERIOD)
    with tempfile.TemporaryDirectory() as flat_store, \
            tempfile.TemporaryDirectory() as adaptive_store, \
            tempfile.TemporaryDirectory() as sampled_store, \
            tempfile.TemporaryDirectory() as parallel_store:
        # flat serial engine: the monolithic baseline
        flat, flat_s = _timed(
            lambda: run_sweep(points, jobs=1, store_dir=flat_store))
        # adaptive jobs=1: one whole-trace segment, fused serial path
        adaptive, adaptive_s = _timed(
            lambda: run_segmented_sweep(points, adaptive_policy, jobs=1,
                                        store_dir=adaptive_store))
        # sampled jobs=1: simulate 1/period of the segments, extrapolate
        sampled, sampled_s = _timed(
            lambda: run_segmented_sweep(points, sampled_policy, jobs=1,
                                        store_dir=sampled_store))
        # fixed-grain pool: (config x segment) units across workers
        parallel, parallel_s = benchmark.pedantic(
            lambda: _timed(
                lambda: run_segmented_sweep(points, segment_insns,
                                            jobs=ncpu,
                                            store_dir=parallel_store)),
            rounds=1, iterations=1)
        warm, warm_s = _timed(
            lambda: run_segmented_sweep(points, segment_insns, jobs=ncpu,
                                        store_dir=parallel_store))

    # segmented exact results are deterministic across reruns
    assert [r.stats.to_json() for r in parallel.results] == \
        [r.stats.to_json() for r in warm.results]
    # adaptive jobs=1 degrades to one whole-trace segment and merges
    # to exactly the flat run's stats
    assert adaptive.counters["segments"] == \
        len({(p.workload, p.scale) for p in points})
    assert [r.stats.to_json() for r in adaptive.results] == \
        [r.stats.to_json() for r in flat.results]
    # the warm run served everything from the store
    assert warm.counters["emulations"] == 0
    assert warm.counters["segment_simulations"] == 0
    # instruction/event counters match the monolithic run exactly
    for seg_result, flat_result in zip(parallel.results, flat.results):
        for name in EXACT_FIELDS:
            assert getattr(seg_result.stats, name) == \
                getattr(flat_result.stats, name), name
    # emulation is never sampled, so even extrapolated results retire
    # exactly the program's instructions
    for seg_result, flat_result in zip(sampled.results, flat.results):
        assert seg_result.stats.retired == flat_result.stats.retired
    # sampled rows are estimates and must say so, with a bounded CI
    skipped = sampled.counters["segments_skipped"]
    assert skipped > 0
    max_error = 0.0
    for result in sampled.results:
        assert result.estimated
        max_error = max(max_error,
                        result.error_bounds["relative_error"])

    adaptive_speedup = flat_s / adaptive_s
    sampled_speedup = flat_s / sampled_s
    if not smoke:
        # the gates (the smoke trace is too short for them: its CI is
        # wide by construction and its timings are dominated by fixed
        # startup costs, so these claims are full-budget-only):
        # cold segmented jobs=1 must not lose to the flat serial engine
        assert adaptive_s <= flat_s * 1.05, (adaptive_s, flat_s)
        # sampling must buy a real win with a tight reported interval,
        # not just skip work
        assert sampled_speedup >= 3.0, sampled_speedup
        assert max_error <= MAX_SAMPLED_ERROR, max_error
        if ncpu >= 2:
            # segments beat the one-worker-per-workload bound on a
            # long single-workload grid
            assert parallel_s < adaptive_s

    segments = parallel.counters["segments"]
    lines = [
        f"single-workload grid: {len(points)} points "
        f"({WORKLOAD}@{scale}, "
        f"{parallel.results[0].stats.retired} instructions, "
        f"{segments} segments of {segment_insns})",
        f"flat serial, cold           : {flat_s:8.2f} s  (jobs=1, "
        f"monolithic baseline)",
        f"adaptive jobs=1, cold       : {adaptive_s:8.2f} s   "
        f"{adaptive_speedup:.2f}x vs flat serial "
        f"({adaptive.counters['segments']} whole-trace segments)",
        f"sampled jobs=1, cold        : {sampled_s:8.2f} s   "
        f"{sampled_speedup:.2f}x vs flat serial "
        f"(1/{SAMPLE_PERIOD} of {sampled.counters['segments']} x "
        f"{SAMPLE_SEGMENT_INSNS}-insn segments simulated, "
        f"reported error ±{max_error * 100:.2f}%)",
        f"fixed pool jobs={ncpu:<2d}, cold    : {parallel_s:8.2f} s   "
        f"{adaptive_s / parallel_s:.2f}x over segmented serial",
        f"segmented steady-state, warm store: {warm_s:8.2f} s   "
        f"({warm.counters['segment_stats_hits']} segment-stats hits, "
        f"0 emulations, 0 simulations)",
    ]
    publish("segmented_sweep", "\n".join(lines), smoke, data={
        "points": len(points), "workload": WORKLOAD, "scale": scale,
        "instructions": parallel.results[0].stats.retired,
        "segments": segments, "segment_insns": segment_insns,
        "jobs": ncpu,
        "flat_serial_cold_seconds": round(flat_s, 4),
        "adaptive_cold_seconds": round(adaptive_s, 4),
        "adaptive_speedup_vs_flat": round(adaptive_speedup, 4),
        "sampled_cold_seconds": round(sampled_s, 4),
        "sampled_speedup_vs_flat": round(sampled_speedup, 4),
        "sampled_segment_insns": SAMPLE_SEGMENT_INSNS,
        "sampled_period": SAMPLE_PERIOD,
        "sampled_segments_skipped": skipped,
        "sampled_max_relative_error": round(max_error, 6),
        "pool_cold_seconds": round(parallel_s, 4),
        "warm_steady_state_seconds": round(warm_s, 4),
        "speedup_over_serial": round(adaptive_s / parallel_s, 4),
        "warm_counters": dict(warm.counters),
    })
