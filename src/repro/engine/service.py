"""Async streaming results service: named concurrent engine jobs.

The :class:`JobManager` runs sweeps, design-space searches, segmented
sweeps, and fuzz campaigns as **named concurrent jobs** sharing one
artifact store.  Each job emits the engine's unified typed event
stream (:mod:`repro.engine.events`) — buffered per job, so a client
that attaches late replays history before tailing live events.  This
is only sound because sweep execution state lives in per-sweep
:class:`~repro.engine.pool.ExecutionContext` objects: two jobs
interleaving in one process can no longer clobber each other's store
binding or hit/miss accounting.

Two front ends expose the manager:

* ``repro serve`` — :class:`ServiceServer`, a small stdlib-only HTTP
  server (hand-rolled on :func:`asyncio.start_server`) speaking
  JSON over four endpoints::

      POST   /jobs             submit {"kind": ..., ...spec} -> 201
      GET    /jobs             job summaries
      GET    /jobs/<id>/events JSON-lines event stream (replays
                               history, then tails until the job ends)
      DELETE /jobs/<id>        request cancellation
      GET    /metrics          Prometheus text exposition of the
                               process telemetry registry
                               (``?format=json`` for the raw snapshot)

* ``repro watch`` — :func:`watch_job`, a blocking client that tails
  one job's event stream and pretty-prints it.

Execution model: job bodies are the engine's synchronous,
process-pool-driven entry points, so the manager runs each in a
thread (``run_in_executor``) and marshals its events back onto the
event loop with ``call_soon_threadsafe``.  Cancellation is
cooperative — a ``DELETE`` sets the job's cancel flag, which the job
body observes at its next event emission or completed point.  A
client disconnecting mid-stream detaches only that stream; the job —
and everything else already submitted — keeps running.

Multi-tenancy: with bearer tokens configured (``repro serve
--auth-token tenant:token`` / ``REPRO_AUTH_TOKENS``), every ``/jobs``
request must carry ``Authorization: Bearer <token>`` (missing or bad
tokens get a 401 with ``WWW-Authenticate``; ``GET /metrics`` stays
open for scrapers).  The resolved tenant is threaded through each
:class:`Job`: tenants list, stream, and cancel only their own jobs
(cross-tenant access is a 403), each tenant's artifacts live in an
isolated store namespace (``<store>/tenants/<name>``) with an
optional byte budget enforced by that namespace's own LRU gc, and
``POST /jobs`` is bounded per tenant by an active-job quota and a
token-bucket rate limit — both reject with a 429 carrying
``Retry-After``, distinct from the global ``max_active_jobs`` 429.
With no tokens configured nothing changes: requests are anonymous,
jobs share the root store, and no per-tenant limit applies.

Execution backends: the manager can hold a live
:class:`~repro.engine.backend.ExecutionBackend` (``repro serve
--workers-port`` attaches a :class:`~repro.engine.backend
.SocketWorkerBackend` whose ``repro worker`` fleet executes every
job's work units) — job bodies thread it into the engine entry
points, so one worker fleet serves every concurrent job.  With a
persistent store the manager also journals each submitted job spec
under ``<store>/jobs/``; ``repro serve --resume`` re-queues the
journal's unfinished jobs on restart, and the engine's store
manifests make the re-run skip everything already computed.
"""

from __future__ import annotations

import asyncio
import atexit
import hashlib
import json
import math
import shutil
import sys
import tempfile
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import AsyncIterator, Callable

from ..uarch.config import default_config
from ..workloads.synth import FAMILIES
from .backend import BACKEND_NAMES, ExecutionBackend
from .campaign import Campaign, parse_axis, split_workloads
from .differential import DEFAULT_SEGMENT_INSNS, run_fuzz
from .events import (Event, JobFailedEvent, JobFinishedEvent,
                     JobStartedEvent, MetricEvent, format_event)
from .pool import resolve_jobs, run_sweep, set_worker_start_method
from .search import (RUNG_MODES, STRATEGIES, SearchSpace, make_objective,
                     resolve_search_workloads, run_search)
from .segments import SegmentPolicy, run_segmented_sweep
from .store import (ArtifactStore, tenant_store_root, tenant_usage,
                    validate_tenant_name)
from .telemetry import TELEMETRY

JOB_KINDS = ("sweep", "search", "segments", "fuzz")

#: Recognized spec keys per job kind.  Submissions naming anything
#: else are rejected with a 400: a typo (``"workload"``) would
#: otherwise be dropped on the floor and — for sweeps — silently
#: expand the grid to all 22 kernels.
_COMMON_KEYS = frozenset({"kind", "name"})
_SPEC_KEYS = {
    "sweep": _COMMON_KEYS | {"workloads", "suite", "scales", "axes",
                             "optimized", "baseline"},
    "segments": _COMMON_KEYS | {"workloads", "suite", "scales", "axes",
                                "optimized", "baseline",
                                "policy", "segment_insns"},
    "search": _COMMON_KEYS | {"workloads", "suite", "scales", "dims",
                              "strategy", "budget", "objective",
                              "weights", "seed", "rung_insns",
                              "rung_mode", "rung_period",
                              "optimized"},
    "fuzz": _COMMON_KEYS | {"seeds", "families", "scale", "small",
                            "segment_insns"},
}

#: Job states.  ``cancelled`` is terminal; ``pending`` jobs sit in the
#: executor queue waiting for a thread.
TERMINAL_STATES = ("finished", "failed", "cancelled")


class JobCancelled(Exception):
    """Raised inside a job body when its cancel flag is observed."""


class ServiceError(ValueError):
    """A client-facing error (bad spec, unknown job) with an HTTP status.

    ``retry_after`` (seconds) rides along on 429s so the HTTP layer
    can emit a ``Retry-After`` header and clients can honor it.
    """

    def __init__(self, message: str, status: int = 400,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after

    def headers(self) -> dict[str, str]:
        """Extra response headers this error mandates."""
        headers = {}
        if self.status == 401:
            headers["WWW-Authenticate"] = 'Bearer realm="repro"'
        if self.retry_after is not None:
            headers["Retry-After"] = str(max(1,
                                             math.ceil(self.retry_after)))
        return headers


def _reject(reason: str, message: str,
            retry_after: float | None = None,
            status: int = 429) -> ServiceError:
    """Count one rejected request and build its ServiceError.

    ``reason`` is the ``repro_requests_rejected_total`` label:
    ``auth`` (401), ``quota`` / ``rate`` (per-tenant 429s), or
    ``capacity`` (the pre-existing global ``max_active_jobs`` 429).
    """
    TELEMETRY.counter("repro_requests_rejected_total",
                      reason=reason).inc()
    return ServiceError(message, status=status, retry_after=retry_after)


# ----------------------------------------------------------------------
# tenancy: token parsing, per-tenant limits, runtime state
# ----------------------------------------------------------------------


def parse_auth_tokens(specs) -> dict[str, str]:
    """``tenant:token`` pairs as a token -> tenant map.

    Accepts an iterable of pair strings (repeated ``--auth-token``
    flags, or a comma-split ``REPRO_AUTH_TOKENS``).  A bare token with
    no colon belongs to the ``default`` tenant.  Tenant names must be
    safe store-namespace names; one tenant may own several tokens
    (rotation), but one token cannot name two tenants.
    """
    tokens: dict[str, str] = {}
    for spec in specs:
        spec = spec.strip()
        if not spec:
            continue
        tenant, sep, token = spec.partition(":")
        if not sep:
            tenant, token = "default", spec
        tenant, token = tenant.strip(), token.strip()
        validate_tenant_name(tenant)
        if not token or any(c.isspace() for c in token):
            raise ValueError(f"bad auth token for tenant {tenant!r}: "
                             f"tokens must be non-empty and contain "
                             f"no whitespace")
        if token in tokens and tokens[token] != tenant:
            raise ValueError(f"auth token of tenant {tenant!r} already "
                             f"belongs to tenant {tokens[token]!r}")
        tokens[token] = tenant
    return tokens


@dataclass(frozen=True)
class TenantLimits:
    """Per-tenant bounds applied to every authenticated tenant.

    * ``max_active_jobs`` — pending + running jobs a tenant may hold
      (its share of the server, independent of the global cap),
    * ``rate_per_second`` / ``burst`` — a token bucket on
      ``POST /jobs``: ``burst`` submissions can land back-to-back,
      refilling at ``rate_per_second`` (<= 0 disables rate limiting),
    * ``max_store_bytes`` — byte budget for the tenant's store
      namespace, enforced by that namespace's own LRU gc after each
      finished job (``None`` = unbounded).
    """

    max_active_jobs: int = 8
    rate_per_second: float = 10.0
    burst: int = 20
    max_store_bytes: int | None = None

    def __post_init__(self):
        if self.max_active_jobs < 1:
            raise ValueError(f"max_active_jobs must be >= 1, "
                             f"got {self.max_active_jobs}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_store_bytes is not None and self.max_store_bytes < 0:
            raise ValueError(f"max_store_bytes must be >= 0, "
                             f"got {self.max_store_bytes}")


class TenantState:
    """One tenant's runtime rate-limit state (token bucket)."""

    __slots__ = ("name", "limits", "tokens", "refilled_at")

    def __init__(self, name: str, limits: TenantLimits):
        self.name = name
        self.limits = limits
        self.tokens = float(limits.burst)
        self.refilled_at = time.monotonic()

    def refill(self, now: float) -> float:
        """Credit elapsed time into the bucket; returns the level."""
        rate = self.limits.rate_per_second
        if rate > 0:
            self.tokens = min(float(self.limits.burst),
                              self.tokens + (now - self.refilled_at)
                              * rate)
        self.refilled_at = now
        return self.tokens

    def take(self, now: float) -> float:
        """Take one submission token.

        Returns 0.0 on success, else the seconds until the bucket
        next holds a whole token (the 429's ``Retry-After``).
        """
        if self.limits.rate_per_second <= 0:
            return 0.0
        if self.refill(now) >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.limits.rate_per_second


def _iso8601(wall: float) -> str:
    """A wall-clock timestamp as ISO-8601 UTC (``...Z``)."""
    return datetime.fromtimestamp(wall, tz=timezone.utc) \
        .isoformat(timespec="milliseconds").replace("+00:00", "Z")


@dataclass
class Job:
    """One named unit of engine work plus its buffered event history."""

    id: str
    kind: str
    name: str
    spec: dict
    #: Owning tenant name; "" for anonymous (no-auth) submissions.
    tenant: str = ""
    status: str = "pending"
    events: list[Event] = field(default_factory=list)
    result: dict | None = None
    error: str = ""
    cancel: threading.Event = field(default_factory=threading.Event)
    #: Lifecycle timestamps (``time.perf_counter()``) backing the
    #: queue/execute phase spans; ``started_at`` stays ``None`` for
    #: jobs cancelled before a thread ever picked them up.  The
    #: ``*_wall`` twins are ``time.time()`` captured at the same
    #: moments: perf_counter has no defined epoch, so only the wall
    #: pair can become the client-facing ISO-8601 ``submitted`` /
    #: ``started`` fields (span math stays on perf_counter, which
    #: cannot jump under NTP).
    submitted_at: float = 0.0
    started_at: float | None = None
    submitted_wall: float = 0.0
    started_wall: float | None = None

    def summary(self) -> dict:
        """JSON-ready state snapshot (the ``GET /jobs`` row)."""
        summary = {"id": self.id, "kind": self.kind, "name": self.name,
                   "status": self.status, "events": len(self.events)}
        if self.tenant:
            summary["tenant"] = self.tenant
        if self.submitted_wall:
            summary["submitted"] = _iso8601(self.submitted_wall)
        if self.started_wall is not None:
            summary["started"] = _iso8601(self.started_wall)
        if self.kind == "segments" and "policy" in self.spec:
            # echo the normalized segment policy, so a client can see
            # exactly what a deprecated segment_insns spelling became
            summary["policy"] = self.spec["policy"]
        if self.error:
            summary["error"] = self.error
        return summary


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# job bodies (run on executor threads; emit via a thread-safe callback)
# ----------------------------------------------------------------------


def _spec_scales(spec: dict) -> list[int]:
    """The spec's scales as a validated int list.

    A string would otherwise be iterated character by character
    (``"12"`` -> scales 1 and 2) — reject anything but a list/tuple
    of integers, in keeping with the submit-time strictness that
    rejects unknown keys.
    """
    scales = spec.get("scales", [1])
    if not isinstance(scales, (list, tuple)) or not scales:
        raise ValueError(f"scales must be a non-empty list of "
                         f"integers, got {scales!r}")
    return [int(s) for s in scales]


def _segment_policy_from_spec(spec: dict) -> SegmentPolicy:
    """The segments job's policy, from either spelling.

    ``"policy"`` (a :meth:`SegmentPolicy.to_manifest` object — unknown
    fields inside it are rejected by name) is canonical;
    ``"segment_insns"`` remains as the pre-policy deprecated spelling.
    Giving both is ambiguous and rejected.
    """
    policy_spec = spec.get("policy")
    legacy = spec.get("segment_insns")
    if policy_spec is not None and legacy is not None:
        raise ValueError("give either policy or the deprecated "
                         "segment_insns, not both")
    if policy_spec is not None:
        if not isinstance(policy_spec, dict):
            raise ValueError(f"policy must be a JSON object, "
                             f"got {policy_spec!r}")
        return SegmentPolicy.from_manifest(policy_spec)
    if legacy is None:
        raise ValueError("segments job needs a policy (or the "
                         "deprecated segment_insns)")
    return SegmentPolicy(segment_insns=int(legacy))


def _campaign_from_spec(spec: dict) -> Campaign:
    base = default_config()
    if spec.get("optimized"):
        base = base.with_optimizer()
    workloads = spec.get("workloads")
    if isinstance(workloads, str):
        workloads = split_workloads(workloads)
    return Campaign.from_axes(
        workloads=workloads, suite=spec.get("suite"),
        scales=_spec_scales(spec), base=base,
        axes=[parse_axis(s) for s in spec.get("axes", [])],
        include_baseline=bool(spec.get("baseline", False)))


def _sweep_body(spec: dict, store_dir: str, jobs: int,
                emit: Callable[[Event], None], backend=None) -> dict:
    # emit() raises JobCancelled when the cancel flag is set and
    # run_sweep calls it after every completed point, so cancellation
    # needs no extra plumbing here
    points = _campaign_from_spec(spec).points()
    sweep = run_sweep(points, jobs=jobs, store_dir=store_dir,
                      progress=emit, backend=backend)
    ledger = sweep.ledger_json()
    return {"points": len(points), "counters": dict(sweep.counters),
            "elapsed_seconds": round(sweep.elapsed, 3),
            "retired_insns": sum(r.stats.retired
                                 for r in sweep.results),
            "ledger": ledger, "ledger_sha256": _sha256(ledger)}


def _segments_body(spec: dict, store_dir: str, jobs: int,
                   emit: Callable[[Event], None], backend=None) -> dict:
    # submit-time validation normalized the spec to a policy manifest
    policy = SegmentPolicy.from_manifest(spec["policy"])
    points = _campaign_from_spec(spec).points()
    sweep = run_segmented_sweep(points, policy, jobs=jobs,
                                store_dir=store_dir, progress=emit,
                                backend=backend)
    ledger = sweep.ledger_json()
    result = {"points": len(points), "counters": dict(sweep.counters),
              "elapsed_seconds": round(sweep.elapsed, 3),
              "retired_insns": sum(r.stats.retired
                                   for r in sweep.results),
              "policy": policy.to_manifest(),
              "ledger": ledger, "ledger_sha256": _sha256(ledger)}
    estimated = [r for r in sweep.results if r.estimated]
    if estimated:
        # sampled runs return extrapolations, never exact numbers —
        # the summary says so and carries the worst per-point CI
        result["estimated"] = True
        result["max_relative_error"] = max(
            (r.error_bounds or {}).get("relative_error", 0.0)
            for r in estimated)
    return result


def _search_body(spec: dict, store_dir: str, jobs: int,
                 emit: Callable[[Event], None], backend=None) -> dict:
    space = SearchSpace.from_specs(list(spec["dims"]))
    workloads_spec = spec.get("workloads")
    if isinstance(workloads_spec, str):
        workloads_spec = split_workloads(workloads_spec)
    workloads = resolve_search_workloads(workloads_spec,
                                         spec.get("suite"))
    base = default_config()
    if spec.get("optimized"):
        base = base.with_optimizer()
    kwargs = {}
    if spec.get("rung_insns"):
        kwargs["rung_insns"] = int(spec["rung_insns"])
    if spec.get("rung_mode"):
        kwargs["rung_mode"] = str(spec["rung_mode"])
    if spec.get("rung_period"):
        kwargs["rung_period"] = int(spec["rung_period"])
    budget = spec.get("budget")
    result = run_search(
        space, workloads=workloads,
        scales=tuple(_spec_scales(spec)),
        base=base, strategy=spec.get("strategy", "random"),
        budget=int(budget) if budget is not None else None,
        objective=make_objective(spec.get("objective", "geomean-ipc"),
                                 spec.get("weights")),
        seed=int(spec.get("seed", 0)), jobs=jobs, store_dir=store_dir,
        progress=emit, backend=backend, **kwargs)
    ledger = result.ledger_json()
    return {"best": result.best.candidate.label,
            "score": result.best.score,
            "evaluations": len(result.evaluations),
            "counters": dict(result.counters),
            "elapsed_seconds": round(result.elapsed, 3),
            "ledger": ledger, "ledger_sha256": _sha256(ledger)}


def _fuzz_body(spec: dict, store_dir: str, jobs: int,
               emit: Callable[[Event], None], backend=None) -> dict:
    seeds = spec.get("seeds", [0, 8])
    families = spec.get("families")
    started = time.perf_counter()
    fuzz = run_fuzz(
        range(int(seeds[0]), int(seeds[1])),
        **({"families": tuple(families)} if families else {}),
        scale=int(spec.get("scale", 1)),
        small=bool(spec.get("small", False)),
        segment_insns=int(spec.get("segment_insns",
                                   DEFAULT_SEGMENT_INSNS)),
        progress=emit, jobs=jobs, backend=backend)
    return {"ok": fuzz.ok, "programs": len(fuzz.programs),
            "failed": len(fuzz.failed),
            "elapsed_seconds": round(time.perf_counter() - started, 3),
            "retired_insns": sum(p.instructions
                                 for p in fuzz.programs)}


_JOB_BODIES = {"sweep": _sweep_body, "segments": _segments_body,
               "search": _search_body, "fuzz": _fuzz_body}


# ----------------------------------------------------------------------
# the job manager
# ----------------------------------------------------------------------


class JobManager:
    """Run engine jobs concurrently over one shared artifact store.

    ``store_dir=None`` creates a manager-lifetime scratch store
    (removed on :meth:`close`).  ``jobs`` is the worker-process count
    each job's sweeps use (1 = serial in the job's thread);
    ``max_concurrent_jobs`` bounds how many jobs execute at once —
    excess submissions queue in ``pending`` state.

    Not thread-safe by itself: all public coroutines must run on one
    event loop.  Job bodies run on executor threads and communicate
    only through ``call_soon_threadsafe``.

    ``tenant_limits`` bounds every *named* tenant (submissions that
    arrive with a ``tenant=``): an active-job quota, a token-bucket
    rate limit on submission, and an optional store byte budget — each
    tenant's artifacts live in ``<store>/tenants/<name>`` so the
    budget's LRU gc can only ever evict that tenant's own artifacts.
    Anonymous submissions (``tenant=""`` — the only kind that exists
    when no auth tokens are configured) use the root store and skip
    every per-tenant limit, preserving pre-tenancy behavior exactly.

    ``backend`` attaches a live
    :class:`~repro.engine.backend.ExecutionBackend` (or a backend
    name) that every job body threads into the engine — the seam
    ``serve --workers-port`` uses to put a socket-worker fleet behind
    every job kind at once.  The manager does not own the backend's
    lifetime; whoever constructed it closes it.

    With a persistent store every submitted job's spec is journaled
    under ``<store>/jobs/<id>.json`` and the journal entry removed
    when the job reaches a terminal state; :meth:`resume_jobs`
    re-queues whatever a crashed or restarted server left behind
    (the engine's store manifests make the re-run skip all finished
    work).  Scratch-store managers journal nothing — their store dies
    with them anyway.
    """

    def __init__(self, store_dir: str | None = None, jobs: int = 1,
                 max_concurrent_jobs: int = 4,
                 max_finished_jobs: int = 64,
                 max_active_jobs: int = 128,
                 tenant_limits: TenantLimits | None = None,
                 backend: ExecutionBackend | str | None = None):
        if max_concurrent_jobs < 1:
            raise ValueError(f"max_concurrent_jobs must be >= 1, "
                             f"got {max_concurrent_jobs}")
        if max_finished_jobs < 1:
            raise ValueError(f"max_finished_jobs must be >= 1, "
                             f"got {max_finished_jobs}")
        if max_active_jobs < 1:
            raise ValueError(f"max_active_jobs must be >= 1, "
                             f"got {max_active_jobs}")
        self.max_finished_jobs = max_finished_jobs
        self.max_active_jobs = max_active_jobs
        self._scratch_dir: str | None = None
        if store_dir is None:
            self._scratch_dir = tempfile.mkdtemp(prefix="repro-serve-")
            atexit.register(shutil.rmtree, self._scratch_dir,
                            ignore_errors=True)
            store_dir = self._scratch_dir
        self.store_dir = str(store_dir)
        self.jobs = jobs
        self._set_spawn = resolve_jobs(jobs) > 1
        if self._set_spawn:
            # job bodies run on executor threads; forking a worker
            # pool from a multi-threaded process can inherit a lock
            # held mid-operation by another thread and deadlock the
            # child, so the service's pools use spawn (close()
            # restores whatever this displaced — the setting must
            # not outlive the manager or clobber another user's)
            self._displaced_context = set_worker_start_method("spawn")
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent_jobs,
            thread_name_prefix="repro-job")
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._sequence = 0
        self._changed = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._closing = False
        self.tenant_limits = tenant_limits or TenantLimits()
        self._tenants: dict[str, TenantState] = {}
        if isinstance(backend, str) and backend not in BACKEND_NAMES:
            raise ValueError(f"unknown backend {backend!r}; expected "
                             f"one of {', '.join(BACKEND_NAMES)}")
        if backend == "workers":
            raise ValueError(
                "the workers backend needs a live lease server; pass "
                "a SocketWorkerBackend instance (serve --workers-port "
                "constructs one)")
        #: Execution backend threaded into every job body (None =
        #: auto-pick per run from ``jobs``).  A plain attribute so
        #: ``run_service`` can attach a socket backend after the
        #: manager (and its store directory) exists.
        self.backend: ExecutionBackend | str | None = backend

    # -- the job journal (persistent queue behind serve --resume) ------

    @property
    def _journal_dir(self) -> Path | None:
        """Where submitted-but-unfinished job specs persist.

        ``None`` on scratch stores: a journal that cannot outlive the
        process is pure overhead.
        """
        if self._scratch_dir is not None:
            return None
        return Path(self.store_dir) / "jobs"

    def _persist_job(self, job: Job) -> None:
        journal = self._journal_dir
        if journal is None:
            return
        journal.mkdir(parents=True, exist_ok=True)
        entry = {"kind": job.kind, "name": job.name,
                 "tenant": job.tenant, "spec": job.spec,
                 "submitted": _iso8601(job.submitted_wall)}
        path = journal / f"{job.id}.json"
        temp = journal / f".{job.id}.json.tmp"
        temp.write_text(json.dumps(entry, sort_keys=True) + "\n")
        temp.replace(path)

    def _discard_job(self, job: Job) -> None:
        journal = self._journal_dir
        if journal is None:
            return
        (journal / f"{job.id}.json").unlink(missing_ok=True)

    async def resume_jobs(self) -> list[Job]:
        """Re-queue every journaled (i.e. unfinished) job spec.

        The journal holds exactly the jobs a previous server accepted
        but never finished (terminal jobs delete their entries), so a
        restart with ``--resume`` picks up where the crash left off —
        under **new** job ids, since the old ids' event histories died
        with the old process.  Store manifests and cached stats make
        the re-run skip everything already computed.  Entries that no
        longer validate (or overflow a tenant's quota) are dropped
        with their error recorded, not retried forever.
        """
        journal = self._journal_dir
        if journal is None or not journal.is_dir():
            return []
        resumed = []
        for path in sorted(journal.glob("*.json")):
            try:
                entry = json.loads(path.read_text())
                spec = dict(entry.get("spec") or {})
                spec["kind"] = entry.get("kind")
                if entry.get("name"):
                    spec["name"] = entry["name"]
                tenant = str(entry.get("tenant") or "")
            except (json.JSONDecodeError, OSError, AttributeError):
                path.unlink(missing_ok=True)
                continue
            # the stale entry goes first: submit() journals the job
            # again under its new id
            path.unlink(missing_ok=True)
            try:
                resumed.append(await self.submit(spec, tenant=tenant))
            except ServiceError as error:
                TELEMETRY.counter("repro_jobs_resume_dropped_total") \
                    .inc()
                print(f"repro serve: dropping journaled job "
                      f"{path.stem}: {error}", file=sys.stderr,
                      flush=True)
        if resumed:
            TELEMETRY.counter("repro_jobs_resumed_total") \
                .inc(len(resumed))
        return resumed

    # -- tenancy -------------------------------------------------------

    def _tenant_state(self, tenant: str) -> TenantState:
        """This tenant's runtime limit state (created on first use)."""
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = TenantState(
                tenant, self.tenant_limits)
        return state

    def tenant_store_dir(self, tenant: str) -> str:
        """Where *tenant*'s jobs keep artifacts ("" = the root store)."""
        if not tenant:
            return self.store_dir
        return str(tenant_store_root(self.store_dir, tenant))

    def _active_jobs(self, tenant: str | None = None) -> int:
        """Non-terminal job count, overall or for one tenant."""
        return sum(1 for job in self._jobs.values()
                   if job.status not in TERMINAL_STATES
                   and (tenant is None or job.tenant == tenant))

    def _check_tenant_limits(self, tenant: str) -> None:
        """Quota then rate for one named tenant; 429s carry Retry-After.

        Quota first, so a submission that would be rejected anyway
        does not burn a rate token.  Both rejections are deliberately
        distinct — in message, ``Retry-After``, and the
        ``repro_requests_rejected_total`` reason label — from the
        global ``max_active_jobs`` capacity 429.
        """
        state = self._tenant_state(tenant)
        limits = state.limits
        active = self._active_jobs(tenant)
        if active >= limits.max_active_jobs:
            raise _reject(
                "quota",
                f"tenant {tenant!r} active-job quota reached "
                f"({active}/{limits.max_active_jobs}); retry after one "
                f"finishes or is cancelled", retry_after=1.0)
        wait = state.take(time.monotonic())
        if wait > 0.0:
            raise _reject(
                "rate",
                f"tenant {tenant!r} submission rate limit exceeded "
                f"({limits.rate_per_second:g}/s, burst "
                f"{limits.burst})", retry_after=wait)

    def _enforce_store_budget(self, tenant: str) -> None:
        """Cap a tenant's store namespace (runs on the job's thread).

        Layered on the store's ordinary LRU :meth:`~.ArtifactStore.gc`
        over the tenant's own namespace only — the root store and
        every other tenant's artifacts are out of reach by
        construction.
        """
        budget = self.tenant_limits.max_store_bytes
        if not tenant or budget is None:
            return
        report = ArtifactStore.for_tenant(self.store_dir,
                                          tenant).gc(budget)
        if report["evicted"]:
            TELEMETRY.counter("repro_tenant_store_evictions_total",
                              tenant=tenant).inc(report["evicted"])

    # -- submission ----------------------------------------------------

    async def submit(self, spec: dict, tenant: str = "") -> Job:
        """Validate *spec*, register a job, and start it. Returns it.

        *tenant* is the authenticated tenant name ("" = anonymous).
        Named tenants pass through their quota and rate limit and get
        their own store namespace.
        """
        if not isinstance(spec, dict):
            raise ServiceError("job spec must be a JSON object")
        kind = spec.get("kind")
        if kind not in JOB_KINDS:
            raise ServiceError(f"unknown job kind {kind!r}; expected "
                               f"one of {', '.join(JOB_KINDS)}")
        if tenant:
            self._check_tenant_limits(tenant)
        # backpressure: running + queued jobs are bounded, the same
        # unbounded-growth class the trace cache and finished-job
        # history fixes address
        active = self._active_jobs()
        if active >= self.max_active_jobs:
            raise _reject(
                "capacity",
                f"job queue full ({active} active jobs); retry after "
                f"some finish or are cancelled")
        unknown = sorted(set(spec) - _SPEC_KEYS[kind])
        if unknown:
            raise ServiceError(
                f"unknown {kind} spec keys {unknown}; known: "
                f"{sorted(_SPEC_KEYS[kind] - _COMMON_KEYS)}")
        self._sequence += 1
        job_id = f"j{self._sequence}"
        name = str(spec.get("name") or job_id)
        job = Job(id=job_id, kind=kind, name=name, tenant=tenant,
                  spec={k: v for k, v in spec.items()
                        if k not in ("kind", "name")})
        # surface bad specs as a 400 now, not a failed job later: build
        # the campaign/space eagerly (cheap — no simulation happens)
        try:
            if kind in ("sweep", "segments"):
                # .size, not .points(): a huge grid must not be
                # materialized on the event loop just to validate
                campaign = _campaign_from_spec(job.spec)
                if kind == "segments":
                    policy = _segment_policy_from_spec(job.spec)
                    # normalize: the body and the GET /jobs echo see
                    # one canonical manifest whichever spelling (new
                    # policy object or deprecated segment_insns) the
                    # client used
                    job.spec.pop("segment_insns", None)
                    job.spec["policy"] = policy.to_manifest()
                if campaign.size == 0:
                    raise ValueError("sweep spec names an empty grid")
            elif kind == "search":
                if not job.spec.get("dims"):
                    raise ValueError("search job needs a dims list")
                _spec_scales(job.spec)
                SearchSpace.from_specs(list(job.spec["dims"]))
                resolve_search_workloads(
                    split_workloads(job.spec["workloads"])
                    if isinstance(job.spec.get("workloads"), str)
                    else job.spec.get("workloads"),
                    job.spec.get("suite"))
                strategy = job.spec.get("strategy", "random")
                if strategy not in STRATEGIES:
                    raise ValueError(
                        f"unknown strategy {strategy!r}; expected "
                        f"one of {', '.join(STRATEGIES)}")
                make_objective(job.spec.get("objective", "geomean-ipc"),
                               job.spec.get("weights"))
                int(job.spec.get("seed", 0))
                for bound in ("budget", "rung_insns"):
                    value = job.spec.get(bound)
                    if value is not None and int(value) <= 0:
                        raise ValueError(f"{bound} must be > 0, "
                                         f"got {value}")
                rung_mode = job.spec.get("rung_mode", "limit")
                if rung_mode not in RUNG_MODES:
                    raise ValueError(
                        f"unknown rung_mode {rung_mode!r}; expected "
                        f"one of {', '.join(RUNG_MODES)}")
                rung_period = job.spec.get("rung_period")
                if rung_period is not None and int(rung_period) < 2:
                    raise ValueError(f"rung_period must be >= 2, "
                                     f"got {rung_period}")
            elif kind == "fuzz":
                seeds = job.spec.get("seeds", [0, 8])
                # a string like "19" would pass a bare len()==2 check
                # and fuzz range(1, 9) — same class _spec_scales guards
                if not isinstance(seeds, (list, tuple)) \
                        or len(seeds) != 2 \
                        or int(seeds[0]) >= int(seeds[1]):
                    raise ValueError(f"bad fuzz seeds {seeds!r}; "
                                     f"expected [lo, hi) with lo < hi")
                int(job.spec.get("scale", 1))
                unknown = [f for f in job.spec.get("families", [])
                           if f not in FAMILIES]
                if unknown:
                    raise ValueError(f"unknown families {unknown}; "
                                     f"known: {list(FAMILIES)}")
        except ServiceError:
            raise
        except (ValueError, TypeError, AttributeError, KeyError) as err:
            raise ServiceError(str(err)) from err
        job.submitted_at = time.perf_counter()
        job.submitted_wall = time.time()
        self._jobs[job_id] = job
        self._order.append(job_id)
        self._persist_job(job)
        TELEMETRY.counter("repro_jobs_submitted_total").inc()
        task = asyncio.create_task(self._run(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    async def _run(self, job: Job) -> None:
        loop = asyncio.get_running_loop()

        def emit(event: Event) -> None:
            """Thread-safe publish; doubles as the cancel checkpoint."""
            if job.cancel.is_set():
                raise JobCancelled()
            loop.call_soon_threadsafe(self._append, job, event)

        body = _JOB_BODIES[job.kind]

        def execute():
            """The executor callable: lifecycle + the job body.

            Runs only once a thread is free, so a job queued behind
            ``max_concurrent_jobs`` stays ``pending`` (and emits no
            ``job-started``) until it genuinely starts — and a cancel
            that lands while it queues skips the body entirely.
            """
            if job.cancel.is_set():
                raise JobCancelled()
            loop.call_soon_threadsafe(self._mark_running, job)
            result = body(job.spec, self.tenant_store_dir(job.tenant),
                          self.jobs, emit, self.backend)
            # the byte budget runs here, on the job's own thread: it
            # walks only this tenant's namespace, so a gc triggered by
            # one tenant's job can never touch another tenant's files
            self._enforce_store_budget(job.tenant)
            return result

        try:
            result = await loop.run_in_executor(self._executor, execute)
        except JobCancelled:
            job.status = "cancelled"
            self._record_phases(job)
            TELEMETRY.counter("repro_jobs_cancelled_total").inc()
            self._append(job, JobFailedEvent(job=job.id,
                                             error="cancelled",
                                             cancelled=True))
        except Exception as error:
            job.status = "failed"
            job.error = f"{type(error).__name__}: {error}"
            self._record_phases(job)
            TELEMETRY.counter("repro_jobs_failed_total").inc()
            self._append(job, JobFailedEvent(job=job.id,
                                             error=job.error))
        else:
            # wall-clock lifecycle stamps ride in the result (the
            # GET /jobs row carries the same pair), NOT in the ledger:
            # ledgers stay volatile-field-free and byte-identical
            result["submitted"] = _iso8601(job.submitted_wall)
            if job.started_wall is not None:
                result["started"] = _iso8601(job.started_wall)
            job.result = result
            job.status = "finished"
            self._record_phases(job)
            TELEMETRY.counter("repro_jobs_finished_total").inc()
            self._append(job, JobFinishedEvent(job=job.id,
                                               result=result))
        # terminal: the journal must not resubmit this job — except
        # jobs cancelled *by shutdown*, which are exactly what a
        # restart with --resume is supposed to pick back up
        if not (self._closing and job.status == "cancelled"):
            self._discard_job(job)
        self._prune_finished()

    def _record_phases(self, job: Job) -> None:
        """Emit queue/execute span metrics for a job that ran.

        Appends two ``metric`` events (before the terminal event, so
        a stream's last line stays the terminal one) and feeds the
        same spans into the registry histograms.  Jobs cancelled
        while still queued never started, have no meaningful spans,
        and keep their single-``job-failed`` event history.
        """
        if job.started_at is None:
            return
        spans = (("queue", job.started_at - job.submitted_at),
                 ("execute", time.perf_counter() - job.started_at))
        for phase, seconds in spans:
            seconds = max(0.0, seconds)
            TELEMETRY.histogram("repro_job_phase_seconds",
                                phase=phase).observe(seconds)
            self._append(job, MetricEvent(
                name="repro_job_phase_seconds", value=round(seconds, 6),
                unit="seconds", job=job.id, labels={"phase": phase}))

    def _mark_running(self, job: Job) -> None:
        """Flip pending -> running + job-started (on the loop thread).

        Scheduled from the executor thread before the body's first
        event, so ``call_soon_threadsafe`` FIFO ordering guarantees
        ``job-started`` precedes everything the body emits.
        """
        if job.status == "pending":
            job.status = "running"
            job.started_at = time.perf_counter()
            job.started_wall = time.time()
            self._append(job, JobStartedEvent(job=job.id,
                                              job_kind=job.kind,
                                              name=job.name))

    def _append(self, job: Job, event: Event) -> None:
        """Record an event and wake every waiting stream (loop thread)."""
        job.events.append(event)
        changed, self._changed = self._changed, asyncio.Event()
        changed.set()

    def _prune_finished(self) -> None:
        """Cap retained terminal jobs at ``max_finished_jobs``.

        A long-lived server would otherwise hold every job's full
        event history — including each job-finished event's embedded
        ledger — forever (the same unbounded-growth class the
        engine's trace cache fix addresses).  Oldest terminal jobs go
        first; live streams over a pruned job keep their reference
        and drain normally, but new lookups 404.
        """
        terminal = [job_id for job_id in self._order
                    if self._jobs[job_id].status in TERMINAL_STATES]
        for job_id in terminal[:-self.max_finished_jobs]:
            del self._jobs[job_id]
            self._order.remove(job_id)

    # -- consumption ---------------------------------------------------

    def get(self, job_id: str, tenant: str | None = None) -> Job:
        """Look up a job; with *tenant* set, enforce ownership (403).

        ``tenant=None`` (anonymous / unauthenticated deployments)
        skips the ownership check entirely — pre-tenancy behavior.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        if tenant is not None and job.tenant != tenant:
            raise ServiceError(
                f"job {job_id!r} belongs to another tenant", status=403)
        return job

    def list_jobs(self, tenant: str | None = None) -> list[dict]:
        """Summaries in submission order (*tenant*'s own when set)."""
        return [self._jobs[job_id].summary() for job_id in self._order
                if tenant is None or self._jobs[job_id].tenant == tenant]

    def publish_gauges(self) -> None:
        """Refresh jobs-by-state and queue-depth gauges (loop thread).

        Gauges are point-in-time, so they are recomputed on demand —
        at each ``/metrics`` scrape — rather than maintained
        incrementally across every status flip.
        """
        states = {state: 0 for state in
                  ("pending", "running") + TERMINAL_STATES}
        for job in self._jobs.values():
            states[job.status] = states.get(job.status, 0) + 1
        for state, count in states.items():
            TELEMETRY.gauge("repro_jobs", state=state).set(count)
        TELEMETRY.gauge("repro_job_queue_depth").set(states["pending"])
        now = time.monotonic()
        for name, state in self._tenants.items():
            TELEMETRY.gauge("repro_tenant_active_jobs",
                            tenant=name).set(self._active_jobs(name))
            TELEMETRY.gauge("repro_tenant_rate_tokens",
                            tenant=name).set(round(state.refill(now), 3))
        for name, used in tenant_usage(self.store_dir).items():
            TELEMETRY.gauge("repro_tenant_store_bytes",
                            tenant=name).set(used)

    async def events(self, job_id: str,
                     heartbeat: float | None = None,
                     tenant: str | None = None,
                     from_index: int = 0
                     ) -> AsyncIterator[Event | None]:
        """Replay a job's event history, then tail it live.

        Terminates after the job's terminal event (``job-finished`` /
        ``job-failed``).  A consumer abandoning this iterator detaches
        nothing but itself — the job keeps running.

        With *heartbeat* set, yields ``None`` whenever that many
        seconds pass without an event — the HTTP stream turns those
        into blank keep-alive lines so a client watching a queued or
        slow job can tell "nothing happened yet" from a dead server.

        ``from_index`` skips that many history events — the
        ``GET .../events?from=N`` resume point a reconnecting
        ``repro watch`` uses to avoid replaying what it already saw.
        """
        job = self.get(job_id, tenant)
        index = max(0, from_index)
        while True:
            waiter = self._changed
            while index < len(job.events):
                event = job.events[index]
                index += 1
                yield event
            if job.status in TERMINAL_STATES \
                    and index >= len(job.events):
                return
            if heartbeat is None:
                await waiter.wait()
            else:
                try:
                    await asyncio.wait_for(waiter.wait(), heartbeat)
                # asyncio.TimeoutError only merged into the builtin
                # on 3.11; setup.py still supports 3.10
                except (TimeoutError, asyncio.TimeoutError):
                    yield None

    async def cancel(self, job_id: str,
                     tenant: str | None = None) -> Job:
        """Request cancellation; returns the job (state may lag).

        Cancellation is cooperative: the job flips to ``cancelled``
        when its body observes the flag at the next emitted event or
        completed point.  Cancelling a terminal job is a no-op.
        With *tenant* set, cancelling another tenant's job is a 403.
        """
        job = self.get(job_id, tenant)
        if job.status not in TERMINAL_STATES:
            job.cancel.set()
        return job

    async def wait(self, job_id: str) -> Job:
        """Block until a job reaches a terminal state (test helper)."""
        job = self.get(job_id)
        while job.status not in TERMINAL_STATES:
            waiter = self._changed
            await waiter.wait()
        return job

    async def close(self) -> None:
        """Cancel everything, stop the executor, drop a scratch store.

        Jobs this cancels keep their journal entries: they were
        stopped by shutdown, not by a client, so a restart with
        ``--resume`` re-queues them.
        """
        self._closing = True
        for job in self._jobs.values():
            if job.status not in TERMINAL_STATES:
                job.cancel.set()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._set_spawn:
            set_worker_start_method(self._displaced_context)
        if self._scratch_dir is not None:
            shutil.rmtree(self._scratch_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# HTTP front end (stdlib only: asyncio.start_server + hand-rolled HTTP)
# ----------------------------------------------------------------------

_MAX_BODY_BYTES = 1 << 20  # a job spec has no business being > 1 MiB


class ServiceServer:
    """JSON-over-HTTP front end for a :class:`JobManager`.

    Responses are ``Connection: close`` (one request per connection) —
    event streams are framed by connection close, so a client needs no
    chunked-transfer decoding: read lines until EOF.
    """

    #: Blank keep-alive line cadence on idle event streams, so a
    #: client's socket timeout only fires when the server is actually
    #: gone — not while a queued job waits for a thread.
    HEARTBEAT_SECONDS = 15.0

    #: A stream write must drain within this long; a client that
    #: stopped reading (dead network, stuck process) would otherwise
    #: pin its connection task and fd forever — the write-side twin
    #: of ``REQUEST_READ_SECONDS``.
    STREAM_WRITE_SECONDS = 60.0

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0,
                 heartbeat_seconds: float = HEARTBEAT_SECONDS,
                 auth_tokens: dict[str, str] | None = None):
        self.manager = manager
        self.host = host
        self.port = port
        self.heartbeat_seconds = heartbeat_seconds
        #: token -> tenant (see :func:`parse_auth_tokens`); empty =
        #: open server, every request anonymous.
        self.auth_tokens = dict(auth_tokens or {})
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> int:
        """Bind and listen; returns the actual port (for ``port=0``)."""
        self._server = await asyncio.start_server(self._handle,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- request plumbing ----------------------------------------------

    #: A client gets this long to deliver a complete request; a
    #: stalled or never-writing connection (a scanner, slowloris)
    #: must not pin a task and a file descriptor forever.
    REQUEST_READ_SECONDS = 30.0

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader
                            ) -> tuple[str, str, dict[str, str], bytes]:
        """Parse one request; raises ServiceError on protocol errors.

        A client-side protocol error is a 400/413, never a 500 — 5xx
        would mislead clients that retry on server errors.  Returns
        ``(method, target, headers, body)`` with header names
        lowercased.  Duplicate ``Content-Length`` headers that
        *disagree* are rejected outright (the request-smuggling
        class: last-one-wins would let a proxy and this server frame
        the same bytes differently); identical repeats are tolerated
        per RFC 9110 §8.6.
        """

        async def readline(what: str) -> bytes:
            try:
                return await reader.readline()
            except ValueError as error:
                # the StreamReader's 64 KiB line limit: a client
                # problem, not a server one
                raise ServiceError(f"{what} too long",
                                   status=413) from error

        request = await readline("request line")
        parts = request.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError("bad request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        length: int | None = None
        while True:
            line = await readline("header line")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name, value = name.strip().lower(), value.strip()
            headers[name] = value
            if name == "content-length":
                try:
                    parsed = int(value)
                except ValueError:
                    parsed = -1
                if parsed < 0:
                    raise ServiceError(f"bad Content-Length {value!r}")
                if length is not None and parsed != length:
                    raise ServiceError("conflicting Content-Length "
                                       "headers")
                length = parsed
        length = length or 0
        if length > _MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        body = (await reader.readexactly(length)) if length else b""
        return method.upper(), target, headers, body

    def _authenticate(self, headers: dict[str, str]) -> str | None:
        """Resolve the request's tenant (None = open server).

        With tokens configured, a missing, malformed, or unknown
        ``Authorization: Bearer`` credential is a counted 401 carrying
        ``WWW-Authenticate``.
        """
        if not self.auth_tokens:
            return None
        credential = headers.get("authorization", "")
        scheme, _, token = credential.partition(" ")
        tenant = self.auth_tokens.get(token.strip()) \
            if scheme.lower() == "bearer" else None
        if tenant is None:
            raise _reject("auth", "missing or invalid bearer token",
                          status=401)
        return tenant

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, headers, body = await asyncio.wait_for(
                    self._read_request(reader),
                    self.REQUEST_READ_SECONDS)
            except (TimeoutError, asyncio.TimeoutError):
                return  # stalled client: just drop the connection
            await self._route(method, target, headers, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except ServiceError as error:
            await self._respond(writer, error.status,
                                {"error": str(error)},
                                extra_headers=error.headers())
        except Exception as error:  # never kill the accept loop
            await self._respond(
                writer, 500,
                {"error": f"{type(error).__name__}: {error}"})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, target: str,
                     headers: dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        target, _, query = target.partition("?")
        segments = [s for s in target.split("/") if s]
        if segments == ["metrics"] and method == "GET":
            # /metrics stays open even with tokens configured —
            # Prometheus-style scrapers don't carry app credentials,
            # and the registry holds aggregates, not tenant payloads
            # refresh point-in-time gauges at scrape time, then render
            self.manager.publish_gauges()
            params = urllib.parse.parse_qs(query)
            if params.get("format", [""])[0] == "json":
                return await self._respond(writer, 200,
                                           TELEMETRY.snapshot())
            return await self._respond_text(writer, 200,
                                            TELEMETRY.to_prometheus())
        tenant = self._authenticate(headers)
        if segments == ["jobs"] and method == "POST":
            try:
                spec = json.loads(body.decode() or "null")
            except json.JSONDecodeError as error:
                raise ServiceError(f"bad JSON body: {error}") from error
            job = await self.manager.submit(spec, tenant=tenant or "")
            return await self._respond(writer, 201, job.summary())
        if segments == ["jobs"] and method == "GET":
            return await self._respond(
                writer, 200, {"jobs": self.manager.list_jobs(tenant)})
        if len(segments) == 2 and segments[0] == "jobs" \
                and method == "DELETE":
            job = await self.manager.cancel(segments[1], tenant)
            return await self._respond(writer, 200, job.summary())
        if len(segments) == 3 and segments[0] == "jobs" \
                and segments[2] == "events" and method == "GET":
            params = urllib.parse.parse_qs(query)
            raw_from = params.get("from", ["0"])[0]
            try:
                from_index = int(raw_from)
                if from_index < 0:
                    raise ValueError
            except ValueError:
                raise ServiceError(f"bad from index {raw_from!r}; "
                                   f"expected a non-negative integer") \
                    from None
            return await self._stream_events(segments[1], writer,
                                             tenant, from_index)
        raise ServiceError(f"no route for {method} {target}",
                           status=404)

    _REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
                401: "Unauthorized", 403: "Forbidden",
                404: "Not Found", 413: "Payload Too Large",
                429: "Too Many Requests",
                500: "Internal Server Error"}

    @classmethod
    async def _respond(cls, writer: asyncio.StreamWriter, status: int,
                       payload: dict,
                       extra_headers: dict[str, str] | None = None
                       ) -> None:
        await cls._send(writer, status,
                        (json.dumps(payload) + "\n").encode(),
                        "application/json", extra_headers)

    @classmethod
    async def _respond_text(cls, writer: asyncio.StreamWriter,
                            status: int, text: str) -> None:
        # the version parameter marks Prometheus text exposition 0.0.4
        await cls._send(writer, status, text.encode(),
                        "text/plain; version=0.0.4; charset=utf-8")

    @classmethod
    async def _send(cls, writer: asyncio.StreamWriter, status: int,
                    body: bytes, content_type: str,
                    extra_headers: dict[str, str] | None = None
                    ) -> None:
        extras = "".join(f"{name}: {value}\r\n" for name, value
                         in (extra_headers or {}).items())
        head = (f"HTTP/1.1 {status} "
                f"{cls._REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extras}"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _stream_events(self, job_id: str,
                             writer: asyncio.StreamWriter,
                             tenant: str | None = None,
                             from_index: int = 0) -> None:
        self.manager.get(job_id, tenant)  # 404/403 before bytes go out
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        await writer.drain()
        try:
            async for event in self.manager.events(
                    job_id, heartbeat=self.heartbeat_seconds,
                    tenant=tenant, from_index=from_index):
                line = ("\n" if event is None  # keep-alive
                        else event.to_json_line() + "\n")
                writer.write(line.encode())
                await asyncio.wait_for(writer.drain(),
                                       self.STREAM_WRITE_SECONDS)
        except (TimeoutError, asyncio.TimeoutError):
            return  # client stopped reading: treat as disconnected
        except (ConnectionError, OSError):
            # client disconnected mid-stream: drop only this stream —
            # the job (and everything already submitted) keeps running
            return
        except Exception:
            # anything else after the headers went out (e.g. the job
            # was pruned between our lookup and the iterator's) must
            # NOT become a second HTTP response inside the ndjson
            # body; closing the connection is the stream's normal
            # termination signal
            return


async def run_service(store_dir: str | None = None, jobs: int = 1,
                      max_concurrent_jobs: int = 4,
                      host: str = "127.0.0.1", port: int = 8787,
                      announce: Callable[[str, int, str], None]
                      | None = None,
                      shutdown: asyncio.Event | None = None,
                      auth_tokens: dict[str, str] | None = None,
                      tenant_limits: TenantLimits | None = None,
                      backend: ExecutionBackend | str | None = None,
                      workers_port: int | None = None,
                      resume: bool = False) -> int:
    """Run a manager + HTTP server until *shutdown* (or cancellation).

    The coroutine behind ``repro serve``: *announce* is called once
    with ``(host, actual_port, store_dir)`` after binding (``port=0``
    picks an ephemeral port).  Without a *shutdown* event it serves
    until cancelled (Ctrl-C under ``asyncio.run``); with one — how
    tests drive it — it stops when the event is set.  *auth_tokens*
    (token -> tenant) switches on bearer auth; *tenant_limits*
    overrides the per-tenant quota/rate/store bounds.

    *workers_port* opens a :class:`~repro.engine.backend
    .SocketWorkerBackend` lease server on that port (0 = ephemeral) —
    ``repro worker --connect host:port`` fleets then execute every
    job's work units, with artifacts replicated against the manager's
    store; worker lifecycle events are logged on stderr.  *backend*
    alternatively names ``inline``/``pool`` (or passes a live
    instance) for every job body.  *resume* re-queues the store
    journal's unfinished jobs before serving.
    """
    manager = JobManager(store_dir=store_dir, jobs=jobs,
                         max_concurrent_jobs=max_concurrent_jobs,
                         tenant_limits=tenant_limits, backend=backend)
    owned_backend = None
    if workers_port is not None:
        from .backend import SocketWorkerBackend

        def log_worker_event(event: Event) -> None:
            print(format_event(event), file=sys.stderr, flush=True)

        # built after the manager so a scratch store still gets
        # replicated to workers; parallelism comes from --jobs so
        # plans fan out identically with or without the fleet
        owned_backend = SocketWorkerBackend(
            store_dir=manager.store_dir, host=host, port=workers_port,
            parallelism=resolve_jobs(jobs), on_event=log_worker_event)
        manager.backend = owned_backend
        print(f"leasing work units on "
              f"{owned_backend.host}:{owned_backend.port} (connect "
              f"workers with: repro worker --connect "
              f"{owned_backend.host}:{owned_backend.port})",
              file=sys.stderr, flush=True)
    server = ServiceServer(manager, host=host, port=port,
                           auth_tokens=auth_tokens)
    try:
        # start() inside the try: a busy port must still tear the
        # manager (and its scratch store) down on the way out
        actual_port = await server.start()
        if announce is not None:
            announce(host, actual_port, manager.store_dir)
        if resume:
            resumed = await manager.resume_jobs()
            if resumed:
                print(f"resumed {len(resumed)} unfinished job(s) from "
                      f"the store journal: "
                      f"{', '.join(job.id for job in resumed)}",
                      file=sys.stderr, flush=True)
        if shutdown is not None:
            await shutdown.wait()
        else:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        await manager.close()
        if owned_backend is not None:
            owned_backend.close()
    return 0


# ----------------------------------------------------------------------
# blocking client (the `repro watch` front end; also used by tests)
# ----------------------------------------------------------------------


def _connect(url: str, timeout: float):
    """``(HTTPConnection, path_prefix)`` for a service base URL.

    The URL's own path component becomes a prefix applied to every
    request path — ``http://host:8787/repro`` reaches ``/repro/jobs``
    (a reverse-proxy mount), where it used to be silently dropped and
    the client would quietly talk to the root.
    """
    import http.client
    import urllib.parse
    parsed = urllib.parse.urlsplit(url if "//" in url
                                   else f"http://{url}")
    if not parsed.hostname:
        raise ServiceError(f"bad service URL {url!r}")
    return (http.client.HTTPConnection(parsed.hostname,
                                       parsed.port or 80,
                                       timeout=timeout),
            parsed.path.rstrip("/"))


def _auth_headers(token: str | None) -> dict[str, str]:
    return {"Authorization": f"Bearer {token}"} if token else {}


def _error_from(response) -> ServiceError:
    """The server's JSON error body as a client-side ServiceError."""
    try:
        detail = json.loads(response.read().decode() or "{}")
    except json.JSONDecodeError:
        detail = {}
    retry_after = None
    header = response.getheader("Retry-After")
    if header is not None:
        try:
            retry_after = float(header)
        except ValueError:
            pass
    return ServiceError(detail.get("error", f"HTTP {response.status}"),
                        status=response.status,
                        retry_after=retry_after)


def request_json(url: str, method: str, path: str,
                 payload: dict | None = None,
                 timeout: float = 30.0,
                 token: str | None = None) -> dict:
    """One blocking JSON request against a running service."""
    conn, prefix = _connect(url, timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        headers = _auth_headers(token)
        if body:
            headers["Content-Type"] = "application/json"
        conn.request(method, prefix + path, body=body, headers=headers)
        response = conn.getresponse()
        if response.status >= 400:
            raise _error_from(response)
        return json.loads(response.read().decode() or "{}")
    finally:
        conn.close()


def watch_job(url: str, job_id: str,
              on_event: Callable[[Event], None],
              timeout: float = 600.0,
              token: str | None = None,
              retries: int = 5,
              backoff: float = 0.25,
              on_reconnect: Callable[[int, Exception], None]
              | None = None) -> Event | None:
    """Tail one job's event stream until it ends; returns the last event.

    Decodes the JSON-lines stream back into typed events and hands
    each to *on_event*.  Returns the stream's final event (normally
    ``job-finished`` or ``job-failed``), or ``None`` for an empty
    stream.

    A transport error mid-stream (connection reset, timeout) no
    longer kills the watch: up to *retries* reconnect attempts are
    made with exponential backoff (capped at 5s), resuming from the
    last-seen event index via the server's ``?from=`` query so no
    event is dropped or duplicated.  Receiving an event resets the
    attempt budget — only consecutive failures exhaust it.  A clean
    end-of-stream is never retried: the server closed the stream on
    purpose (terminal event, shutdown), and callers detect the
    missing terminal event themselves.  *on_reconnect*, when given,
    observes each retry as ``(attempt, error)``.
    """
    import http.client
    from .events import event_from_json_line
    last: Event | None = None
    seen = 0
    attempts = 0
    while True:
        conn, prefix = _connect(url, timeout)
        try:
            conn.request("GET",
                         f"{prefix}/jobs/{job_id}/events?from={seen}",
                         headers=_auth_headers(token))
            response = conn.getresponse()
            if response.status != 200:
                raise _error_from(response)
            while True:
                line = response.readline()
                if not line:
                    return last
                line = line.decode().strip()
                if not line:
                    continue
                last = event_from_json_line(line)
                seen += 1
                attempts = 0  # progress: a fresh retry budget
                on_event(last)
        except (ConnectionError, OSError, http.client.HTTPException) \
                as exc:
            attempts += 1
            if attempts > retries:
                raise
            if on_reconnect is not None:
                on_reconnect(attempts, exc)
            time.sleep(min(backoff * 2 ** (attempts - 1), 5.0))
        finally:
            conn.close()
