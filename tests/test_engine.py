"""Tests for the sweep engine: store, campaign, pool, runner glue."""

import json
import os
import pickle
import time

import pytest

from repro.engine.campaign import (Campaign, SweepPoint, apply_override,
                                   expand_axes, parse_axis)
from repro.engine.pool import (ExecutionContext, SweepResult,
                               resolve_jobs, run_sweep, run_sweep_iter)
from repro.engine.store import (ArtifactStore, PICKLE_PROTOCOL, stats_key,
                                trace_key)
from repro.experiments import runner
from repro.uarch.config import MachineConfig, default_config
from repro.uarch.pipeline import simulate_trace
from repro.uarch.stats import PipelineStats
from repro.workloads import build_trace

WORKLOADS = ["mcf", "gcc"]


@pytest.fixture(scope="module")
def mcf_trace():
    return build_trace("mcf", 1).trace


@pytest.fixture(scope="module")
def mcf_stats(mcf_trace):
    return simulate_trace(mcf_trace, default_config())


def small_campaign() -> Campaign:
    base = default_config()
    return Campaign.from_axes(
        name="test", workloads=WORKLOADS,
        base=base.with_optimizer(),
        axes=[parse_axis("optimizer.vf_delay=0,1")],
        include_baseline=True)


class TestConfigKeys:
    def test_cache_key_is_stable_and_content_addressed(self):
        assert default_config().cache_key() == \
            MachineConfig().cache_key()

    def test_cache_key_differs_across_configs(self):
        base = default_config()
        assert base.cache_key() != base.with_optimizer().cache_key()
        assert base.cache_key() != base.fetch_bound().cache_key()

    def test_canonical_json_round_trips(self):
        config = default_config().with_optimizer(vf_delay=5)
        data = json.loads(config.canonical_json())
        assert data["optimizer"]["vf_delay"] == 5
        assert data["il1"]["size_bytes"] == 64 * 1024

    def test_store_keys_depend_on_every_coordinate(self):
        base = default_config()
        keys = {
            trace_key("mcf", 1), trace_key("mcf", 2), trace_key("gcc", 1),
            stats_key("mcf", 1, base),
            stats_key("mcf", 1, base.with_optimizer()),
            stats_key("mcf", 2, base),
        }
        assert len(keys) == 6


class TestStatsSerialization:
    def test_round_trip_preserves_everything(self, mcf_stats):
        clone = PipelineStats.from_json(mcf_stats.to_json())
        assert clone == mcf_stats
        assert clone.to_json() == mcf_stats.to_json()

    def test_unknown_field_ignored(self):
        # forward compatibility: artifacts written by a newer stats
        # schema still load on an older one
        stats = PipelineStats.from_dict({"cycles": 1, "warp_drive": 9})
        assert stats.cycles == 1

    def test_missing_field_defaults(self):
        stats = PipelineStats.from_dict({"cycles": 1})
        assert stats.retired == 0


class TestArtifactStore:
    def test_trace_round_trip_byte_identical(self, tmp_path, mcf_trace):
        store = ArtifactStore(tmp_path / "a")
        path = store.save_trace("mcf", 1, mcf_trace)
        loaded = store.load_trace("mcf", 1)
        assert loaded == mcf_trace
        # re-serializing the loaded trace reproduces the artifact
        # byte-for-byte (content-addressed storage is stable)
        assert pickle.dumps(loaded, protocol=PICKLE_PROTOCOL) == \
            path.read_bytes()
        other = ArtifactStore(tmp_path / "b")
        assert other.save_trace("mcf", 1, loaded).read_bytes() == \
            path.read_bytes()

    def test_stats_round_trip_byte_identical(self, tmp_path, mcf_stats):
        store = ArtifactStore(tmp_path)
        config = default_config()
        path = store.save_stats("mcf", 1, config, mcf_stats)
        loaded = store.load_stats("mcf", 1, config)
        assert loaded == mcf_stats
        assert store.save_stats("mcf", 1, config,
                                loaded).read_bytes() == path.read_bytes()

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_trace("mcf", 1) is None
        assert store.load_stats("mcf", 1, default_config()) is None
        counters = store.counters()
        assert counters["trace_hits"] == 0
        assert counters["trace_misses"] == 1
        assert counters["stats_hits"] == 0
        assert counters["stats_misses"] == 1
        assert counters["segment_trace_misses"] == 0

    def test_clear_and_artifact_count(self, tmp_path, mcf_stats):
        store = ArtifactStore(tmp_path)
        store.save_stats("mcf", 1, default_config(), mcf_stats)
        counts = store.artifact_count()
        assert counts["stats"] == 1
        assert sum(counts.values()) == 1
        store.clear()
        assert sum(store.artifact_count().values()) == 0

    def test_clear_survives_concurrent_eviction(self, tmp_path,
                                                mcf_stats, monkeypatch):
        # a concurrent gc may delete a file between clear()'s listing
        # and its unlink; that must count as success, not crash
        store = ArtifactStore(tmp_path)
        store.save_stats("mcf", 1, default_config(), mcf_stats)
        ghost = store._stats / ("0" * 8)  # listed but never on disk
        listed = store._artifact_paths() + [ghost]
        monkeypatch.setattr(store, "_artifact_paths", lambda: listed)
        store.clear()
        assert sum(store.artifact_count().values()) == 0

    def test_clear_sweeps_orphans_too(self, tmp_path, mcf_stats):
        store = ArtifactStore(tmp_path)
        kept = store.save_stats("mcf", 1, default_config(), mcf_stats)
        (store._stats / f".{kept.name}.x1").write_bytes(b"zzz")
        store.clear()
        assert store.total_bytes() == 0
        assert store.orphan_info() == {"files": 0, "bytes": 0,
                                       "sweepable_files": 0,
                                       "sweepable_bytes": 0}

    def test_gc_sweeps_aged_orphan_temp_files(self, tmp_path, mcf_stats):
        store = ArtifactStore(tmp_path)
        kept = store.save_stats("mcf", 1, default_config(), mcf_stats)
        # a killed writer leaves `.name.rand` behind; a live one's temp
        # file looks identical but is young
        orphan = store._stats / f".{kept.name}.dead01"
        orphan.write_bytes(b"x" * 100)
        old = time.time() - 300
        os.utime(orphan, (old, old))
        in_flight = store._stats / f".{kept.name}.live01"
        in_flight.write_bytes(b"y" * 40)
        # only the aged temp file is sweepable; the young one is
        # presumed in-flight
        assert store.orphan_info() == {"files": 2, "bytes": 140,
                                       "sweepable_files": 1,
                                       "sweepable_bytes": 100}
        assert store.total_bytes() >= kept.stat().st_size + 140
        report = store.gc(max_bytes=10 ** 9)
        assert report["orphans_swept"] == 1
        assert report["orphan_bytes_swept"] == 100
        assert report["evicted"] == 0
        assert report["freed_bytes"] == 100
        assert not orphan.exists()
        assert in_flight.exists()  # presumed in-flight: left alone
        assert kept.exists()
        # the surviving temp file's bytes still occupy disk, so they
        # count against the budget the caller asked for
        assert report["remaining_bytes"] == kept.stat().st_size + 40


class TestCampaign:
    def test_grid_size_and_order(self):
        campaign = small_campaign()
        points = campaign.points()
        assert campaign.size == len(points) == 2 * 1 * 3
        assert [p.workload for p in points[:3]] == ["mcf"] * 3
        assert points[0].variant == "baseline"

    def test_apply_override_nested(self):
        config = apply_override(default_config(), "optimizer.vf_delay", 7)
        assert config.optimizer.vf_delay == 7
        assert default_config().optimizer.vf_delay == 1

    def test_apply_override_toplevel(self):
        assert apply_override(default_config(),
                              "sched_entries", 16).sched_entries == 16

    def test_apply_override_bad_path(self):
        with pytest.raises(AttributeError):
            apply_override(default_config(), "optimizer.warp", 1)

    def test_apply_override_type_mismatch(self):
        with pytest.raises(TypeError):
            apply_override(default_config(), "sched_entries", 1.5)

    def test_apply_override_rejects_bool_for_int_field(self):
        # regression: isinstance(True, int) holds, so a plain
        # isinstance check silently accepted True for int fields
        with pytest.raises(TypeError, match="expected int, got bool"):
            apply_override(default_config(), "sched_entries", True)
        with pytest.raises(TypeError, match="expected int, got bool"):
            apply_override(default_config(), "optimizer.vf_delay", False)

    def test_apply_override_rejects_int_for_bool_field(self):
        with pytest.raises(TypeError, match="expected bool, got int"):
            apply_override(default_config(), "optimizer.enabled", 1)

    def test_apply_override_accepts_matching_kinds(self):
        config = apply_override(default_config(),
                                "optimizer.enabled", True)
        assert config.optimizer.enabled is True
        assert apply_override(default_config(), "sched_entries",
                              32).sched_entries == 32

    def test_parse_axis(self):
        assert parse_axis("optimizer.vf_delay=0,1,5") == \
            ("optimizer.vf_delay", [0, 1, 5])
        assert parse_axis("optimizer.verify=true,false") == \
            ("optimizer.verify", [True, False])
        with pytest.raises(ValueError):
            parse_axis("no-equals-sign")

    def test_expand_axes_cartesian_product(self):
        variants = expand_axes(default_config(),
                               [("optimizer.vf_delay", [0, 1]),
                                ("sched_entries", [8, 16])])
        assert len(variants) == 4
        assert variants[0][0] == "optimizer.vf_delay=0,sched_entries=8"
        labels = [label for label, _ in variants]
        assert len(set(labels)) == 4

    def test_workload_abbreviations_canonicalized(self):
        campaign = Campaign.from_axes(workloads=["untst"])
        assert campaign.workloads == ("untoast",)

    def test_include_baseline_keeps_explicit_axis_variants(self):
        # sched_entries=8 equals the baseline config, but it was asked
        # for by name, so it must stay in the grid under its own label
        campaign = Campaign.from_axes(
            workloads=["mcf"], axes=[("sched_entries", [8, 16])],
            include_baseline=True)
        assert [label for label, _ in campaign.variants] == \
            ["baseline", "sched_entries=8", "sched_entries=16"]

    def test_include_baseline_dedupes_implicit_base(self):
        campaign = Campaign.from_axes(workloads=["mcf"],
                                      include_baseline=True)
        assert [label for label, _ in campaign.variants] == ["baseline"]


class TestSweepPool:
    def test_parallel_matches_serial(self, tmp_path):
        points = small_campaign().points()
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=4)
        assert [r.point for r in serial.results] == \
            [r.point for r in parallel.results]
        assert [r.stats.to_json() for r in serial.results] == \
            [r.stats.to_json() for r in parallel.results]
        assert serial.counters["simulations"] == len(points)
        # one emulation per workload, never per variant
        assert serial.counters["emulations"] == len(WORKLOADS)
        assert parallel.counters["emulations"] == len(WORKLOADS)

    def test_second_run_hits_store_with_zero_emulations(self, tmp_path):
        points = small_campaign().points()
        first = run_sweep(points, jobs=1, store_dir=tmp_path)
        assert first.counters["emulations"] == len(WORKLOADS)
        second = run_sweep(points, jobs=4, store_dir=tmp_path)
        assert second.counters["emulations"] == 0
        assert second.counters["simulations"] == 0
        assert second.counters["stats_cache_hits"] == len(points)
        assert [r.stats.to_json() for r in first.results] == \
            [r.stats.to_json() for r in second.results]
        assert all(r.from_cache for r in second.results)

    def test_progress_callback_streams_point_events(self):
        points = small_campaign().points()
        events = []
        run_sweep(points, jobs=2, progress=events.append)
        assert all(e.kind == "point" for e in events)
        assert (events[-1].done, events[-1].total) == \
            (len(points), len(points))
        assert [e.done for e in events] == \
            sorted(e.done for e in events)
        assert {e.label for e in events} == \
            {p.label for p in points}

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1

    def test_to_dict_is_json_ready(self):
        points = small_campaign().points()
        report = run_sweep(points, jobs=1).to_dict()
        parsed = json.loads(json.dumps(report))
        assert len(parsed["points"]) == len(points)
        assert parsed["counters"]["points"] == len(points)
        assert {"workload", "scale", "variant", "cycles",
                "ipc"} <= set(parsed["points"][0])


class TestExecutionContext:
    """The per-sweep context: re-entrancy, bounded cache, aliasing."""

    def test_interleaved_serial_sweeps_stay_disjoint(self, tmp_path):
        # the headline bug: two jobs=1 generators advanced in lockstep
        # used to share module-global store/cache state, so the second
        # generator's store silently absorbed the first's artifacts
        # and corrupted its hit/miss accounting
        store_a, store_b = tmp_path / "a", tmp_path / "b"
        points_a = [SweepPoint(w, 1, "base", default_config())
                    for w in ("mcf", "gcc")]
        points_b = [SweepPoint(w, 1, "base", default_config())
                    for w in ("eon", "twolf")]
        counters_a, counters_b = {}, {}
        gen_a = run_sweep_iter(points_a, jobs=1, store_dir=store_a,
                               counters=counters_a)
        gen_b = run_sweep_iter(points_b, jobs=1, store_dir=store_b,
                               counters=counters_b)
        results_a, results_b = [], []
        for _ in points_a:  # one shard per point: strict interleave
            results_a.append(next(gen_a))
            results_b.append(next(gen_b))
        assert list(gen_a) == [] and list(gen_b) == []
        # per-sweep counters stayed disjoint
        assert counters_a["emulations"] == 2
        assert counters_b["emulations"] == 2
        assert counters_a["trace_cache_hits"] == 0
        assert counters_b["trace_cache_hits"] == 0
        # each store holds exactly its own sweep's artifacts
        for workload in ("mcf", "gcc"):
            assert (ArtifactStore(store_a)
                    .load_trace(workload, 1)) is not None
            assert (ArtifactStore(store_b)
                    .load_trace(workload, 1)) is None
        for workload in ("eon", "twolf"):
            assert (ArtifactStore(store_b)
                    .load_trace(workload, 1)) is not None
            assert (ArtifactStore(store_a)
                    .load_trace(workload, 1)) is None
        # and the interleaved results equal isolated serial runs
        isolated = run_sweep(points_a, jobs=1,
                             store_dir=tmp_path / "iso")
        interleaved = SweepResult(
            results=[r for _, r in sorted(results_a)],
            counters=counters_a)
        assert interleaved.ledger_json() == isolated.ledger_json()

    def test_trace_cache_is_bounded_lru(self):
        context = ExecutionContext(max_cached_traces=1)
        first, emulated, _ = context.get_trace("mcf", 1)
        assert emulated
        context.get_trace("gcc", 1)
        assert context.cached_traces == 1
        assert context.trace_evictions == 1
        # the evicted trace is re-emulated on the next touch, and the
        # result is unchanged
        again, emulated, _ = context.get_trace("mcf", 1)
        assert emulated
        assert pickle.dumps(again, protocol=PICKLE_PROTOCOL) == \
            pickle.dumps(first, protocol=PICKLE_PROTOCOL)

    def test_bounded_cache_prefers_store_over_emulation(self, tmp_path):
        context = ExecutionContext(store_dir=tmp_path,
                                   max_cached_traces=1)
        context.get_trace("mcf", 1)
        context.get_trace("gcc", 1)  # evicts mcf from memory
        _, emulated, store_hit = context.get_trace("mcf", 1)
        assert not emulated and store_hit  # an unpickle, not a re-run

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="max_cached_traces"):
            ExecutionContext(max_cached_traces=0)

    def test_capped_sweep_matches_uncapped(self, tmp_path):
        points = [SweepPoint(w, 1, "base", default_config())
                  for w in ("mcf", "gcc", "eon")]
        capped = run_sweep(points, jobs=1, max_cached_traces=1,
                           store_dir=tmp_path / "capped")
        uncapped = run_sweep(points, jobs=1, max_cached_traces=None,
                             store_dir=tmp_path / "uncapped")
        assert capped.ledger_json() == uncapped.ledger_json()

    def test_eviction_counter_reaches_sweep_counters(self, tmp_path):
        points = [SweepPoint(w, 1, "base", default_config())
                  for w in ("mcf", "gcc", "eon")]
        counters = {}
        list(run_sweep_iter(points, jobs=1, store_dir=tmp_path,
                            counters=counters, max_cached_traces=1))
        assert counters["trace_evictions"] == 2

    def test_abandoned_pool_generator_does_not_block(self, tmp_path):
        # closing a parallel generator early must not run the whole
        # grid (queued shards are cancelled; executing ones finish) —
        # and a later sweep against the same store completes the rest
        points = [SweepPoint(w, 1, "base", default_config())
                  for w in ("mcf", "gcc", "eon", "gap")]
        generator = run_sweep_iter(points, jobs=2, store_dir=tmp_path)
        first = next(generator)
        assert first is not None
        generator.close()
        result = run_sweep(points, jobs=2, store_dir=tmp_path)
        assert len(result.results) == len(points)
        assert all(r.stats.cycles > 0 for r in result.results)


class TestLimitKeyAliasing:
    """Short-trace truncated runs alias to the full-run stats key."""

    BIG = 10 ** 9  # far beyond any tier-1 trace length

    def _run(self, tmp_path, limit_insns):
        counters = {}
        results = list(run_sweep_iter(
            [SweepPoint("mcf", 1, "base", default_config())],
            jobs=1, store_dir=tmp_path, counters=counters,
            limit_insns=limit_insns))
        return counters, results[0][1].stats

    def test_promotion_to_full_budget_is_a_stats_hit(self, tmp_path):
        first, truncated_stats = self._run(tmp_path, self.BIG)
        assert first["simulations"] == 1
        # the "truncated" run covered the whole trace, so the full-run
        # evaluation (a halving promotion) must reuse its stats
        promoted, full_stats = self._run(tmp_path, None)
        assert promoted["simulations"] == 0
        assert promoted["stats_cache_hits"] == 1
        assert full_stats == truncated_stats

    def test_next_rung_budget_is_also_a_stats_hit(self, tmp_path):
        self._run(tmp_path, self.BIG)
        doubled, _ = self._run(tmp_path, self.BIG * 2)
        assert doubled["simulations"] == 0
        assert doubled["stats_cache_hits"] == 1

    def test_real_truncation_keeps_budget_specific_keys(self, tmp_path):
        # a budget that actually truncates must NOT alias: truncated
        # stats are rankings, never full results
        truncated, truncated_stats = self._run(tmp_path, 2000)
        assert truncated["simulations"] == 1
        full, full_stats = self._run(tmp_path, None)
        assert full["simulations"] == 1
        assert full_stats != truncated_stats


class TestRunnerIntegration:
    def setup_method(self):
        runner.clear_caches(detach_store=True)

    def teardown_method(self):
        runner.clear_caches(detach_store=True)

    def test_run_workload_uses_store(self, tmp_path):
        runner.configure(store_dir=tmp_path)
        config = default_config()
        stats = runner.run_workload("mcf", config)
        runner.clear_caches()
        runner.configure(store_dir=tmp_path)
        store = runner.active_store()
        again = runner.run_workload("mcf", config)
        assert again == stats
        assert store.stats_hits == 1

    def test_prewarm_fills_stats_cache(self, tmp_path):
        runner.configure(store_dir=tmp_path)
        base = default_config()
        counters = runner.prewarm(WORKLOADS, [base, base.with_optimizer()],
                                  jobs=2)
        assert counters["simulations"] == 4
        # everything below must be pure cache lookups
        assert runner.active_store().stats_misses == 0
        for name in WORKLOADS:
            lazy = runner.run_workload(name, base)
            assert lazy.cycles > 0
        assert runner.active_store().stats_misses == 0

    def test_prewarm_serial_is_noop(self):
        assert runner.prewarm(WORKLOADS, [default_config()], jobs=1) is None

    def test_cache_keyed_by_content_not_identity(self):
        config_a = default_config().with_optimizer(vf_delay=1)
        config_b = MachineConfig().with_optimizer(vf_delay=1)
        stats = runner.run_workload("mcf", config_a)
        assert runner.run_workload("mcf", config_b) is stats

    def test_prewarms_share_traces_without_a_store(self):
        # consecutive parallel prewarms (repro --jobs N all) must not
        # re-emulate traces: the scratch store carries them across pools
        base = default_config()
        first = runner.prewarm(WORKLOADS, [base], jobs=2)
        assert first["emulations"] == len(WORKLOADS)
        second = runner.prewarm(WORKLOADS, [base.with_optimizer()],
                                jobs=2)
        assert second["emulations"] == 0


class TestSweepCli:
    def teardown_method(self):
        # main() configures the process-global store; detach it so
        # later tests do not keep writing into this test's tmpdir
        runner.clear_caches(detach_store=True)

    def test_sweep_command_emits_json_with_counters(self, tmp_path,
                                                    capsys):
        from repro.cli import main
        out_file = tmp_path / "sweep.json"
        argv = ["--jobs", "2", "--store", str(tmp_path / "store"),
                "sweep", "--workloads", "mcf,gcc",
                "--axis", "optimizer.vf_delay=0,1",
                "--axis", "optimizer.opt_stages=0,2",
                "--optimized", "--quiet", "--out", str(out_file)]
        assert main(argv) == 0
        report = json.loads(out_file.read_text())
        assert len(report["points"]) == 8
        assert report["counters"]["emulations"] == 2
        assert report["campaign"]["workloads"] == ["mcf", "gcc"]
        # second run: the store satisfies everything
        assert main(argv) == 0
        report = json.loads(out_file.read_text())
        assert report["counters"]["emulations"] == 0
        assert report["counters"]["simulations"] == 0
        assert report["counters"]["stats_cache_hits"] == 8

    def test_sweep_honours_global_scale(self, capsys):
        from repro.cli import main
        assert main(["--scale", "2", "sweep", "--workloads", "mcf",
                     "--quiet"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [p["scale"] for p in report["points"]] == [2]
