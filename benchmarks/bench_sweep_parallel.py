"""Sweep-engine scaling: wall-clock at jobs=1 vs jobs=cpu_count.

Tracks the speedup the process-pool executor delivers on a 12-point
design-space grid (4 workloads x 3 machine variants), plus the
near-free cost of re-running the same grid against a warm artifact
store.  Single-core machines still run the parallel leg (the pool is
exercised; the speedup is just ~1x).

A ``--backend workers`` row dispatches the same grid to N local
socket workers — real ``repro worker`` subprocesses leasing units
over TCP and syncing artifacts by content hash — so the scale-out
trajectory is recorded from day one.  On one machine the workers row
tracks the pool row (same cores, plus lease/replication overhead);
its value is the recorded trend as fleets move off-box.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time

from conftest import publish

from repro.engine.backend import SocketWorkerBackend
from repro.engine.campaign import Campaign, parse_axis
from repro.engine.pool import run_sweep
from repro.uarch.config import default_config

GRID_WORKLOADS = ["mcf", "gcc", "eon", "gap"]

#: Last recorded run *before* the packed-SoA trace + table-dispatch
#: core landed (same 12-point grid, single-CPU container), kept inline
#: so the published JSON carries the before/after pair.
BASELINE = {
    "trace_format": "list[TraceEntry] (per-entry dataclasses)",
    "points": 12,
    "jobs": 1,
    "serial_seconds": 22.1988,
    "parallel_seconds": 21.3558,
    "warm_seconds": 0.0069,
}


def _campaign(workloads) -> Campaign:
    return Campaign.from_axes(
        name="bench", workloads=workloads,
        base=default_config().with_optimizer(),
        axes=[parse_axis("optimizer.vf_delay=0,1")],
        include_baseline=True)


def _timed_sweep(points, jobs, store_dir, backend=None):
    started = time.perf_counter()
    result = run_sweep(points, jobs=jobs, store_dir=store_dir,
                       backend=backend)
    return result, time.perf_counter() - started


def _timed_workers_sweep(points, jobs, store_dir, workers):
    """The grid on N real `repro worker` subprocesses over TCP."""
    backend = SocketWorkerBackend(store_dir=store_dir,
                                  parallelism=jobs)
    fleet = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{backend.port}", "--quiet",
             "--name", f"bench-{index}"],
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     filter(None, [os.path.join(os.path.dirname(
                         os.path.dirname(os.path.abspath(__file__))),
                         "src"), os.environ.get("PYTHONPATH")]))},
            stderr=subprocess.DEVNULL)
        for index in range(workers)]
    try:
        result, elapsed = _timed_sweep(points, jobs, store_dir,
                                       backend=backend)
    finally:
        backend.close()
        for worker in fleet:
            worker.wait(timeout=60)
    return result, elapsed


def test_sweep_parallel_speedup(benchmark, smoke):
    workloads = GRID_WORKLOADS[:2] if smoke else GRID_WORKLOADS
    points = _campaign(workloads).points()
    ncpu = os.cpu_count() or 1
    workers = 2 if smoke else max(2, min(4, ncpu))
    with tempfile.TemporaryDirectory() as serial_store, \
            tempfile.TemporaryDirectory() as parallel_store, \
            tempfile.TemporaryDirectory() as workers_store:
        serial, serial_s = _timed_sweep(points, 1, serial_store)
        parallel, parallel_s = benchmark.pedantic(
            lambda: _timed_sweep(points, ncpu, parallel_store),
            rounds=1, iterations=1)
        cached, cached_s = _timed_sweep(points, ncpu, parallel_store)
        fleet, fleet_s = _timed_workers_sweep(
            points, max(ncpu, workers), workers_store, workers)

    assert [r.stats.to_json() for r in serial.results] == \
        [r.stats.to_json() for r in parallel.results] == \
        [r.stats.to_json() for r in cached.results] == \
        [r.stats.to_json() for r in fleet.results]
    assert cached.counters["emulations"] == 0
    assert cached.counters["simulations"] == 0

    lines = [
        f"sweep grid: {len(points)} points "
        f"({len(workloads)} workloads x 3 variants)",
        f"before (per-entry trace, jobs=1): "
        f"{BASELINE['serial_seconds']:8.2f} s",
        f"jobs=1          : {serial_s:8.2f} s "
        f"({serial.counters['emulations']} emulations, "
        f"{serial.counters['simulations']} simulations)",
        f"jobs={ncpu:<2d} (cold)  : {parallel_s:8.2f} s   "
        f"speedup {serial_s / parallel_s:.2f}x",
        f"jobs={ncpu:<2d} (warm)  : {cached_s:8.2f} s   "
        f"speedup {serial_s / cached_s:.2f}x "
        f"({cached.counters['stats_cache_hits']} store hits)",
        f"workers={workers} (TCP): {fleet_s:8.2f} s   "
        f"speedup {serial_s / fleet_s:.2f}x "
        f"(socket leases, content-hash replication)",
    ]
    publish("sweep_parallel", "\n".join(lines), smoke, data={
        "points": len(points), "workloads": list(workloads),
        "jobs": ncpu,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "warm_seconds": round(cached_s, 4),
        "workers": workers,
        "workers_seconds": round(fleet_s, 4),
        "speedup_cold": round(serial_s / parallel_s, 4),
        "speedup_warm": round(serial_s / cached_s, 4),
        "speedup_workers": round(serial_s / fleet_s, 4),
        "before_packed_core": BASELINE,
        "speedup_over_baseline": round(
            BASELINE["serial_seconds"] / serial_s, 4),
        "serial_counters": dict(serial.counters),
        "warm_counters": dict(cached.counters),
    })
