"""Determinism: jobs=1 vs jobs=N must produce byte-identical ledgers.

The engine's contract is that parallelism is *only* a scheduling
concern: a sweep or search fanned across worker processes must emit
exactly the results of the serial run.  These tests pin that at the
strictest level available — the canonical ``ledger_json()`` forms are
compared as byte strings — for flat sweeps, segmented sweeps, and
design-space searches, over synthetic workloads (whose generation is
itself seeded and process-independent).
"""

import pytest

from repro.engine.campaign import Campaign
from repro.engine.pool import run_sweep
from repro.engine.search import SearchSpace, run_search
from repro.experiments import runner

WORKLOADS = ["synth:ilp@seed=0", "synth:mixed@seed=1"]
AXES = [("optimizer.enabled", [False, True])]


@pytest.fixture(autouse=True)
def _clean_runner_state():
    runner.clear_caches(detach_store=True)
    yield
    runner.clear_caches(detach_store=True)


def _campaign() -> Campaign:
    return Campaign.from_axes(workloads=WORKLOADS, axes=AXES)


class TestSweepDeterminism:
    def test_serial_and_parallel_ledgers_are_byte_identical(self):
        points = _campaign().points()
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=4)
        assert serial.ledger_json() == parallel.ledger_json()

    def test_rerun_is_byte_identical(self):
        points = _campaign().points()
        assert run_sweep(points, jobs=1).ledger_json() \
            == run_sweep(points, jobs=1).ledger_json()

    def test_store_warmth_does_not_change_the_ledger(self, tmp_path):
        points = _campaign().points()
        cold = run_sweep(points, jobs=1, store_dir=tmp_path)
        warm = run_sweep(points, jobs=4, store_dir=tmp_path)
        assert warm.counters["simulations"] == 0
        assert cold.ledger_json() == warm.ledger_json()

    def test_ledger_strips_volatile_fields(self):
        points = _campaign().points()
        result = run_sweep(points, jobs=1)
        ledger = result.ledger_json()
        assert "elapsed" not in ledger
        assert "from_cache" not in ledger
        assert "counters" not in ledger


class TestSegmentedDeterminism:
    def test_serial_and_parallel_segmented_ledgers_match(self, tmp_path):
        points = _campaign().points()
        serial = run_sweep(points, jobs=1,
                           store_dir=tmp_path / "serial",
                           segment_insns=2000)
        parallel = run_sweep(points, jobs=4,
                             store_dir=tmp_path / "parallel",
                             segment_insns=2000)
        assert serial.ledger_json() == parallel.ledger_json()

    def test_segmented_merge_counters_match_flat_run(self, tmp_path):
        from repro.uarch.stats import EXACT_MERGE_FIELDS
        points = _campaign().points()
        flat = run_sweep(points, jobs=1)
        segmented = run_sweep(points, jobs=1, store_dir=tmp_path,
                              segment_insns=2000)
        for flat_result, seg_result in zip(flat.results,
                                           segmented.results):
            for name in EXACT_MERGE_FIELDS:
                assert getattr(flat_result.stats, name) \
                    == getattr(seg_result.stats, name), \
                    (flat_result.point.label, name)


class TestSegmentPolicyDeterminism:
    def test_deprecated_spelling_matches_policy_object(self, tmp_path):
        from repro.engine.segments import SegmentPolicy
        points = _campaign().points()
        shim = run_sweep(points, jobs=1, store_dir=tmp_path / "a",
                         segment_insns=2000)
        policy = run_sweep(points, jobs=1, store_dir=tmp_path / "b",
                           segment_policy=SegmentPolicy(
                               segment_insns=2000))
        assert shim.ledger_json() == policy.ledger_json()

    def test_sampled_ledgers_match_across_jobs(self, tmp_path):
        from repro.engine.segments import SegmentPolicy
        policy = SegmentPolicy(mode="sampled", segment_insns=2000,
                               sample_period=3)
        points = _campaign().points()
        serial = run_sweep(points, jobs=1,
                           store_dir=tmp_path / "serial",
                           segment_policy=policy)
        parallel = run_sweep(points, jobs=4,
                             store_dir=tmp_path / "parallel",
                             segment_policy=policy)
        assert serial.results[0].estimated
        assert serial.ledger_json() == parallel.ledger_json()

    def test_adaptive_serial_matches_flat_ledger(self, tmp_path):
        from repro.engine.segments import SegmentPolicy
        points = _campaign().points()
        flat = run_sweep(points, jobs=1)
        adaptive = run_sweep(points, jobs=1, store_dir=tmp_path,
                             segment_policy=SegmentPolicy(
                                 mode="adaptive"))
        # jobs=1 adaptive collapses to one whole-trace segment: not
        # merely deterministic, but byte-identical to the flat run
        assert flat.ledger_json() == adaptive.ledger_json()

    def test_adaptive_rerun_is_byte_identical(self, tmp_path):
        from repro.engine.segments import SegmentPolicy
        points = _campaign().points()
        policy = SegmentPolicy(mode="adaptive")
        first = run_sweep(points, jobs=4, store_dir=tmp_path,
                          segment_policy=policy)
        second = run_sweep(points, jobs=4, store_dir=tmp_path,
                           segment_policy=policy)
        assert first.ledger_json() == second.ledger_json()


class TestSearchDeterminism:
    SPACE = ["optimizer.enabled=false,true", "sched_entries=8,16"]

    def _search(self, jobs: int, strategy: str = "random"):
        return run_search(SearchSpace.from_specs(self.SPACE),
                          workloads=tuple(WORKLOADS),
                          strategy=strategy, budget=3, seed=11,
                          jobs=jobs)

    def test_serial_and_parallel_search_ledgers_match(self):
        assert self._search(jobs=1).ledger_json() \
            == self._search(jobs=4).ledger_json()

    def test_halving_search_is_deterministic_across_jobs(self):
        serial = self._search(jobs=1, strategy="halving")
        parallel = self._search(jobs=4, strategy="halving")
        assert serial.ledger_json() == parallel.ledger_json()
        assert serial.best.candidate == parallel.best.candidate

    def test_scores_are_bitwise_equal_not_just_close(self):
        serial = self._search(jobs=1)
        parallel = self._search(jobs=4)
        for a, b in zip(serial.evaluations, parallel.evaluations):
            assert a.candidate == b.candidate
            assert a.score == b.score  # exact float equality
