"""repro: a reproduction of *Continuous Optimization* (ISCA 2005).

Fahs, Rafacz, Patel, and Lumetta's continuous optimizer is a
table-based hardware dynamic optimizer in the rename stage of an
out-of-order processor: constant propagation, reassociation, redundant
load elimination, and store forwarding applied to every fetched
instruction, with execution results fed back into the optimization
tables.

Package layout:

* :mod:`repro.isa` -- the Alpha-flavoured ISA and assembler
* :mod:`repro.functional` -- architectural emulator / oracle traces
* :mod:`repro.uarch` -- the cycle-level out-of-order timing model
* :mod:`repro.core` -- **the continuous optimizer** (the contribution)
* :mod:`repro.workloads` -- 22 benchmark kernels (paper Table 1)
* :mod:`repro.experiments` -- one module per paper table/figure

Quickstart::

    from repro import quick_compare
    result = quick_compare("mcf")
    print(result["speedup"])
"""

from .functional import run_program
from .isa import assemble
from .uarch import (MachineConfig, OptimizerConfig, default_config,
                    optimized_config, simulate_trace)

__version__ = "1.0.0"


def quick_compare(workload: str, scale: int = 1) -> dict:
    """Run one workload on the baseline and optimized machines.

    Returns a dict with both stats objects and the headline numbers --
    the one-call version of the paper's core experiment.
    """
    from .experiments.runner import run_workload
    from .workloads import get_workload
    workload = get_workload(workload).name  # canonicalize abbreviations
    base_cfg = default_config()
    opt_cfg = base_cfg.with_optimizer()
    base = run_workload(workload, base_cfg, scale)
    opt = run_workload(workload, opt_cfg, scale)
    return {
        "workload": workload,
        "baseline": base,
        "optimized": opt,
        "speedup": base.cycles / opt.cycles,
        "early_executed_pct": 100 * opt.frac_early_executed,
        "mispredicts_recovered_pct": 100 * opt.frac_mispredicts_recovered,
        "addr_generated_pct": 100 * opt.frac_mem_addr_gen,
        "loads_removed_pct": 100 * opt.frac_loads_removed,
    }


__all__ = [
    "assemble", "run_program",
    "MachineConfig", "OptimizerConfig", "default_config",
    "optimized_config", "simulate_trace",
    "quick_compare", "__version__",
]
