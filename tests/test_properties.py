"""Property-based tests (hypothesis) for the ALU and the CP/RA core.

Two invariants carry the paper's whole correctness story and are
checked here over randomized 64-bit inputs instead of hand-picked
examples:

* **EARLY is the ALU** — whenever :func:`repro.core.cpra.transform`
  decides an instruction executes early, the value it produces must
  equal :func:`repro.functional.alu.evaluate_int` on the same inputs
  (the rename-stage ALUs *are* the execution ALUs).
* **REWRITTEN re-evaluates to plain execution** — whenever the
  transform emits a symbolic ``(base << scale) + offset`` form,
  substituting the base register's eventual value must reproduce
  exactly what the out-of-order core would have computed.

Plus the :mod:`repro.functional.alu` algebra the above leans on:
64-bit wrap-around, signed/unsigned reinterpretation, commutativity
as declared per opcode, and truncating division identities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cpra, symbolic
from repro.functional import alu
from repro.isa.opcodes import OP_SPECS, BranchCond, Opcode

int64 = st.integers(min_value=alu.INT64_MIN, max_value=alu.INT64_MAX)
small_shift = st.integers(min_value=0, max_value=3)

#: Binary integer opcodes evaluate_int understands.
_BINARY_OPS = sorted(
    (op for op, spec in OP_SPECS.items()
     if (spec.num_srcs == 2 and spec.has_dst
         and alu.is_int_alu_op(op))
     or op in (Opcode.MUL, Opcode.DIV, Opcode.REM)),
    key=lambda op: op.value)

#: Opcodes the CP/RA transform handles with two sources.
_TRANSFORM_OPS = sorted(
    (Opcode.ADD, Opcode.SUB, Opcode.S4ADD, Opcode.S8ADD, Opcode.SLL,
     Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.BIC,
     Opcode.SRL, Opcode.SRA, Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT,
     Opcode.CMPLE, Opcode.CMPULT, Opcode.CMPULE),
    key=lambda op: op.value)


class TestAluAlgebra:
    @given(value=st.integers())
    def test_to_signed64_is_idempotent_and_in_range(self, value):
        wrapped = alu.to_signed64(value)
        assert alu.INT64_MIN <= wrapped <= alu.INT64_MAX
        assert alu.to_signed64(wrapped) == wrapped
        assert alu.to_unsigned64(wrapped) == value % (1 << 64)

    @given(a=int64, b=int64,
           op=st.sampled_from(_BINARY_OPS))
    def test_results_stay_in_signed64_range(self, a, b, op):
        result = alu.evaluate_int(op, a, b)
        assert alu.INT64_MIN <= result <= alu.INT64_MAX

    @given(a=int64, b=int64,
           op=st.sampled_from([op for op in _BINARY_OPS
                               if OP_SPECS[op].commutative]))
    def test_declared_commutativity_holds(self, a, b, op):
        assert alu.evaluate_int(op, a, b) == alu.evaluate_int(op, b, a)

    @given(a=int64, b=int64)
    def test_sub_inverts_add(self, a, b):
        total = alu.evaluate_int(Opcode.ADD, a, b)
        assert alu.evaluate_int(Opcode.SUB, total, b) == a

    @given(a=int64, b=int64)
    def test_div_rem_reconstruct_dividend(self, a, b):
        quotient = alu.evaluate_int(Opcode.DIV, a, b)
        remainder = alu.evaluate_int(Opcode.REM, a, b)
        if b != 0 and (a, b) != (alu.INT64_MIN, -1):
            assert quotient * b + remainder == a
        else:
            # division by zero and the overflow case are defined as 0
            assert (quotient, remainder) == ((0, 0) if b == 0
                                             else (alu.INT64_MIN, 0))

    @given(a=int64, shift=st.integers(min_value=0, max_value=63))
    def test_scaled_adds_match_shift_plus_add(self, a, shift):
        assert alu.evaluate_int(Opcode.S4ADD, a, 0) \
            == alu.evaluate_int(Opcode.SLL, a, 2)
        assert alu.evaluate_int(Opcode.SRL, a, shift) \
            == alu.to_signed64(alu.to_unsigned64(a) >> shift)

    @given(value=int64)
    def test_branch_conditions_match_comparisons(self, value):
        assert alu.branch_taken(BranchCond.EQ, value) == (value == 0)
        assert alu.branch_taken(BranchCond.NE, value) == (value != 0)
        assert alu.branch_taken(BranchCond.LT, value) == (value < 0)
        assert alu.branch_taken(BranchCond.GE, value) == (value >= 0)
        assert alu.branch_taken(BranchCond.LE, value) == (value <= 0)
        assert alu.branch_taken(BranchCond.GT, value) == (value > 0)
        assert alu.branch_taken(BranchCond.ALWAYS, value)

    @given(value=int64, size=st.sampled_from([1, 2, 4]))
    def test_sign_extend_roundtrips_low_bytes(self, value, size):
        extended = alu.sign_extend(value, size)
        bits = size * 8
        assert -(1 << (bits - 1)) <= extended < (1 << (bits - 1))
        assert extended % (1 << bits) == value % (1 << bits)


class TestEarlyEqualsAlu:
    """EARLY outcomes must carry exactly the ALU-computed value."""

    @given(a=int64, b=int64, op=st.sampled_from(_TRANSFORM_OPS))
    @settings(max_examples=300)
    def test_constant_inputs_fold_to_alu_result(self, a, b, op):
        outcome = cpra.transform(op, [symbolic.const(a),
                                      symbolic.const(b)])
        expected = alu.evaluate_int(op, alu.to_signed64(a),
                                    alu.to_signed64(b))
        if outcome.is_early:
            assert outcome.value == expected
            assert outcome.sym is not None
            assert outcome.sym.is_const
            assert outcome.sym.const_value == expected
        else:
            # Only MUL may decline constant-constant folding: it is a
            # multi-cycle op, early only via power-of-two strength
            # reduction.  Every single-cycle transform op must fold.
            assert outcome.kind is cpra.Kind.PLAIN
            assert op is Opcode.MUL

    @given(value=int64)
    def test_mov_of_constant_is_early_identity(self, value):
        outcome = cpra.transform(Opcode.MOV, [symbolic.const(value)])
        assert outcome.is_early
        assert outcome.value == alu.to_signed64(value)


class TestRewrittenReevaluates:
    """REWRITTEN symbolic forms must re-evaluate to plain execution."""

    @given(base_value=int64, const=int64, preg=st.integers(0, 511),
           scale=small_shift,
           op=st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.S4ADD,
                               Opcode.S8ADD, Opcode.SLL, Opcode.MUL]))
    @settings(max_examples=300)
    def test_symbolic_result_matches_execution(self, base_value, const,
                                               preg, scale, op):
        # Source 0 is a symbolic value (base << scale), source 1 a
        # constant — the shape CP/RA reassociates.
        sym = symbolic.SymVal(base=preg, scale=scale, offset=0)
        resolved0 = sym.evaluate(base_value)
        outcome = cpra.transform(op, [sym, symbolic.const(const)])
        expected = alu.evaluate_int(op, resolved0,
                                    alu.to_signed64(const))
        if outcome.is_rewritten:
            assert outcome.sym is not None
            assert outcome.sym.evaluate(base_value) == expected
        elif outcome.is_early:
            assert outcome.value == expected

    @given(base_value=int64, const=int64, preg=st.integers(0, 511))
    def test_constant_plus_symbolic_commutes(self, base_value, const,
                                             preg):
        sym = symbolic.plain(preg)
        outcome = cpra.transform(Opcode.ADD,
                                 [symbolic.const(const), sym])
        assert outcome.is_rewritten
        assert outcome.sym.evaluate(base_value) \
            == alu.evaluate_int(Opcode.ADD, base_value,
                                alu.to_signed64(const))

    @given(base_value=int64, preg=st.integers(0, 511),
           factor_log2=st.integers(0, 8))
    def test_strength_reduced_multiply_matches(self, base_value, preg,
                                               factor_log2):
        factor = 1 << factor_log2
        outcome = cpra.transform(Opcode.MUL,
                                 [symbolic.plain(preg),
                                  symbolic.const(factor)])
        expected = alu.evaluate_int(Opcode.MUL, base_value, factor)
        if outcome.is_rewritten:
            assert outcome.strength_reduced
            assert outcome.sym.evaluate(base_value) == expected

    @given(base_value=int64, preg=st.integers(0, 511),
           offset=int64, scale=small_shift, extra=int64)
    def test_symval_add_const_algebra(self, base_value, preg, offset,
                                      scale, extra):
        sym = symbolic.SymVal(base=preg, scale=scale,
                              offset=alu.to_signed64(offset))
        bumped = symbolic.add_const(sym, extra)
        assert bumped.evaluate(base_value) == alu.to_signed64(
            sym.evaluate(base_value) + extra)

    @given(base_value=int64, preg=st.integers(0, 511),
           scale=small_shift, amount=small_shift)
    def test_symval_shift_left_algebra(self, base_value, preg, scale,
                                       amount):
        sym = symbolic.SymVal(base=preg, scale=scale, offset=0)
        shifted = symbolic.shift_left(sym, amount)
        if scale + amount > symbolic.MAX_SCALE:
            assert shifted is None
        else:
            assert shifted.evaluate(base_value) == alu.evaluate_int(
                Opcode.SLL, sym.evaluate(base_value), amount)
