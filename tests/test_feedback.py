"""Unit tests for the value-feedback channel."""

import pytest

from repro.core.feedback import ValueFeedbackChannel
from repro.uarch import PhysRegFile


@pytest.fixture
def prf():
    return PhysRegFile(16)


class TestDelay:
    def test_value_arrives_after_delay(self, prf):
        channel = ValueFeedbackChannel(prf, delay=3)
        preg = prf.allocate()
        channel.publish(preg, 42, cycle=10)
        channel.drain(cycle=12)
        assert channel.lookup(preg) is None  # not yet arrived
        channel.drain(cycle=13)
        assert channel.lookup(preg) == 42

    def test_zero_delay_available_same_cycle(self, prf):
        channel = ValueFeedbackChannel(prf, delay=0)
        preg = prf.allocate()
        channel.publish(preg, 7, cycle=5)
        channel.drain(cycle=5)
        assert channel.lookup(preg) == 7

    def test_multiple_values_in_order(self, prf):
        channel = ValueFeedbackChannel(prf, delay=1)
        a = prf.allocate()
        b = prf.allocate()
        channel.publish(a, 1, cycle=1)
        channel.publish(b, 2, cycle=2)
        channel.drain(cycle=2)
        assert channel.lookup(a) == 1
        assert channel.lookup(b) is None
        channel.drain(cycle=3)
        assert channel.lookup(b) == 2


class TestLiveness:
    def test_dead_register_value_dropped(self, prf):
        # "If the delay is too long, the physical register might no
        # longer be referenced ... and therefore of no use." (S6.4)
        channel = ValueFeedbackChannel(prf, delay=5)
        preg = prf.allocate()
        channel.publish(preg, 42, cycle=0)
        prf.release(preg)  # recycled before arrival
        channel.drain(cycle=5)
        assert channel.lookup(preg) is None
        assert channel.values_dropped_dead == 1

    def test_recycled_register_never_reports_stale_value(self):
        prf = PhysRegFile(1)  # forces immediate recycling
        channel = ValueFeedbackChannel(prf, delay=0)
        preg = prf.allocate()
        channel.publish(preg, 42, cycle=0)
        channel.drain(cycle=0)
        assert channel.lookup(preg) == 42
        prf.release(preg)
        reused = prf.allocate()
        assert reused == preg
        assert channel.lookup(preg) is None  # version mismatch

    def test_record_known_immediate(self, prf):
        channel = ValueFeedbackChannel(prf, delay=10)
        preg = prf.allocate()
        channel.record_known(preg, 99)
        assert channel.lookup(preg) == 99

    def test_counters(self, prf):
        channel = ValueFeedbackChannel(prf, delay=0)
        preg = prf.allocate()
        channel.publish(preg, 1, cycle=0)
        channel.drain(cycle=0)
        assert channel.values_fed_back == 1
        assert channel.known_count() == 1
