"""Content-addressed on-disk artifact store for traces and stats.

Artifacts are keyed by a stable SHA-256 of their identity:

* **traces** — ``(kind=trace, format, workload, scale)``.  The oracle
  trace of a workload is configuration-independent, so every machine
  variant in a sweep shares one stored emulation.
* **stats** — ``(kind=stats, format, workload, scale, config)`` where
  ``config`` is :meth:`MachineConfig.canonical_json`.  A timing result
  is valid for exactly one machine configuration.
* **segment-level artifacts** — the segmented engine
  (:mod:`repro.engine.segments`) splits a trace into
  fixed-instruction-count segments and stores, per
  ``(workload, scale, segment_insns)``:

  - ``segment trace`` *i* — the :class:`PackedTrace` slice,
  - ``checkpoint`` *i* — the emulator's architectural state at the
    start of segment *i* (so a killed planning run resumes without
    replaying the prefix),
  - ``segment stats`` *i* ``x config`` — one segment's partial
    :class:`PipelineStats`,
  - a ``manifest`` — segment count and lengths, written only when the
    whole trace has been segmented (its presence means planning is
    complete).

* **search manifests** — the design-space search engine
  (:mod:`repro.engine.search`) keeps a per-search evaluation ledger
  keyed by the search's identity (space + workloads + scales + base
  config + objective), rewritten atomically after every completed
  candidate evaluation so a killed ``repro search`` resumes without
  re-scoring anything.

Traces and checkpoints are pickled (they contain
:class:`Instruction` objects / memory images); stats and manifests are
canonical JSON.  All writes are atomic (temp file + ``os.replace``) so
concurrent workers sharing one store can never observe a torn
artifact — at worst two workers race to write the same content to the
same key, which is benign.

Every successful load touches the artifact's mtime, giving the
least-recently-used eviction order that :meth:`ArtifactStore.gc`
uses to enforce a size cap.

``FORMAT_VERSION`` is baked into every key: changing the trace or
stats schema automatically invalidates stale artifacts instead of
deserializing garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
import time
from pathlib import Path

from ..functional.emulator import Checkpoint, PackedTrace
from ..uarch.config import MachineConfig, canonical_json
from ..uarch.stats import PipelineStats
from .telemetry import TELEMETRY

#: Bump when the trace / PipelineStats schema changes.
#: v2: traces are pickled :class:`PackedTrace` columns instead of
#: ``list[TraceEntry]``.  v1 artifacts simply miss under the new keys
#: and are re-derived (then reclaimed by LRU gc) — no migration step.
FORMAT_VERSION = 2

#: Fixed pickle protocol so identical traces serialize byte-identically
#: regardless of the interpreter's default.
PICKLE_PROTOCOL = 4

#: Writer temp files older than this are presumed orphaned by a killed
#: process and swept during :meth:`ArtifactStore.gc`; younger ones may
#: belong to an in-flight concurrent writer and are left alone.
ORPHAN_AGE_SECONDS = 60.0

#: Subdirectory under a shared store root holding per-tenant
#: namespaces (``<root>/tenants/<tenant>/traces``, ...).  The root
#: store's own artifact directories sit beside it and never mix with
#: tenant artifacts: the root's scans are non-recursive, so a
#: root-level :meth:`ArtifactStore.gc` cannot evict tenant artifacts
#: and a tenant-level one cannot reach outside its namespace.
TENANTS_DIRNAME = "tenants"

#: Tenant names become directory names, so they must be a single safe
#: path component: leading alphanumeric, then alphanumerics, ``_``,
#: ``-``, or ``.`` (``.``/``..``/anything with a separator cannot
#: match).
TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Artifact kinds addressable through the raw-blob replication API
#: (:meth:`ArtifactStore.blob_ids` and friends) — exactly the store's
#: per-kind directories.
BLOB_KINDS = ("traces", "stats", "segments", "checkpoints", "manifests")

#: Every healthy artifact filename is ``<sha256 hex>.pkl|.json``; the
#: blob API rejects anything else, so a remote peer can never write
#: outside the store (path traversal) or plant a non-content-addressed
#: file.
BLOB_NAME_RE = re.compile(r"^[0-9a-f]{64}\.(pkl|json)$")


def validate_tenant_name(tenant: str) -> str:
    """*tenant* if it is a safe store namespace name, else ValueError."""
    if not isinstance(tenant, str) or not TENANT_NAME_RE.match(tenant):
        raise ValueError(
            f"bad tenant name {tenant!r}: expected 1-64 characters "
            f"matching [A-Za-z0-9][A-Za-z0-9_.-]*")
    return tenant


def tenant_store_root(root: str | os.PathLike, tenant: str) -> Path:
    """The store root for one tenant's namespace under a shared root."""
    return Path(root) / TENANTS_DIRNAME / validate_tenant_name(tenant)


def list_tenants(root: str | os.PathLike) -> list[str]:
    """Tenant namespaces that exist under *root* (sorted)."""
    base = Path(root) / TENANTS_DIRNAME
    if not base.is_dir():
        return []
    return sorted(path.name for path in base.iterdir()
                  if path.is_dir() and TENANT_NAME_RE.match(path.name))


def tenant_usage(root: str | os.PathLike) -> dict[str, int]:
    """On-disk bytes per tenant namespace under *root*.

    Backs the service's per-tenant store gauges; a tenant whose
    namespace was created but never written reports 0.
    """
    return {tenant: ArtifactStore.for_tenant(root, tenant).total_bytes()
            for tenant in list_tenants(root)}


def _digest(identity: dict) -> str:
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


def trace_key(workload: str, scale: int) -> str:
    """Stable content key for a workload's oracle trace."""
    return _digest({"kind": "trace", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale})


def trace_info_key(workload: str, scale: int) -> str:
    """Stable content key for a workload's trace metadata.

    A tiny JSON record (currently ``{"instructions": N}``) that lets
    the segmented engine's adaptive sizing learn a trace's length
    without unpickling — or even storing — the trace itself.
    """
    return _digest({"kind": "trace-info", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale})


def stats_key(workload: str, scale: int, config: MachineConfig,
              limit_insns: int | None = None) -> str:
    """Stable content key for one simulation's stats.

    ``limit_insns`` identifies a truncated-trace simulation (the
    search engine's cheap-evaluation budget); it is folded into the
    key only when set, so full-run keys are unchanged.
    """
    identity = {"kind": "stats", "format": FORMAT_VERSION,
                "workload": workload, "scale": scale,
                "config": config.config_dict()}
    if limit_insns is not None:
        identity["limit_insns"] = limit_insns
    return _digest(identity)


def search_manifest_key(identity: dict) -> str:
    """Stable content key for a design-space search's manifest.

    *identity* pins everything that makes two searches share
    evaluations: the space, workloads, scales, base config, and
    objective (see :meth:`repro.engine.search.SearchSpace.identity`).
    The strategy is deliberately absent — a random search and a
    halving search over the same space reuse each other's completed
    evaluations.
    """
    return _digest({"kind": "search-manifest", "format": FORMAT_VERSION,
                    "identity": identity})


def segment_trace_key(workload: str, scale: int, segment_insns: int,
                      index: int) -> str:
    """Stable content key for one trace segment."""
    return _digest({"kind": "segment-trace", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale,
                    "segment_insns": segment_insns, "index": index})


def checkpoint_key(workload: str, scale: int, segment_insns: int,
                   index: int) -> str:
    """Stable content key for the checkpoint starting segment *index*."""
    return _digest({"kind": "checkpoint", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale,
                    "segment_insns": segment_insns, "index": index})


def segment_stats_key(workload: str, scale: int, segment_insns: int,
                      index: int, config: MachineConfig) -> str:
    """Stable content key for one segment's partial stats."""
    return _digest({"kind": "segment-stats", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale,
                    "segment_insns": segment_insns, "index": index,
                    "config": config.config_dict()})


def manifest_key(workload: str, scale: int, segment_insns: int) -> str:
    """Stable content key for a completed segmentation's manifest."""
    return _digest({"kind": "segment-manifest", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale,
                    "segment_insns": segment_insns})


class ArtifactStore:
    """Persists oracle traces and pipeline stats across runs.

    Layout::

        <root>/traces/<sha256>.pkl       pickled PackedTrace columns
        <root>/stats/<sha256>.json       canonical PipelineStats JSON
        <root>/segments/<sha256>.pkl     pickled segment PackedTrace
        <root>/checkpoints/<sha256>.pkl  pickled emulator Checkpoint
        <root>/manifests/<sha256>.json   segmentation manifest JSON

    The store keeps hit/miss counters so callers (the sweep engine,
    the CLI) can report how much work persistence saved.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._traces = self.root / "traces"
        self._stats = self.root / "stats"
        self._segments = self.root / "segments"
        self._checkpoints = self.root / "checkpoints"
        self._manifests = self.root / "manifests"
        for directory in self._directories():
            directory.mkdir(parents=True, exist_ok=True)
        self.trace_hits = 0
        self.trace_misses = 0
        self.stats_hits = 0
        self.stats_misses = 0
        self.segment_trace_hits = 0
        self.segment_trace_misses = 0
        self.segment_stats_hits = 0
        self.segment_stats_misses = 0

    @classmethod
    def for_tenant(cls, root: str | os.PathLike,
                   tenant: str) -> "ArtifactStore":
        """A store scoped to one tenant's namespace under *root*.

        Each tenant gets a fully independent store rooted at
        ``<root>/tenants/<tenant>``: its LRU :meth:`gc` walks only its
        own directories, so one tenant exhausting its byte budget can
        never evict another tenant's artifacts.
        """
        return cls(tenant_store_root(root, tenant))

    def _directories(self) -> tuple[Path, ...]:
        return (self._traces, self._stats, self._segments,
                self._checkpoints, self._manifests)

    @staticmethod
    def _record(kind: str, hit: bool) -> None:
        """Mirror one hit/miss into the process-wide telemetry."""
        TELEMETRY.counter("repro_store_hits_total" if hit
                          else "repro_store_misses_total",
                          kind=kind).inc()

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------

    def load_trace(self, workload: str,
                   scale: int) -> PackedTrace | None:
        """The stored oracle trace, or ``None`` on a miss."""
        path = self._traces / f"{trace_key(workload, scale)}.pkl"
        trace = self._load_pickle(path)
        self._record("trace", trace is not None)
        if trace is None:
            self.trace_misses += 1
            return None
        self.trace_hits += 1
        return trace

    def save_trace(self, workload: str, scale: int,
                   trace: PackedTrace) -> Path:
        """Persist an oracle trace; returns the artifact path."""
        path = self._traces / f"{trace_key(workload, scale)}.pkl"
        payload = pickle.dumps(trace, protocol=PICKLE_PROTOCOL)
        self._atomic_write(path, payload)
        return path

    def has_trace(self, workload: str, scale: int) -> bool:
        """Whether the oracle trace is on disk (no unpickle, no counters)."""
        return (self._traces / f"{trace_key(workload, scale)}.pkl").exists()

    # ------------------------------------------------------------------
    # trace metadata
    # ------------------------------------------------------------------

    def load_trace_info(self, workload: str, scale: int) -> dict | None:
        """Stored trace metadata (``{"instructions": N}``), or ``None``.

        Lives beside the manifests: it is planning metadata, a few
        bytes, and — like a manifest — only ever written after the
        emulation that measured it completed.
        """
        key = trace_info_key(workload, scale)
        text = self._load_text(self._manifests / f"{key}.json")
        return None if text is None else json.loads(text)

    def save_trace_info(self, workload: str, scale: int,
                        info: dict) -> Path:
        """Persist trace metadata; returns the artifact path."""
        key = trace_info_key(workload, scale)
        path = self._manifests / f"{key}.json"
        self._atomic_write(path, canonical_json(info).encode())
        return path

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def load_stats(self, workload: str, scale: int,
                   config: MachineConfig,
                   limit_insns: int | None = None) -> PipelineStats | None:
        """The stored simulation stats, or ``None`` on a miss."""
        key = stats_key(workload, scale, config, limit_insns)
        text = self._load_text(self._stats / f"{key}.json")
        self._record("stats", text is not None)
        if text is None:
            self.stats_misses += 1
            return None
        self.stats_hits += 1
        return PipelineStats.from_json(text)

    def save_stats(self, workload: str, scale: int, config: MachineConfig,
                   stats: PipelineStats,
                   limit_insns: int | None = None) -> Path:
        """Persist simulation stats; returns the artifact path."""
        key = stats_key(workload, scale, config, limit_insns)
        path = self._stats / f"{key}.json"
        self._atomic_write(path, stats.to_json().encode())
        return path

    # ------------------------------------------------------------------
    # segment traces
    # ------------------------------------------------------------------

    def _segment_trace_path(self, workload: str, scale: int,
                            segment_insns: int, index: int) -> Path:
        key = segment_trace_key(workload, scale, segment_insns, index)
        return self._segments / f"{key}.pkl"

    def has_segment_trace(self, workload: str, scale: int,
                          segment_insns: int, index: int) -> bool:
        """Whether segment *index*'s trace is on disk (no counters)."""
        return self._segment_trace_path(workload, scale, segment_insns,
                                        index).exists()

    def load_segment_trace(self, workload: str, scale: int,
                           segment_insns: int,
                           index: int) -> PackedTrace | None:
        """One stored trace segment, or ``None`` on a miss."""
        path = self._segment_trace_path(workload, scale, segment_insns,
                                        index)
        trace = self._load_pickle(path)
        self._record("segment-trace", trace is not None)
        if trace is None:
            self.segment_trace_misses += 1
            return None
        self.segment_trace_hits += 1
        return trace

    def save_segment_trace(self, workload: str, scale: int,
                           segment_insns: int, index: int,
                           trace: PackedTrace) -> Path:
        """Persist one trace segment; returns the artifact path."""
        path = self._segment_trace_path(workload, scale, segment_insns,
                                        index)
        payload = pickle.dumps(trace, protocol=PICKLE_PROTOCOL)
        self._atomic_write(path, payload)
        return path

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def load_checkpoint(self, workload: str, scale: int, segment_insns: int,
                        index: int) -> Checkpoint | None:
        """The emulator state at the start of segment *index*, if stored."""
        key = checkpoint_key(workload, scale, segment_insns, index)
        return self._load_pickle(self._checkpoints / f"{key}.pkl")

    def save_checkpoint(self, workload: str, scale: int, segment_insns: int,
                        index: int, state: Checkpoint) -> Path:
        """Persist an emulator checkpoint; returns the artifact path."""
        key = checkpoint_key(workload, scale, segment_insns, index)
        path = self._checkpoints / f"{key}.pkl"
        self._atomic_write(path, pickle.dumps(state,
                                              protocol=PICKLE_PROTOCOL))
        return path

    # ------------------------------------------------------------------
    # segment stats
    # ------------------------------------------------------------------

    def load_segment_stats(self, workload: str, scale: int,
                           segment_insns: int, index: int,
                           config: MachineConfig) -> PipelineStats | None:
        """One segment's stored partial stats, or ``None`` on a miss."""
        key = segment_stats_key(workload, scale, segment_insns, index,
                                config)
        text = self._load_text(self._stats / f"{key}.json")
        self._record("segment-stats", text is not None)
        if text is None:
            self.segment_stats_misses += 1
            return None
        self.segment_stats_hits += 1
        return PipelineStats.from_json(text)

    def save_segment_stats(self, workload: str, scale: int,
                           segment_insns: int, index: int,
                           config: MachineConfig,
                           stats: PipelineStats) -> Path:
        """Persist one segment's partial stats; returns the path."""
        key = segment_stats_key(workload, scale, segment_insns, index,
                                config)
        path = self._stats / f"{key}.json"
        self._atomic_write(path, stats.to_json().encode())
        return path

    # ------------------------------------------------------------------
    # segmentation manifests
    # ------------------------------------------------------------------

    def load_manifest(self, workload: str, scale: int,
                      segment_insns: int) -> dict | None:
        """A completed segmentation's manifest, or ``None``."""
        key = manifest_key(workload, scale, segment_insns)
        text = self._load_text(self._manifests / f"{key}.json")
        return None if text is None else json.loads(text)

    def save_manifest(self, workload: str, scale: int, segment_insns: int,
                      manifest: dict) -> Path:
        """Persist a segmentation manifest; returns the artifact path."""
        key = manifest_key(workload, scale, segment_insns)
        path = self._manifests / f"{key}.json"
        self._atomic_write(path, canonical_json(manifest).encode())
        return path

    # ------------------------------------------------------------------
    # search manifests
    # ------------------------------------------------------------------

    def load_search_manifest(self, identity: dict) -> dict | None:
        """A design-space search's evaluation ledger, or ``None``.

        The manifest maps evaluation keys (candidate label + budget)
        to recorded scores; the search engine consults it first so a
        killed search resumes where it left off (see
        :mod:`repro.engine.search`).
        """
        key = search_manifest_key(identity)
        text = self._load_text(self._manifests / f"{key}.json")
        return None if text is None else json.loads(text)

    def save_search_manifest(self, identity: dict,
                             manifest: dict) -> Path:
        """Persist a search's evaluation ledger; returns the path.

        Written atomically after **every** completed evaluation, so
        the on-disk manifest always reflects a consistent prefix of
        the search.
        """
        key = search_manifest_key(identity)
        path = self._manifests / f"{key}.json"
        self._atomic_write(path, canonical_json(manifest).encode())
        return path

    # ------------------------------------------------------------------
    # raw blobs: content-hash replication (remote worker sync)
    # ------------------------------------------------------------------

    def _blob_dir(self, kind: str) -> Path:
        if kind not in BLOB_KINDS:
            raise ValueError(f"unknown blob kind {kind!r}; "
                             f"expected one of {list(BLOB_KINDS)}")
        return {"traces": self._traces, "stats": self._stats,
                "segments": self._segments,
                "checkpoints": self._checkpoints,
                "manifests": self._manifests}[kind]

    @staticmethod
    def _blob_name(name: str) -> str:
        if not isinstance(name, str) or not BLOB_NAME_RE.match(name):
            raise ValueError(f"bad blob name {name!r}: expected "
                             f"<sha256 hex>.pkl or .json")
        return name

    def blob_ids(self) -> list[tuple[str, str]]:
        """Every artifact on disk as sorted ``(kind, filename)`` pairs.

        The filename stem *is* the artifact's content hash, so two
        stores replicate by exchanging exactly the ids one has and the
        other lacks — the socket worker backend's push/pull protocol.
        Writer temp files (dot-prefixed) never match and are excluded.
        """
        return sorted(
            (kind, path.name)
            for kind in BLOB_KINDS
            for pattern in ("*.pkl", "*.json")
            for path in self._blob_dir(kind).glob(pattern)
            if BLOB_NAME_RE.match(path.name))

    def has_blob(self, kind: str, name: str) -> bool:
        """Whether one artifact is on disk (no counters, no touch)."""
        return (self._blob_dir(kind) / self._blob_name(name)).exists()

    def read_blob(self, kind: str, name: str) -> bytes | None:
        """One artifact's raw bytes, or ``None`` if absent.

        No deserialization: the bytes travel opaque and land verbatim
        in the peer store, so replication cannot corrupt an artifact
        it does not understand.
        """
        path = self._blob_dir(kind) / self._blob_name(name)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            return None
        TELEMETRY.counter("repro_store_get_bytes_total").inc(len(payload))
        self._touch(path)
        return payload

    def write_blob(self, kind: str, name: str, payload: bytes) -> bool:
        """Write one raw artifact; returns whether it was new.

        An already-present blob is skipped (content-addressed names
        make the write idempotent).  Atomic like every other store
        write, so a concurrent reader never sees a torn artifact.
        """
        path = self._blob_dir(kind) / self._blob_name(name)
        if path.exists():
            return False
        self._atomic_write(path, bytes(payload))
        return True

    # ------------------------------------------------------------------
    # maintenance / reporting
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Hit/miss counters accumulated by this store instance."""
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "stats_hits": self.stats_hits,
            "stats_misses": self.stats_misses,
            "segment_trace_hits": self.segment_trace_hits,
            "segment_trace_misses": self.segment_trace_misses,
            "segment_stats_hits": self.segment_stats_hits,
            "segment_stats_misses": self.segment_stats_misses,
        }

    def artifact_count(self) -> dict[str, int]:
        """How many artifacts of each kind are on disk."""
        return {
            "traces": sum(1 for _ in self._traces.glob("*.pkl")),
            "stats": sum(1 for _ in self._stats.glob("*.json")),
            "segments": sum(1 for _ in self._segments.glob("*.pkl")),
            "checkpoints": sum(1 for _ in self._checkpoints.glob("*.pkl")),
            "manifests": sum(1 for _ in self._manifests.glob("*.json")),
        }

    def _artifact_paths(self) -> list[Path]:
        return [path
                for directory in self._directories()
                for pattern in ("*.pkl", "*.json")
                for path in directory.glob(pattern)]

    def _orphan_paths(self) -> list[Path]:
        """Writer temp files (``.<name>.<rand>``) left on disk.

        :meth:`_atomic_write` names its temp files with a leading dot,
        so a killed writer leaves exactly one dotfile behind; healthy
        artifacts never start with a dot.
        """
        return [path
                for directory in self._directories()
                for path in directory.glob(".*")
                if path.is_file()]

    def orphan_info(self, orphan_age_seconds: float = ORPHAN_AGE_SECONDS
                    ) -> dict[str, int]:
        """Count and total size of writer temp files on disk.

        ``sweepable_files``/``sweepable_bytes`` cover only the orphans
        old enough (``orphan_age_seconds``) that the next :meth:`gc`
        would actually reclaim them — younger temp files may belong to
        an in-flight concurrent writer and are reported but not
        sweepable yet.
        """
        now = time.time()
        files = byte_count = sweepable = sweepable_bytes = 0
        for path in self._orphan_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            files += 1
            byte_count += stat.st_size
            if now - stat.st_mtime >= orphan_age_seconds:
                sweepable += 1
                sweepable_bytes += stat.st_size
        return {"files": files, "bytes": byte_count,
                "sweepable_files": sweepable,
                "sweepable_bytes": sweepable_bytes}

    def total_bytes(self) -> int:
        """Total on-disk size of every file under the store.

        Includes orphaned writer temp files — they consume real disk,
        so a size report that skipped them would under-count exactly
        when a killed run left the most garbage behind.
        """
        total = 0
        for path in self._artifact_paths() + self._orphan_paths():
            try:
                total += path.stat().st_size
            except FileNotFoundError:
                continue  # concurrently evicted
        return total

    def gc(self, max_bytes: int,
           orphan_age_seconds: float = ORPHAN_AGE_SECONDS
           ) -> dict[str, int]:
        """Evict least-recently-used artifacts until <= *max_bytes*.

        "Use" is the artifact's mtime: loads touch it, so recently
        read artifacts survive.  Orphaned writer temp files older than
        *orphan_age_seconds* are swept first (a concurrent in-flight
        writer's temp file is younger than that and survives, but its
        bytes count toward ``remaining_bytes`` so the cap holds for
        actual disk use).  Returns eviction counters::

            {"scanned": ..., "evicted": ..., "freed_bytes": ...,
             "remaining_bytes": ..., "orphans_swept": ...,
             "orphan_bytes_swept": ...}

        ``freed_bytes`` covers both evictions and the orphan sweep;
        ``orphan_bytes_swept`` breaks out the orphan share so
        ``repro store info/gc --json`` consumers can tell reclaimed
        garbage from evicted artifacts.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        report = {"scanned": 0, "evicted": 0, "freed_bytes": 0,
                  "remaining_bytes": 0, "orphans_swept": 0,
                  "orphan_bytes_swept": 0}
        now = time.time()
        kept_orphan_bytes = 0
        for path in self._orphan_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            if now - stat.st_mtime < orphan_age_seconds:
                # possibly an in-flight writer; keep — but its bytes
                # still occupy disk, so they count against the budget
                kept_orphan_bytes += stat.st_size
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            report["orphans_swept"] += 1
            report["orphan_bytes_swept"] += stat.st_size
            report["freed_bytes"] += stat.st_size
        entries = []
        total = kept_orphan_bytes
        for path in self._artifact_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda item: item[0])
        report["scanned"] = len(entries)
        report["remaining_bytes"] = total
        for _, size, path in entries:
            if report["remaining_bytes"] <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            report["evicted"] += 1
            report["freed_bytes"] += size
            report["remaining_bytes"] -= size
        TELEMETRY.counter("repro_store_gc_runs_total").inc()
        TELEMETRY.counter("repro_store_gc_evicted_total").inc(
            report["evicted"])
        TELEMETRY.counter("repro_store_gc_orphans_swept_total").inc(
            report["orphans_swept"])
        TELEMETRY.counter("repro_store_gc_freed_bytes_total").inc(
            report["freed_bytes"])
        return report

    def clear(self) -> None:
        """Delete every stored artifact (keeps the directories).

        Orphaned writer temp files go too — a caller emptying the
        store is not racing its own in-flight writer, and "clear"
        leaving bytes behind would contradict ``total_bytes()``.
        ``missing_ok``: a concurrent GC (another process sharing the
        store) may evict a file between our directory scan and the
        unlink — that is a success, not an error.
        """
        for path in self._artifact_paths() + self._orphan_paths():
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # I/O helpers
    # ------------------------------------------------------------------

    def _load_pickle(self, path: Path):
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
                TELEMETRY.counter("repro_store_get_bytes_total").inc(
                    fh.tell())
        except FileNotFoundError:
            return None
        self._touch(path)
        return payload

    def _load_text(self, path: Path) -> str | None:
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        # stats/manifest JSON is ASCII, so len(text) == byte size
        TELEMETRY.counter("repro_store_get_bytes_total").inc(len(text))
        self._touch(path)
        return text

    @staticmethod
    def _touch(path: Path) -> None:
        """Record a use for LRU eviction; losing the race is harmless."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
            TELEMETRY.counter("repro_store_put_bytes_total").inc(
                len(payload))
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
