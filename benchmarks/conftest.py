"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.
Formatted result tables are printed (visible with ``pytest -s``) and
written to ``benchmarks/results/`` so EXPERIMENTS.md can reference
them.  The experiment runner memoizes traces and simulations, so the
baseline runs are shared across figures within one pytest session.

``--smoke`` runs every bench in a tiny-budget mode: one workload per
suite, minimal scales/budgets, and paper-shape assertions skipped
(tiny subsets do not reproduce the paper's aggregate shapes — smoke
mode only proves the perf scripts still *run*).  CI's ``bench-smoke``
job uses it so these scripts cannot silently rot; full-budget runs
stay the default locally::

    PYTHONPATH=src python -m pytest benchmarks -q --smoke
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="tiny-budget mode: 1 workload/suite, shape asserts off "
             "(used by CI's bench-smoke job)")


@pytest.fixture
def smoke(request) -> bool:
    """Whether the harness runs in tiny-budget smoke mode."""
    return request.config.getoption("--smoke")


def rows_data(rows) -> list[dict]:
    """Benchmark result rows as JSON-ready dicts.

    The experiment modules return dataclass rows; anything else with
    a ``__dict__`` (or a plain mapping) serializes as-is.
    """
    out = []
    for row in rows:
        if dataclasses.is_dataclass(row):
            out.append(dataclasses.asdict(row))
        elif isinstance(row, dict):
            out.append(dict(row))
        else:
            out.append(vars(row))
    return out


def publish(name: str, text: str, smoke: bool = False,
            data: dict | list | None = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    Smoke-mode outputs land in ``<name>.smoke.txt`` so tiny-budget CI
    runs never clobber the committed full-budget tables.

    With *data*, the same result is also written machine-readably to
    ``BENCH_<name>[.smoke].json`` — so dashboards and regression
    scripts consume benchmarks without scraping the human tables.
    """
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = ".smoke" if smoke else ""
    (RESULTS_DIR / f"{name}{suffix}.txt").write_text(text + "\n")
    if data is not None:
        path = RESULTS_DIR / f"BENCH_{name}{suffix}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True,
                                   default=str) + "\n")
