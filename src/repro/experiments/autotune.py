"""Auto-tune: recover Figure 10's best-known config by search.

Figure 10 hand-sweeps the optimizer's intra-bundle dependence depths
and finds mediabench's best configuration at ``add_depth=3`` (chained
memory queries add nothing).  This experiment points the design-space
search engine (:mod:`repro.engine.search`) at exactly that knob space
— ``optimizer.add_depth`` x ``optimizer.mem_depth`` on the optimized
machine — and lets a strategy *find* the paper's answer instead of
tabulating it.

``repro autotune`` runs it from the command line; the assertion-style
check (:func:`found_known_best`) is what the benchmark harness and
tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.search import (SearchResult, SearchSpace, format_result,
                             run_search)
from ..uarch.config import optimized_config
from ..workloads import suite_workloads

#: The space Figure 10 samples by hand.
DIM_SPECS = ("optimizer.add_depth=0..3", "optimizer.mem_depth=0..1")

#: The paper's best-known mediabench setting: depth-3 addition
#: chaining (Figure 10's headline bar).  ``mem_depth`` is left out on
#: purpose — the paper's finding is that it does not matter.
KNOWN_BEST = {"optimizer.add_depth": 3}

SUITE = "mediabench"


@dataclass(frozen=True)
class AutotuneReport:
    """The search outcome plus the paper-agreement verdict."""

    result: SearchResult
    known_best: dict
    matches_paper: bool


def found_known_best(result: SearchResult) -> bool:
    """Whether the search's winner agrees with the paper's Figure 10."""
    assignment = dict(result.best.candidate.assignment)
    return all(assignment.get(path) == value
               for path, value in KNOWN_BEST.items())


def run(scale: int = 1, workloads_per_suite: int | None = 2,
        jobs: int | None = None, strategy: str = "halving",
        budget: int | None = None, seed: int = 0,
        store_dir=None, progress=None) -> AutotuneReport:
    """Search the Figure 10 knob space on mediabench workloads.

    ``workloads_per_suite`` bounds the evaluated mediabench subset
    exactly like the sensitivity figures' ``--per-suite`` (default 2,
    the benchmark harness setting; ``None`` uses the whole suite).
    """
    names = [w.name for w in suite_workloads(SUITE)]
    if workloads_per_suite is not None:
        names = names[:workloads_per_suite]
    space = SearchSpace.from_specs(list(DIM_SPECS))
    result = run_search(space, workloads=tuple(names), scales=(scale,),
                        base=optimized_config(), strategy=strategy,
                        budget=budget, seed=seed, jobs=jobs,
                        store_dir=store_dir, progress=progress)
    return AutotuneReport(result=result, known_best=dict(KNOWN_BEST),
                          matches_paper=found_known_best(result))


def format(report: AutotuneReport) -> str:
    """Render the autotune outcome with the paper verdict."""
    verdict = ("agrees with the paper's Figure 10 best"
               if report.matches_paper else
               "DISAGREES with the paper's Figure 10 best")
    known = ",".join(f"{p}={v}" for p, v in report.known_best.items())
    return "\n".join([
        "Autotune: search for Figure 10's best mediabench config",
        format_result(report.result),
        "",
        f"known best: {known}",
        f"verdict   : {verdict}",
    ])
