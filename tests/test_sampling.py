"""Property tests for sampled segmented simulation.

The sampled mode's contract is statistical, so it gets a statistical
test: across synthetic workload families and seeds, the extrapolated
IPC/cycle estimates must land within the confidence interval the
engine itself reports (plus a small cushion — the interval is a 95%
one, so nominal misses exist by construction and a hard bracketing
assertion would be wrong).  Hypothesis drives the (family, seed,
segment size, period) space; ``derandomize`` keeps CI deterministic.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.campaign import Campaign
from repro.engine.segments import SegmentPolicy, run_segmented_sweep
from repro.workloads.synth import FAMILIES

#: Beyond the reported CI, allow this much relative slack: the CI is
#: 95% two-sided, so ~1 in 20 (family, seed) draws legitimately lands
#: outside it; phase-aligned synthetic loops are the worst case.
CUSHION = 0.05

_exact_cache: dict = {}


def _exact_segmented_stats(workload: str, segment_insns: int,
                           tmp_path):
    """The exact (every-segment) run sampling is estimating.

    Segmented cycle counts legitimately differ from a monolithic run
    (per-segment cold start + drain), so the bracketing target is the
    fixed-mode segmented run at the same segment size — exactly the
    total the extrapolation is an estimate of.
    """
    key = (workload, segment_insns)
    stats = _exact_cache.get(key)
    if stats is None:
        result = _sampled_result(
            workload, SegmentPolicy(segment_insns=segment_insns),
            tmp_path)
        assert not result.estimated
        stats = result.stats
        _exact_cache[key] = stats
    return stats


def _sampled_result(workload, policy, tmp_path):
    points = Campaign.from_axes(workloads=[workload],
                                scales=[1]).points()
    sweep = run_segmented_sweep(points, policy, jobs=1,
                                store_dir=tmp_path)
    return sweep.results[0]


class TestSampledEstimates:
    @settings(max_examples=25, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(family=st.sampled_from(sorted(FAMILIES)),
           seed=st.integers(min_value=0, max_value=5),
           period=st.sampled_from([2, 3, 4]),
           segment_insns=st.sampled_from([1000, 2000]))
    def test_estimate_within_reported_bounds(self, family, seed, period,
                                             segment_insns, tmp_path):
        workload = f"synth:{family}@seed={seed}"
        exact = _exact_segmented_stats(workload, segment_insns,
                                       tmp_path)
        result = _sampled_result(
            workload,
            SegmentPolicy(mode="sampled", segment_insns=segment_insns,
                          sample_period=period),
            tmp_path)
        # retirement counts come from emulation over the whole trace
        # and must be exact regardless of what was simulated
        assert result.stats.retired == exact.retired
        if not result.estimated:
            # trace short enough that every segment was sampled: the
            # run degrades to exact and must say so
            assert result.stats.cycles == exact.cycles
            return
        bounds = result.error_bounds
        true_error = abs(result.stats.cycles - exact.cycles)
        allowed = max(bounds["half_width"]["cycles"],
                      CUSHION * exact.cycles)
        assert true_error <= allowed, (
            f"{workload} p={period} seg={segment_insns}: estimated "
            f"{result.stats.cycles} vs exact {exact.cycles} cycles "
            f"(error {true_error}, reported half-width "
            f"{bounds['half_width']['cycles']})")
        # the headline relative_error must describe the same interval
        assert bounds["relative_error"] == pytest.approx(
            bounds["half_width"]["cycles"] / result.stats.cycles,
            abs=1e-6)

    def test_coverage_improves_with_period(self, tmp_path):
        workload = "synth:mixed@seed=0"
        coverages = []
        for period in (4, 2):
            result = _sampled_result(
                workload,
                SegmentPolicy(mode="sampled", segment_insns=1000,
                              sample_period=period),
                tmp_path / str(period))
            assert result.estimated
            coverages.append(result.error_bounds["coverage"])
        assert coverages[1] > coverages[0]
