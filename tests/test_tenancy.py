"""Tests for multi-tenant serving: auth, quotas, rates, store isolation.

The acceptance bar (ISSUE 9): with no tokens configured nothing
changes (test_service.py's byte-identical ledgers keep passing
untouched); with tokens, unauthenticated requests get 401 with
``WWW-Authenticate``, cross-tenant access gets 403, quota/rate
exhaustion gets 429 with ``Retry-After``, tenants see only their own
jobs, and one tenant's store budget can never evict another tenant's
artifacts.
"""

import asyncio
import http.client
import threading
import time

import pytest

from repro.engine.service import (JobManager, ServiceError,
                                  ServiceServer, TenantLimits,
                                  TenantState, parse_auth_tokens,
                                  request_json, watch_job)
from repro.engine.store import (ArtifactStore, list_tenants,
                                tenant_store_root, tenant_usage,
                                validate_tenant_name)

FAST_SPEC = {"kind": "sweep", "workloads": ["mcf"]}
#: Long enough that quota tests can observe an *active* job.
LONG_SPEC = {"kind": "fuzz", "seeds": [0, 40], "small": True,
             "families": ["ilp"]}

TOKENS = {"alice-token": "alice", "bob-token": "bob"}


# ----------------------------------------------------------------------
# unit: token parsing, limits, the token bucket, tenant names
# ----------------------------------------------------------------------


class TestParseAuthTokens:
    def test_tenant_token_pairs_and_bare_tokens(self):
        assert parse_auth_tokens(["alice:s3cret", "opaque"]) == \
            {"s3cret": "alice", "opaque": "default"}

    def test_one_tenant_may_rotate_several_tokens(self):
        tokens = parse_auth_tokens(["a:old", "a:new"])
        assert tokens == {"old": "a", "new": "a"}

    def test_duplicate_token_across_tenants_rejected(self):
        with pytest.raises(ValueError, match="already belongs"):
            parse_auth_tokens(["a:shared", "b:shared"])

    def test_blank_specs_are_skipped(self):
        # the env-var path splits on commas; empty fragments are noise
        assert parse_auth_tokens(["", "  ", "a:t"]) == {"t": "a"}

    def test_whitespace_or_empty_tokens_rejected(self):
        with pytest.raises(ValueError, match="no whitespace"):
            parse_auth_tokens(["a:"])
        with pytest.raises(ValueError, match="no whitespace"):
            parse_auth_tokens(["a:to ken"])

    def test_bad_tenant_names_rejected(self):
        for name in ("../evil", "a/b", ".hidden", "-dash", "x" * 65):
            with pytest.raises(ValueError, match="bad tenant name"):
                parse_auth_tokens([f"{name}:token"])


class TestTenantLimitsAndState:
    def test_limit_validation(self):
        with pytest.raises(ValueError, match="max_active_jobs"):
            TenantLimits(max_active_jobs=0)
        with pytest.raises(ValueError, match="burst"):
            TenantLimits(burst=0)
        with pytest.raises(ValueError, match="max_store_bytes"):
            TenantLimits(max_store_bytes=-1)

    def test_token_bucket_burst_then_refill(self):
        state = TenantState("t", TenantLimits(rate_per_second=1.0,
                                              burst=2))
        now = state.refilled_at
        assert state.take(now) == 0.0
        assert state.take(now) == 0.0
        wait = state.take(now)  # bucket empty
        assert wait == pytest.approx(1.0)
        # one second later one whole token has refilled
        assert state.take(now + 1.0) == 0.0

    def test_zero_rate_disables_rate_limiting(self):
        state = TenantState("t", TenantLimits(rate_per_second=0.0,
                                              burst=1))
        now = state.refilled_at
        assert all(state.take(now) == 0.0 for _ in range(50))


class TestTenantNames:
    def test_safe_names_pass_through(self):
        for name in ("a", "team-1", "a.b_c", "X" * 64):
            assert validate_tenant_name(name) == name

    def test_traversal_shaped_names_cannot_become_paths(self):
        for name in ("..", "../x", "a/b", "", "\\", ".git"):
            with pytest.raises(ValueError):
                validate_tenant_name(name)


# ----------------------------------------------------------------------
# unit: per-tenant store namespaces and gc isolation
# ----------------------------------------------------------------------


class TestTenantStoreIsolation:
    def _fill(self, store: ArtifactStore, workloads) -> None:
        for workload in workloads:
            store.save_trace_info(workload, 1, {"instructions": 123})

    def test_namespaces_are_disjoint_and_listed(self, tmp_path):
        root = ArtifactStore(tmp_path)
        a = ArtifactStore.for_tenant(tmp_path, "a")
        b = ArtifactStore.for_tenant(tmp_path, "b")
        self._fill(root, ["r1"])
        self._fill(a, ["w1", "w2"])
        self._fill(b, ["w1"])
        assert a.root == tenant_store_root(tmp_path, "a")
        assert list_tenants(tmp_path) == ["a", "b"]
        usage = tenant_usage(tmp_path)
        assert usage["a"] > 0 and usage["b"] > 0
        # the root's own scan never descends into tenants/
        assert root.artifact_count()["manifests"] == 1

    def test_tenant_gc_cannot_touch_other_namespaces(self, tmp_path):
        root = ArtifactStore(tmp_path)
        a = ArtifactStore.for_tenant(tmp_path, "a")
        b = ArtifactStore.for_tenant(tmp_path, "b")
        self._fill(root, ["r1"])
        self._fill(a, ["w1", "w2", "w3"])
        self._fill(b, ["w1", "w2"])
        before_b, before_root = b.total_bytes(), root.total_bytes()
        report = a.gc(0)
        assert report["evicted"] == 3
        assert a.total_bytes() == 0
        assert b.total_bytes() == before_b
        assert root.total_bytes() == before_root

    def test_root_gc_cannot_touch_tenant_namespaces(self, tmp_path):
        root = ArtifactStore(tmp_path)
        a = ArtifactStore.for_tenant(tmp_path, "a")
        self._fill(root, ["r1", "r2"])
        self._fill(a, ["w1"])
        before_a = a.total_bytes()
        report = root.gc(0)
        assert report["evicted"] == 2
        assert root.total_bytes() == 0
        assert a.total_bytes() == before_a


class TestManagerStoreBudget:
    def test_budget_gc_runs_after_each_finished_job(self, tmp_path):
        from repro.engine.telemetry import TELEMETRY
        TELEMETRY.reset()

        async def scenario():
            manager = JobManager(
                store_dir=str(tmp_path), jobs=1,
                tenant_limits=TenantLimits(max_store_bytes=0))
            try:
                job = await manager.submit(dict(FAST_SPEC), tenant="a")
                await manager.wait(job.id)
                return job.status
            finally:
                await manager.close()

        assert asyncio.run(scenario()) == "finished"
        # the sweep stored artifacts, then the 0-byte budget evicted
        # every one of them from the tenant's namespace
        assert ArtifactStore.for_tenant(tmp_path, "a").total_bytes() == 0
        snapshot = TELEMETRY.snapshot()
        evictions = snapshot["counters"][
            "repro_tenant_store_evictions_total"]['tenant="a"']
        assert evictions >= 1

    def test_anonymous_jobs_skip_the_budget(self, tmp_path):
        async def scenario():
            manager = JobManager(
                store_dir=str(tmp_path), jobs=1,
                tenant_limits=TenantLimits(max_store_bytes=0))
            try:
                job = await manager.submit(dict(FAST_SPEC))
                await manager.wait(job.id)
                return job.status
            finally:
                await manager.close()

        assert asyncio.run(scenario()) == "finished"
        # anonymous work lands in the root store, which has no budget
        assert ArtifactStore(tmp_path).total_bytes() > 0


# ----------------------------------------------------------------------
# HTTP: 401 / 403 / 429, invisibility, headers
# ----------------------------------------------------------------------


class AuthServiceThread:
    """A token-protected JobManager + ServiceServer on its own loop."""

    def __init__(self, store_dir, auth_tokens=None, tenant_limits=None):
        self._ready = threading.Event()
        self._args = (str(store_dir),
                      dict(TOKENS if auth_tokens is None
                           else auth_tokens), tenant_limits)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "service did not start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        store_dir, tokens, limits = self._args
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.manager = JobManager(store_dir=store_dir, jobs=1,
                                  tenant_limits=limits)
        server = ServiceServer(self.manager, host="127.0.0.1", port=0,
                               auth_tokens=tokens)
        self.port = await server.start()
        self.url = f"http://127.0.0.1:{self.port}"
        self._ready.set()
        await self._stop.wait()
        await server.stop()
        await self.manager.close()

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def raw(self, method, path, token=None, body=None):
        """One raw request; returns (status, headers, body_text)."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=60)
        try:
            headers = {}
            if token:
                headers["Authorization"] = f"Bearer {token}"
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return (response.status, dict(response.getheaders()),
                    response.read().decode())
        finally:
            conn.close()


@pytest.fixture
def auth_service(tmp_path):
    from repro.engine.telemetry import TELEMETRY
    TELEMETRY.reset()
    thread = AuthServiceThread(tmp_path / "store")
    yield thread
    thread.stop()


class TestAuth:
    def test_missing_token_is_401_with_www_authenticate(
            self, auth_service):
        for method, path in (("GET", "/jobs"), ("POST", "/jobs"),
                             ("DELETE", "/jobs/j1"),
                             ("GET", "/jobs/j1/events")):
            status, headers, body = auth_service.raw(method, path)
            assert status == 401, (method, path, body)
            assert headers["WWW-Authenticate"] == \
                'Bearer realm="repro"'
            assert "bearer token" in body

    def test_wrong_or_malformed_credentials_are_401(self,
                                                    auth_service):
        assert auth_service.raw("GET", "/jobs",
                                token="nope")[0] == 401
        conn = http.client.HTTPConnection("127.0.0.1",
                                          auth_service.port,
                                          timeout=30)
        try:
            # right token, wrong scheme: Basic is not Bearer
            conn.request("GET", "/jobs", headers={
                "Authorization": "Basic alice-token"})
            assert conn.getresponse().status == 401
        finally:
            conn.close()

    def test_metrics_stays_open_and_counts_rejections(self,
                                                      auth_service):
        assert auth_service.raw("GET", "/jobs")[0] == 401
        status, _, text = auth_service.raw("GET", "/metrics")
        assert status == 200
        assert 'repro_requests_rejected_total{reason="auth"} 1' in text

    def test_authenticated_submit_carries_tenant_and_timestamps(
            self, auth_service):
        created = request_json(auth_service.url, "POST", "/jobs",
                               dict(FAST_SPEC), token="alice-token")
        assert created["tenant"] == "alice"
        # the ISO-8601 wall-clock satellite: parseable, UTC-suffixed
        from datetime import datetime
        assert created["submitted"].endswith("Z")
        datetime.fromisoformat(created["submitted"])
        events = []
        last = watch_job(auth_service.url, created["id"],
                         events.append, token="alice-token")
        assert last.kind == "job-finished"
        assert last.result["submitted"] == created["submitted"]
        datetime.fromisoformat(last.result["started"])
        # but the ledger stays volatile-field-free
        assert "submitted" not in last.result["ledger"]

    def test_tenants_see_only_their_own_jobs(self, auth_service):
        mine = request_json(auth_service.url, "POST", "/jobs",
                            dict(FAST_SPEC), token="alice-token")
        theirs = request_json(auth_service.url, "POST", "/jobs",
                              dict(FAST_SPEC), token="bob-token")
        alice = request_json(auth_service.url, "GET", "/jobs",
                             token="alice-token")["jobs"]
        bob = request_json(auth_service.url, "GET", "/jobs",
                           token="bob-token")["jobs"]
        assert [job["id"] for job in alice] == [mine["id"]]
        assert [job["id"] for job in bob] == [theirs["id"]]

    def test_cross_tenant_access_is_403(self, auth_service):
        created = request_json(auth_service.url, "POST", "/jobs",
                               dict(LONG_SPEC), token="alice-token")
        for method, path in (
                ("DELETE", f"/jobs/{created['id']}"),
                ("GET", f"/jobs/{created['id']}/events")):
            status, _, body = auth_service.raw(method, path,
                                               token="bob-token")
            assert status == 403, (method, path, body)
            assert "another tenant" in body
        # the owner can still cancel it
        gone = request_json(auth_service.url, "DELETE",
                            f"/jobs/{created['id']}",
                            token="alice-token")
        assert gone["id"] == created["id"]

    def test_per_tenant_gauges_on_metrics(self, auth_service):
        created = request_json(auth_service.url, "POST", "/jobs",
                               dict(FAST_SPEC), token="alice-token")
        watch_job(auth_service.url, created["id"], lambda e: None,
                  token="alice-token")
        _, _, text = auth_service.raw("GET", "/metrics")
        assert 'repro_tenant_active_jobs{tenant="alice"}' in text
        assert 'repro_tenant_rate_tokens{tenant="alice"}' in text
        assert 'repro_tenant_store_bytes{tenant="alice"}' in text


class TestQuotaAndRate:
    def test_quota_429_with_retry_after_and_isolation(self, tmp_path):
        from repro.engine.telemetry import TELEMETRY
        TELEMETRY.reset()
        service = AuthServiceThread(
            tmp_path / "store",
            tenant_limits=TenantLimits(max_active_jobs=1,
                                       rate_per_second=0.0))
        try:
            running = request_json(service.url, "POST", "/jobs",
                                   dict(LONG_SPEC),
                                   token="alice-token")
            status, headers, body = service.raw(
                "POST", "/jobs", token="alice-token",
                body='{"kind": "fuzz", "seeds": [0, 2], '
                     '"small": true}')
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "quota" in body
            # one tenant at its quota takes nothing from another
            other = request_json(service.url, "POST", "/jobs",
                                 dict(FAST_SPEC), token="bob-token")
            assert other["tenant"] == "bob"
            _, _, text = service.raw("GET", "/metrics")
            assert 'repro_requests_rejected_total' \
                '{reason="quota"} 1' in text
            request_json(service.url, "DELETE",
                         f"/jobs/{running['id']}",
                         token="alice-token")
        finally:
            service.stop()

    def test_rate_429_distinct_from_quota_and_capacity(self, tmp_path):
        service = AuthServiceThread(
            tmp_path / "store",
            tenant_limits=TenantLimits(max_active_jobs=100,
                                       rate_per_second=0.5, burst=1))
        try:
            request_json(service.url, "POST", "/jobs",
                         dict(FAST_SPEC), token="alice-token")
            with pytest.raises(ServiceError) as err:
                request_json(service.url, "POST", "/jobs",
                             dict(FAST_SPEC), token="alice-token")
            assert err.value.status == 429
            assert "rate limit" in str(err.value)
            # the client decoded Retry-After off the response headers
            assert err.value.retry_after is not None
            assert err.value.retry_after >= 1.0
        finally:
            service.stop()

    def test_no_tokens_means_no_tenant_limits(self, tmp_path):
        # an open server applies only the global max_active_jobs cap:
        # back-to-back submissions far beyond any tenant burst succeed
        service = AuthServiceThread(
            tmp_path / "store", auth_tokens={},
            tenant_limits=TenantLimits(max_active_jobs=1,
                                       rate_per_second=0.001,
                                       burst=1))
        try:
            for _ in range(3):
                created = request_json(service.url, "POST", "/jobs",
                                       dict(FAST_SPEC))
                assert "tenant" not in created
        finally:
            service.stop()


class TestWatchCliAuth:
    def test_watch_sends_bearer_token(self, tmp_path, capsys):
        from repro.cli import main
        service = AuthServiceThread(tmp_path / "store")
        try:
            created = request_json(service.url, "POST", "/jobs",
                                   dict(FAST_SPEC),
                                   token="alice-token")
            assert main(["watch", created["id"], "--url", service.url,
                         "--token", "alice-token"]) == 0
            assert f"job {created['id']} finished" in \
                capsys.readouterr().err
            # without the token the same watch is a clean exit-2 401
            assert main(["watch", created["id"], "--url",
                         service.url]) == 2
            assert "bearer token" in capsys.readouterr().err
        finally:
            service.stop()
