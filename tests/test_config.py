"""Unit tests for machine/optimizer configuration (paper Table 2)."""

import pytest

from repro.uarch import (CacheConfig, MachineConfig, default_config,
                         optimized_config)


class TestTable2Defaults:
    def test_widths(self):
        config = default_config()
        assert config.fetch_width == 4
        assert config.rename_width == 4
        assert config.retire_width == 6

    def test_window_and_schedulers(self):
        config = default_config()
        assert config.rob_size == 160
        assert config.sched_entries == 8

    def test_functional_units(self):
        config = default_config()
        assert config.n_simple_ialu == 4
        assert config.n_complex_ialu == 1
        assert config.n_fpalu == 2
        assert config.n_agen == 2

    def test_cache_hierarchy(self):
        config = default_config()
        assert config.il1.size_bytes == 64 * 1024
        assert config.il1.assoc == 4
        assert config.dl1.size_bytes == 32 * 1024
        assert config.dl1.line_bytes == 32
        assert config.l2.size_bytes == 1024 * 1024
        assert config.l2.latency == 10
        assert config.memory_latency == 100

    def test_branch_predictor(self):
        config = default_config()
        assert config.gshare_bits == 18
        assert config.btb_entries == 1024

    def test_min_branch_penalty_is_20(self):
        assert default_config().min_branch_penalty() == 20

    def test_optimizer_adds_two_stages(self):
        config = optimized_config()
        assert config.min_branch_penalty() == 22
        assert config.effective_rename_stages == 4

    def test_optimizer_defaults(self):
        opt = optimized_config().optimizer
        assert opt.enabled
        assert opt.mbc_entries == 128
        assert opt.vf_delay == 1
        assert opt.opt_stages == 2
        assert opt.add_depth == 0
        assert opt.mem_depth == 0
        assert opt.verify

    def test_baseline_optimizer_disabled(self):
        assert not default_config().optimizer.enabled


class TestVariants:
    def test_with_optimizer_overrides(self):
        config = default_config().with_optimizer(vf_delay=5, add_depth=3)
        assert config.optimizer.enabled
        assert config.optimizer.vf_delay == 5
        assert config.optimizer.add_depth == 3

    def test_without_optimizer_roundtrip(self):
        config = optimized_config().without_optimizer()
        assert not config.optimizer.enabled
        assert config.effective_rename_stages == config.rename_stages

    def test_fetch_bound_doubles_schedulers(self):
        config = default_config().fetch_bound()
        assert config.sched_entries == 16
        assert config.fetch_width == 4  # unchanged

    def test_execution_bound_widens_frontend(self):
        config = default_config().execution_bound()
        assert config.fetch_width == 8
        assert config.rename_width == 8
        assert config.sched_entries == 8  # unchanged

    def test_configs_hashable_for_caching(self):
        configs = {default_config(), optimized_config(),
                   default_config().fetch_bound()}
        assert len(configs) == 3
        assert default_config() == MachineConfig()

    def test_cache_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=3, line_bytes=32, latency=1)
