"""Two-pass assembler for the repro ISA.

The workload kernels (``repro.workloads``) are written in a small
assembly dialect and assembled into :class:`~repro.isa.program.Program`
objects.  Syntax summary::

    # comment
    .data                       # switch to the data segment
    arr:    .quad 1, 2, 3       # 8-byte values
            .long 7             # 4-byte
            .word 7             # 2-byte
            .byte 1, 2          # 1-byte
            .double 3.5         # IEEE-754 double
            .space 64           # zero-filled block
            .align 8
    .text                       # switch to the text segment
    start:  ldi   r1, 100       # pseudo: mov immediate
            ldi   r2, arr       # labels are immediates
    loop:   ldq   r3, 0(r2)     # load: dst, disp(base)
            add   r4, r4, r3    # dst, src1, src2 (src2 may be imm)
            lda   r2, 8(r2)     # address calculation (an add)
            sub   r1, r1, 1
            bne   r1, loop      # conditional branch: reg vs zero
            jsr   func          # call (links r26)
            halt
    func:   ret                 # indirect jump through r26

Destination-first operand order throughout.  Immediates may be decimal,
hex (``0x``), character (``'a'``), or a label (which resolves to its
address).
"""

from __future__ import annotations

import re
import struct

from .instructions import Imm, Instruction, Reg, Source
from .opcodes import MNEMONIC_TO_OPCODE, Opcode, spec_of
from .program import DATA_BASE, INSTR_BYTES, TEXT_BASE, Program
from .registers import RETURN_ADDR_REG, parse_reg


class AssemblerError(Exception):
    """Raised for any syntax or semantic error in assembly source."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(?P<disp>[^()]*)\((?P<base>[^()]+)\)$")

#: Pseudo-instructions expanded by the assembler.
_PSEUDO_OPS = {"ldi", "neg", "not", "clr"}


def _is_register(token: str) -> bool:
    try:
        parse_reg(token)
        return True
    except ValueError:
        return False


def _parse_int(token: str) -> int:
    token = token.strip()
    if len(token) >= 3 and token[0] == "'" and token[-1] == "'":
        body = token[1:-1]
        if body.startswith("\\"):
            body = {"\\n": "\n", "\\t": "\t", "\\0": "\0",
                    "\\\\": "\\"}.get(body, body[1:])
        if len(body) != 1:
            raise ValueError(f"bad character literal: {token!r}")
        return ord(body)
    return int(token, 0)


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self) -> None:
        self._labels: dict[str, int] = {}
        self._data: dict[int, int] = {}
        self._data_cursor = DATA_BASE
        self._in_data = False
        # (line_no, mnemonic, operand_text) for the second pass
        self._pending: list[tuple[int, str, str]] = []

    # ------------------------------------------------------------------
    # pass 1: layout
    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble *source* text into a :class:`Program`."""
        for line_no, raw in enumerate(source.splitlines(), start=1):
            self._layout_line(raw, line_no)
        instructions = [
            self._build_instruction(line_no, mnemonic, operands, index)
            for index, (line_no, mnemonic, operands)
            in enumerate(self._pending)
        ]
        return Program(instructions=instructions, labels=dict(self._labels),
                       data=dict(self._data))

    def _layout_line(self, raw: str, line_no: int) -> None:
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            label = match.group(1)
            if label in self._labels:
                raise AssemblerError(f"duplicate label {label!r}", line_no)
            self._labels[label] = (
                self._data_cursor if self._in_data else self._next_text_pc())
            line = line[match.end():].strip()
        if not line:
            return
        if line.startswith("."):
            self._directive(line, line_no)
            return
        if self._in_data:
            raise AssemblerError("instruction in .data segment", line_no)
        mnemonic, _, operands = line.partition(" ")
        self._pending.append((line_no, mnemonic.strip().lower(),
                              operands.strip()))

    def _next_text_pc(self) -> int:
        return TEXT_BASE + len(self._pending) * INSTR_BYTES

    def _directive(self, line: str, line_no: int) -> None:
        name, _, rest = line.partition(" ")
        name = name.lower()
        rest = rest.strip()
        if name == ".text":
            self._in_data = False
        elif name == ".data":
            self._in_data = True
        elif name == ".align":
            self._require_data(name, line_no)
            try:
                alignment = _parse_int(rest)
            except ValueError:
                raise AssemblerError(f"bad .align operand {rest!r}", line_no)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblerError(
                    f".align must be a power of two, got {alignment}", line_no)
            remainder = self._data_cursor % alignment
            if remainder:
                self._data_cursor += alignment - remainder
        elif name == ".space":
            self._require_data(name, line_no)
            try:
                count = _parse_int(rest)
            except ValueError:
                raise AssemblerError(f"bad .space operand {rest!r}", line_no)
            if count < 0:
                raise AssemblerError(".space size must be >= 0", line_no)
            for _ in range(count):
                self._data[self._data_cursor] = 0
                self._data_cursor += 1
        elif name in (".quad", ".long", ".word", ".byte"):
            self._require_data(name, line_no)
            size = {".quad": 8, ".long": 4, ".word": 2, ".byte": 1}[name]
            for token in self._split_operands(rest):
                value = self._data_value(token, line_no)
                self._emit_data(value, size)
        elif name == ".double":
            self._require_data(name, line_no)
            for token in self._split_operands(rest):
                try:
                    bits = struct.unpack("<q", struct.pack(
                        "<d", float(token)))[0]
                except ValueError:
                    raise AssemblerError(
                        f"bad .double operand {token!r}", line_no)
                self._emit_data(bits, 8)
        else:
            raise AssemblerError(f"unknown directive {name!r}", line_no)

    def _require_data(self, name: str, line_no: int) -> None:
        if not self._in_data:
            raise AssemblerError(f"{name} outside .data segment", line_no)

    def _data_value(self, token: str, line_no: int) -> int:
        token = token.strip()
        try:
            return _parse_int(token)
        except ValueError:
            pass
        # Data may reference labels defined earlier (e.g. pointer tables).
        if token in self._labels:
            return self._labels[token]
        raise AssemblerError(f"bad data operand {token!r}", line_no)

    def _emit_data(self, value: int, size: int) -> None:
        value &= (1 << (size * 8)) - 1
        for offset in range(size):
            self._data[self._data_cursor + offset] = (
                value >> (offset * 8)) & 0xFF
        self._data_cursor += size

    @staticmethod
    def _split_operands(text: str) -> list[str]:
        """Split an operand list on top-level commas."""
        if not text.strip():
            return []
        parts: list[str] = []
        depth = 0
        current = []
        for char in text:
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            if char == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
            else:
                current.append(char)
        parts.append("".join(current).strip())
        return parts

    # ------------------------------------------------------------------
    # pass 2: instruction construction
    # ------------------------------------------------------------------

    def _build_instruction(self, line_no: int, mnemonic: str,
                           operand_text: str, index: int) -> Instruction:
        pc = TEXT_BASE + index * INSTR_BYTES
        operands = self._split_operands(operand_text)
        text = (mnemonic + (" " + operand_text if operand_text else ""))
        if mnemonic in _PSEUDO_OPS:
            mnemonic, operands = self._expand_pseudo(
                mnemonic, operands, line_no)
        opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
        builder = _BUILDERS.get(opcode, _build_alu)
        try:
            instr = builder(self, opcode, operands, line_no)
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no) from None
        return Instruction(opcode=instr.opcode, dst=instr.dst,
                           srcs=instr.srcs, target=instr.target,
                           disp=instr.disp, pc=pc, text=text)

    def _expand_pseudo(self, mnemonic: str, operands: list[str],
                       line_no: int) -> tuple[str, list[str]]:
        if mnemonic == "ldi":
            # ldi rd, imm   ->   mov rd, imm
            return "mov", operands
        if mnemonic == "neg":
            # neg rd, rs    ->   sub rd, r31, rs
            if len(operands) != 2:
                raise AssemblerError("neg takes 2 operands", line_no)
            return "sub", [operands[0], "r31", operands[1]]
        if mnemonic == "not":
            # not rd, rs    ->   xor rd, rs, -1
            if len(operands) != 2:
                raise AssemblerError("not takes 2 operands", line_no)
            return "xor", [operands[0], operands[1], "-1"]
        if mnemonic == "clr":
            # clr rd        ->   mov rd, 0
            if len(operands) != 1:
                raise AssemblerError("clr takes 1 operand", line_no)
            return "mov", [operands[0], "0"]
        raise AssemblerError(f"unknown pseudo-op {mnemonic!r}", line_no)

    def _source(self, token: str, line_no: int) -> Source:
        token = token.strip()
        if _is_register(token):
            return Reg(parse_reg(token))
        try:
            return Imm(_parse_int(token))
        except ValueError:
            pass
        if token in self._labels:
            return Imm(self._labels[token])
        raise AssemblerError(f"bad operand {token!r}", line_no)

    def _resolve_target(self, token: str, line_no: int) -> int:
        token = token.strip()
        if token in self._labels:
            return self._labels[token]
        try:
            return _parse_int(token)
        except ValueError:
            raise AssemblerError(
                f"undefined branch target {token!r}", line_no) from None

    def _mem_operand(self, token: str, line_no: int) -> tuple[int, int]:
        """Parse ``disp(base)`` into (disp, base register index)."""
        token = token.strip()
        match = _MEM_OPERAND_RE.match(token)
        if not match:
            raise AssemblerError(
                f"bad memory operand {token!r} (want disp(base))", line_no)
        disp_text = match.group("disp").strip()
        if not disp_text:
            disp = 0
        else:
            try:
                disp = _parse_int(disp_text)
            except ValueError:
                if disp_text in self._labels:
                    disp = self._labels[disp_text]
                else:
                    raise AssemblerError(
                        f"bad displacement {disp_text!r}", line_no) from None
        base_text = match.group("base").strip()
        if not _is_register(base_text):
            raise AssemblerError(f"bad base register {base_text!r}", line_no)
        return disp, parse_reg(base_text)


# ----------------------------------------------------------------------
# per-format instruction builders
# ----------------------------------------------------------------------


def _require(count: int, operands: list[str], opcode: Opcode,
             line_no: int) -> None:
    if len(operands) != count:
        raise AssemblerError(
            f"{opcode.value} takes {count} operands, got {len(operands)}",
            line_no)


def _build_alu(asm: Assembler, opcode: Opcode, operands: list[str],
               line_no: int) -> Instruction:
    spec = spec_of(opcode)
    if opcode is Opcode.LDA:
        _require(2, operands, opcode, line_no)
        disp, base = asm._mem_operand(operands[1], line_no)
        return Instruction(opcode=opcode, dst=parse_reg(operands[0]),
                           srcs=(Reg(base),), disp=disp)
    expected = spec.num_srcs + (1 if spec.has_dst else 0)
    _require(expected, operands, opcode, line_no)
    if not spec.has_dst:
        srcs = tuple(asm._source(tok, line_no) for tok in operands)
        return Instruction(opcode=opcode, srcs=srcs)
    dst = parse_reg(operands[0])
    srcs = tuple(asm._source(tok, line_no) for tok in operands[1:])
    return Instruction(opcode=opcode, dst=dst, srcs=srcs)


def _build_load(asm: Assembler, opcode: Opcode, operands: list[str],
                line_no: int) -> Instruction:
    _require(2, operands, opcode, line_no)
    dst = parse_reg(operands[0])
    disp, base = asm._mem_operand(operands[1], line_no)
    return Instruction(opcode=opcode, dst=dst, srcs=(Reg(base),), disp=disp)


def _build_store(asm: Assembler, opcode: Opcode, operands: list[str],
                 line_no: int) -> Instruction:
    _require(2, operands, opcode, line_no)
    data = parse_reg(operands[0])
    disp, base = asm._mem_operand(operands[1], line_no)
    return Instruction(opcode=opcode, srcs=(Reg(data), Reg(base)), disp=disp)


def _build_branch(asm: Assembler, opcode: Opcode, operands: list[str],
                  line_no: int) -> Instruction:
    _require(2, operands, opcode, line_no)
    cond = parse_reg(operands[0])
    target = asm._resolve_target(operands[1], line_no)
    return Instruction(opcode=opcode, srcs=(Reg(cond),), target=target)


def _build_br(asm: Assembler, opcode: Opcode, operands: list[str],
              line_no: int) -> Instruction:
    _require(1, operands, opcode, line_no)
    return Instruction(opcode=opcode,
                       target=asm._resolve_target(operands[0], line_no))


def _build_jsr(asm: Assembler, opcode: Opcode, operands: list[str],
               line_no: int) -> Instruction:
    # jsr label           (links r26)
    # jsr r5, label       (explicit link register)
    if len(operands) == 1:
        link = RETURN_ADDR_REG
        target_tok = operands[0]
    elif len(operands) == 2:
        link = parse_reg(operands[0])
        target_tok = operands[1]
    else:
        raise AssemblerError("jsr takes 1 or 2 operands", line_no)
    return Instruction(opcode=opcode, dst=link,
                       target=asm._resolve_target(target_tok, line_no))


def _build_ret(asm: Assembler, opcode: Opcode, operands: list[str],
               line_no: int) -> Instruction:
    # ret            (through r26)
    # ret r5 / jmp r5
    if opcode is Opcode.RET and not operands:
        reg = RETURN_ADDR_REG
    elif len(operands) == 1:
        reg = parse_reg(operands[0])
    else:
        raise AssemblerError(f"{opcode.value} takes at most 1 operand",
                             line_no)
    return Instruction(opcode=opcode, srcs=(Reg(reg),))


def _build_nullary(asm: Assembler, opcode: Opcode, operands: list[str],
                   line_no: int) -> Instruction:
    _require(0, operands, opcode, line_no)
    return Instruction(opcode=opcode)


_BUILDERS = {
    Opcode.LDB: _build_load, Opcode.LDBU: _build_load,
    Opcode.LDW: _build_load, Opcode.LDWU: _build_load,
    Opcode.LDL: _build_load, Opcode.LDLU: _build_load,
    Opcode.LDQ: _build_load, Opcode.LDF: _build_load,
    Opcode.STB: _build_store, Opcode.STW: _build_store,
    Opcode.STL: _build_store, Opcode.STQ: _build_store,
    Opcode.STF: _build_store,
    Opcode.BEQ: _build_branch, Opcode.BNE: _build_branch,
    Opcode.BLT: _build_branch, Opcode.BGE: _build_branch,
    Opcode.BLE: _build_branch, Opcode.BGT: _build_branch,
    Opcode.FBEQ: _build_branch, Opcode.FBNE: _build_branch,
    Opcode.BR: _build_br,
    Opcode.JSR: _build_jsr,
    Opcode.RET: _build_ret, Opcode.JMP: _build_ret,
    Opcode.NOP: _build_nullary, Opcode.HALT: _build_nullary,
}


def assemble(source: str) -> Program:
    """Assemble *source* and return the resulting :class:`Program`."""
    return Assembler().assemble(source)
