"""Constant propagation and reassociation (CP/RA) transformations.

Pure dataflow logic of the rename-stage optimizer, separated from the
table plumbing for testability.  Given an opcode and its source
expressions (each already resolved against the RAT symbolic state and
the known-value table), :func:`transform` decides, exactly as the
hardware in Section 3.1 does, whether the instruction

* **executes early** — all inputs known and the operation is simple
  (single-cycle), so the rename-stage ALU produces the final value;
* is **rewritten** — the destination gets a new symbolic value of the
  form ``(base << scale) ± offset``, shifting the dependence to an
  earlier producer (reassociation) and/or folding constants; or
* stays **plain** — the result is not encodable symbolically and the
  instruction executes unchanged in the out-of-order core.

Also implemented here: the paper's minor optimizations — move
collapsing, strength reduction of multiplies by powers of two into
shifts, and early branch resolution.
"""

from __future__ import annotations

import enum
from collections import namedtuple

from ..functional import alu
from ..isa.opcodes import BranchCond, Opcode, spec_of
from . import symbolic
from .symbolic import SymVal


class Kind(enum.Enum):
    """Outcome category of one CP/RA attempt."""

    EARLY = "early"  # executed in the optimizer
    REWRITTEN = "rewritten"  # new symbolic value for the destination
    PLAIN = "plain"  # no optimization


_OutcomeFields = namedtuple(
    "_OutcomeFields",
    ("kind", "value", "sym", "uses_alu", "strength_reduced"),
    defaults=(None, None, False, False))


class Outcome(_OutcomeFields):
    """Result of :func:`transform` for one instruction.

    ``value`` is the computed result (EARLY); ``sym`` the destination's
    symbolic value (EARLY/REWRITTEN); ``uses_alu`` marks consumption of
    an optimizer ALU (depth accounting); ``strength_reduced`` a
    multiply converted to a shift.  A named tuple — one is built per
    renamed integer instruction, so construction cost matters.
    """

    __slots__ = ()

    @property
    def is_early(self) -> bool:
        return self[0] is Kind.EARLY

    @property
    def is_rewritten(self) -> bool:
        return self[0] is Kind.REWRITTEN


_PLAIN = Outcome(kind=Kind.PLAIN)

#: Opcodes that fold to a constant when all sources are constant but
#: have no symbolic (base << scale) + offset form otherwise.
_FOLD_ONLY_OPS = frozenset({
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.BIC,
    Opcode.SRL, Opcode.SRA,
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPULT, Opcode.CMPULE,
    Opcode.SEXTB, Opcode.SEXTW, Opcode.SEXTL,
})


def _early(opcode: Opcode, values: list[int],
           strength_reduced: bool = False) -> Outcome:
    result = alu.evaluate_int(opcode, *values)
    return Outcome(kind=Kind.EARLY, value=result, sym=symbolic.const(result),
                   uses_alu=True, strength_reduced=strength_reduced)


def _rewritten(sym: SymVal, strength_reduced: bool = False) -> Outcome:
    return Outcome(kind=Kind.REWRITTEN, sym=sym, uses_alu=True,
                   strength_reduced=strength_reduced)


def transform(opcode: Opcode, srcs: list[SymVal]) -> Outcome:
    """Apply CP/RA to one integer instruction.

    *srcs* holds one resolved :class:`SymVal` per source operand
    (immediates arrive as constants).  ``lda`` must be presented as
    ``ADD`` with the displacement as the second source.
    """
    if opcode is Opcode.MOV:
        src = srcs[0]
        if src.is_const:
            return Outcome(kind=Kind.EARLY, value=src.const_value,
                           sym=src, uses_alu=False)
        # Move collapsing: copy the producer's symbolic value; pure
        # wiring, no optimizer ALU consumed.
        return Outcome(kind=Kind.REWRITTEN, sym=src, uses_alu=False)

    if opcode in (Opcode.ADD, Opcode.SUB):
        return _transform_add_sub(opcode, srcs[0], srcs[1])
    if opcode in (Opcode.S4ADD, Opcode.S8ADD):
        shift = 2 if opcode is Opcode.S4ADD else 3
        return _transform_scaled_add(opcode, srcs[0], srcs[1], shift)
    if opcode is Opcode.SLL:
        return _transform_shift_left(srcs[0], srcs[1])
    if opcode is Opcode.MUL:
        return _transform_multiply(srcs[0], srcs[1])
    if opcode in _FOLD_ONLY_OPS:
        if all(src.is_const for src in srcs):
            return _early(opcode, [src.const_value for src in srcs])
        return _PLAIN
    # div/rem and anything else: never early (multi-cycle), no form.
    return _PLAIN


def _transform_add_sub(opcode: Opcode, a: SymVal, b: SymVal) -> Outcome:
    if a.is_const and b.is_const:
        return _early(opcode, [a.const_value, b.const_value])
    if opcode is Opcode.ADD:
        if b.is_const:
            return _rewritten(symbolic.add_const(a, b.const_value))
        if a.is_const:
            return _rewritten(symbolic.add_const(b, a.const_value))
        return _PLAIN
    # SUB: only sym - const is representable.
    if b.is_const:
        return _rewritten(symbolic.add_const(a, -b.const_value))
    return _PLAIN


def _transform_scaled_add(opcode: Opcode, a: SymVal, b: SymVal,
                          shift: int) -> Outcome:
    if a.is_const and b.is_const:
        return _early(opcode, [a.const_value, b.const_value])
    if a.is_const:
        # (const << k) + sym  ->  sym + (const << k)
        return _rewritten(symbolic.add_const(
            b, alu.to_signed64(a.const_value << shift)))
    if b.is_const:
        shifted = symbolic.shift_left(a, shift)
        if shifted is not None:
            return _rewritten(symbolic.add_const(shifted, b.const_value))
    return _PLAIN


def _transform_shift_left(a: SymVal, b: SymVal) -> Outcome:
    if a.is_const and b.is_const:
        return _early(Opcode.SLL, [a.const_value, b.const_value])
    if b.is_const:
        shifted = symbolic.shift_left(a, b.const_value & 0x3F)
        if shifted is not None:
            return _rewritten(shifted)
    return _PLAIN


def _transform_multiply(a: SymVal, b: SymVal) -> Outcome:
    """Strength reduction: multiply by a power of two becomes a shift."""
    for multiplier, other in ((a, b), (b, a)):
        if not multiplier.is_const:
            continue
        factor = multiplier.const_value
        if factor == 0:
            return Outcome(kind=Kind.EARLY, value=0, sym=symbolic.const(0),
                           uses_alu=True, strength_reduced=True)
        if factor == 1:
            if other.is_const:
                return Outcome(kind=Kind.EARLY, value=other.const_value,
                               sym=other, uses_alu=True,
                               strength_reduced=True)
            return _rewritten(other, strength_reduced=True)
        if factor > 1 and factor & (factor - 1) == 0:
            shift = factor.bit_length() - 1
            if other.is_const:
                return _early(Opcode.SLL, [other.const_value, shift],
                              strength_reduced=True)
            shifted = symbolic.shift_left(other, shift)
            if shifted is not None:
                return _rewritten(shifted, strength_reduced=True)
            # Still executable as a 1-cycle shift even though the
            # result is not symbolically encodable.
            return Outcome(kind=Kind.PLAIN, strength_reduced=True)
    return _PLAIN


def resolve_branch(cond: BranchCond, src: SymVal) -> bool | None:
    """Early branch resolution: the outcome if the source is known."""
    if not src.is_const:
        return None
    return alu.branch_taken(cond, src.const_value)


def branch_implied_value(opcode: Opcode, taken: bool) -> int | None:
    """Value a branch direction implies for its source register.

    ``beq`` taken (or ``bne`` not taken) proves the register is zero
    (Section 2.1's final minor optimization).  Other conditions give
    only inequalities, which the symbolic form cannot encode.
    """
    if opcode is Opcode.BEQ and taken:
        return 0
    if opcode is Opcode.BNE and not taken:
        return 0
    return None


def is_simple(opcode: Opcode) -> bool:
    """True if *opcode* is a single-cycle ('simple') operation."""
    return spec_of(opcode).simple
