"""Process-pool sweep executor with per-worker trace reuse.

:func:`run_sweep_iter` executes a list of :class:`SweepPoint` grid
points **incrementally**, yielding each completed point as soon as its
shard finishes; :func:`run_sweep` is the collect-everything wrapper:

* Points are **sharded by** ``(workload, scale)`` so every machine
  variant of one workload lands on the same worker and shares a single
  functional emulation (the trace is configuration-independent).
* Shards run on a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs > 1``) or inline (``jobs == 1`` — byte-for-byte the same
  code path, so serial and parallel sweeps are trivially
  deterministic).  Completed shards stream back via ``as_completed``;
  a consumer that stops iterating early (``break`` / ``close()``)
  abandons only the not-yet-consumed results — already-submitted
  shards still run to completion so their artifacts land in the store.
* When an :class:`~repro.engine.store.ArtifactStore` directory is
  given, workers consult it before emulating or simulating anything
  and persist whatever they compute, so a re-run of the same grid
  performs **zero** emulations and simulations.
* ``limit_insns`` simulates only each trace's first N instructions —
  the cheap-evaluation budget the search engine's successive-halving
  rungs use (:mod:`repro.engine.search`).  Truncated stats are stored
  under budget-specific keys, never mixed with full-run stats.

Each worker process keeps a module-level trace cache; the pool
initializer resets it so counters are exact per sweep.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterator

from ..uarch.stats import PipelineStats
from ..uarch.pipeline import simulate_trace
from ..workloads import build_trace
from .campaign import SweepPoint
from .store import ArtifactStore

# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

_worker_store: ArtifactStore | None = None
_worker_traces: dict = {}


def _init_worker(store_dir: str | None) -> None:
    """Pool initializer: bind the store and reset the trace cache."""
    global _worker_store, _worker_traces
    _worker_store = ArtifactStore(store_dir) if store_dir else None
    _worker_traces = {}


def _worker_get_trace(workload: str, scale: int) -> tuple[list, bool, bool]:
    """The oracle trace plus (emulated, store_hit) flags."""
    key = (workload, scale)
    trace = _worker_traces.get(key)
    if trace is not None:
        return trace, False, False
    store_hit = False
    if _worker_store is not None:
        trace = _worker_store.load_trace(workload, scale)
        store_hit = trace is not None
    emulated = trace is None
    if emulated:
        trace = build_trace(workload, scale).trace
        if _worker_store is not None:
            _worker_store.save_trace(workload, scale, trace)
    _worker_traces[key] = trace
    return trace, emulated, store_hit


def _run_shard(shard: list[tuple[int, str, int, str, object]],
               limit_insns: int | None = None
               ) -> list[tuple[int, PipelineStats, dict]]:
    """Execute one shard of (index, workload, scale, variant, config).

    ``limit_insns`` truncates every trace to its first N instructions
    before simulating (the search engine's cheap-evaluation budget);
    truncated stats go into the store under budget-specific keys.
    """
    out = []
    for index, workload, scale, variant, config in shard:
        flags = {"emulated": False, "simulated": False,
                 "trace_hit": False, "stats_hit": False}
        stats = None
        if _worker_store is not None:
            stats = _worker_store.load_stats(workload, scale, config,
                                             limit_insns=limit_insns)
            flags["stats_hit"] = stats is not None
        if stats is None:
            trace, emulated, trace_hit = _worker_get_trace(workload, scale)
            flags["emulated"] = emulated
            flags["trace_hit"] = trace_hit
            if limit_insns is not None:
                trace = trace[:limit_insns]
            stats = simulate_trace(trace, config)
            flags["simulated"] = True
            if _worker_store is not None:
                _worker_store.save_stats(workload, scale, config, stats,
                                         limit_insns=limit_insns)
        out.append((index, stats, flags))
    return out


def _prewarm_shard(shard: list[tuple[str, int]]
                   ) -> list[tuple[str, int, int, bool]]:
    """Ensure traces exist for (workload, scale) pairs; report lengths."""
    out = []
    for workload, scale in shard:
        trace, emulated, _ = _worker_get_trace(workload, scale)
        out.append((workload, scale, len(trace), emulated))
    return out


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PointResult:
    """One completed grid point.

    ``segments``/``segments_from_cache`` are filled by the segmented
    engine (:mod:`repro.engine.segments`); a flat sweep leaves them 0.
    """

    point: SweepPoint
    stats: PipelineStats
    emulated: bool
    simulated: bool
    segments: int = 0
    segments_from_cache: int = 0

    @property
    def from_cache(self) -> bool:
        return not self.simulated


@dataclass
class SweepResult:
    """Everything one sweep produced, in grid order."""

    results: list[PointResult]
    counters: dict[str, int]
    elapsed: float = 0.0
    jobs: int = 1

    def stats_by_label(self) -> dict[str, PipelineStats]:
        """``"workload@scale/variant" -> stats`` for easy lookup."""
        return {r.point.label: r.stats for r in self.results}

    def to_dict(self) -> dict:
        """JSON-ready report: per-point summaries plus counters."""
        return {
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed, 3),
            "counters": dict(self.counters),
            "points": [
                {
                    "workload": r.point.workload,
                    "scale": r.point.scale,
                    "variant": r.point.variant,
                    "config_key": r.point.config.cache_key(),
                    "from_cache": r.from_cache,
                    **({"segments": r.segments,
                        "segment_cache_hits": r.segments_from_cache}
                       if r.segments else {}),
                    **r.stats.summary(),
                }
                for r in self.results
            ],
        }

    def ledger_json(self) -> str:
        """Canonical JSON of the sweep's *deterministic* content.

        Strips everything that legitimately varies between otherwise
        identical runs — wall-clock, worker count, cache-hit
        provenance — and keeps the full per-point stats in grid order.
        Two runs of the same grid must produce **byte-identical**
        ledgers regardless of ``jobs`` or store warmth; the
        determinism test suite pins exactly that.
        """
        from ..uarch.config import canonical_json
        return canonical_json({
            "points": [
                {"workload": r.point.workload, "scale": r.point.scale,
                 "variant": r.point.variant,
                 "config_key": r.point.config.cache_key(),
                 "stats": r.stats.to_dict()}
                for r in self.results
            ],
        })


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 serial, <=0 all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _make_shards(points: list[SweepPoint], by_point: bool = False
                 ) -> list[list[tuple[int, str, int, str, object]]]:
    if by_point:
        return [[(index, p.workload, p.scale, p.variant, p.config)]
                for index, p in enumerate(points)]
    shards: dict[tuple[str, int], list] = {}
    for index, p in enumerate(points):
        shards.setdefault((p.workload, p.scale), []).append(
            (index, p.workload, p.scale, p.variant, p.config))
    return list(shards.values())


def run_sweep_iter(points: list[SweepPoint], jobs: int | None = 1,
                   store_dir: str | os.PathLike | None = None,
                   counters: dict | None = None,
                   limit_insns: int | None = None,
                   shard_by_point: bool = False
                   ) -> Iterator[tuple[int, PointResult]]:
    """Execute a sweep grid incrementally, yielding per-point results.

    A generator over ``(grid_index, PointResult)`` pairs in
    **completion order** (shards finish whenever their worker does;
    within a shard, points come back in grid order).  The caller can
    stop consuming at any time — an early ``break`` abandons only the
    results it has not read; shards already submitted to the pool run
    to completion so their artifacts still land in the store.

    ``counters``, if given, is a dict the generator updates in place
    (``points``/``shards``/``emulations``/``simulations``/
    ``trace_cache_hits``/``stats_cache_hits``) — read it after
    exhausting the iterator for final totals.

    ``limit_insns`` simulates only each trace's first N instructions:
    the search engine's successive-halving rungs use this to buy cheap
    candidate rankings before promoting survivors to full runs.

    ``shard_by_point`` makes every grid point its own shard, so many
    variants of one workload spread across all workers instead of
    serializing on one.  Only sensible with a *store* whose traces are
    already present (each worker process unpickles a workload's trace
    once and caches it) — see :func:`run_trace_prewarm`; without a
    store it would re-emulate per point.  The search engine uses this
    for candidate batches, which are exactly the many-variants/
    few-workloads shape.
    """
    jobs = resolve_jobs(jobs)
    store_dir = os.fspath(store_dir) if store_dir is not None else None
    shards = _make_shards(points, by_point=shard_by_point)
    if counters is None:
        counters = {}
    counters.update({"points": len(points), "shards": len(shards),
                     "emulations": 0, "simulations": 0,
                     "trace_cache_hits": 0, "stats_cache_hits": 0})

    def _absorb(shard_out) -> list[tuple[int, PointResult]]:
        absorbed = []
        for index, stats, flags in shard_out:
            point = points[index]
            result = PointResult(point=point, stats=stats,
                                 emulated=flags["emulated"],
                                 simulated=flags["simulated"])
            counters["emulations"] += flags["emulated"]
            counters["simulations"] += flags["simulated"]
            counters["trace_cache_hits"] += flags["trace_hit"]
            counters["stats_cache_hits"] += flags["stats_hit"]
            absorbed.append((index, result))
        return absorbed

    if jobs == 1 or len(shards) <= 1:
        _init_worker(store_dir)
        for shard in shards:
            yield from _absorb(_run_shard(shard, limit_insns))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(shards)),
                                 initializer=_init_worker,
                                 initargs=(store_dir,)) as pool:
            futures = [pool.submit(_run_shard, shard, limit_insns)
                       for shard in shards]
            for future in as_completed(futures):
                yield from _absorb(future.result())


def run_sweep(points: list[SweepPoint], jobs: int | None = 1,
              store_dir: str | os.PathLike | None = None,
              progress=None, segment_insns: int | None = None
              ) -> SweepResult:
    """Execute a sweep grid, optionally in parallel and/or persisted.

    Collects :func:`run_sweep_iter` into a :class:`SweepResult` in
    grid order.  ``progress``, if given, is called after every
    completed point as ``progress(done_points, total_points, label)``.

    ``segment_insns`` switches to the segmented engine
    (:func:`repro.engine.segments.run_segmented_sweep`): traces are
    split into fixed-instruction-count segments that parallelize
    *within* a workload, at the cost of per-segment cold-start/drain
    effects on cycle counts.
    """
    if segment_insns is not None:
        from .segments import run_segmented_sweep
        return run_segmented_sweep(points, segment_insns, jobs=jobs,
                                   store_dir=store_dir, progress=progress)
    started = time.perf_counter()
    slots: list = [None] * len(points)
    counters: dict = {}
    done = 0
    for index, result in run_sweep_iter(points, jobs=jobs,
                                        store_dir=store_dir,
                                        counters=counters):
        slots[index] = result
        done += 1
        if progress is not None:
            progress(done, len(points), result.point.label)
    return SweepResult(results=slots, counters=counters,
                       elapsed=time.perf_counter() - started,
                       jobs=resolve_jobs(jobs))


def run_trace_prewarm(pairs: list[tuple[str, int]], jobs: int | None,
                      store_dir: str | os.PathLike) -> dict[str, int]:
    """Emulate any missing oracle traces in parallel into a store.

    Only useful with a persistent store: workers deposit the traces
    there, and the caller's subsequent :func:`ArtifactStore.load_trace`
    calls become unpickles instead of emulations.  Returns counters
    ``{"traces": ..., "emulations": ...}``.
    """
    jobs = resolve_jobs(jobs)
    store_dir = os.fspath(store_dir)
    shards = [[pair] for pair in dict.fromkeys(pairs)]
    counters = {"traces": len(shards), "emulations": 0}
    if jobs == 1 or len(shards) <= 1:
        _init_worker(store_dir)
        outs = [_prewarm_shard(shard) for shard in shards]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(shards)),
                                 initializer=_init_worker,
                                 initargs=(store_dir,)) as pool:
            outs = list(pool.map(_prewarm_shard, shards))
    for out in outs:
        counters["emulations"] += sum(emulated for *_, emulated in out)
    return counters
