import re
from pathlib import Path

from setuptools import find_packages, setup

_init = Path(__file__).parent / "src" / "repro" / "__init__.py"
version = re.search(r'^__version__ = "([^"]+)"', _init.read_text(),
                    re.MULTILINE).group(1)

setup(
    name="repro-continuous-optimization",
    version=version,
    description="Reproduction of 'Continuous Optimization' (ISCA 2005): "
                "a hardware dynamic optimizer in the rename stage of an "
                "out-of-order processor",
    long_description=(Path(__file__).parent / "README.md").read_text()
    if (Path(__file__).parent / "README.md").exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Hardware",
    ],
)
