"""Differential-fuzz throughput over the synthetic workload families.

The fuzzing harness is only useful if a meaningful seed sweep fits in
developer/CI time, so this benchmark measures programs-per-second and
instructions-per-second of ``repro fuzz`` style runs (every program
costs one emulation plus four pipeline runs: optimizer on/off,
monolithic and segmented) and reports the per-family breakdown.
"""

from __future__ import annotations

import time

from conftest import publish

from repro.engine.differential import run_fuzz
from repro.workloads.synth import FAMILIES

SEEDS = range(0, 4)
SMOKE_SEEDS = range(0, 1)

#: Last recorded run *before* the packed-SoA trace + table-dispatch
#: core landed (per-entry dataclass trace, dict dispatch), same grid,
#: single-CPU container.  Kept inline so every published result file
#: carries the before/after pair instead of relying on git archaeology.
BASELINE = {
    "trace_format": "list[TraceEntry] (per-entry dataclasses)",
    "programs": 20,
    "seeds": 4,
    "total_insns": 259061,
    "elapsed_seconds": 58.5634,
    "programs_per_second": 0.3415,
    "insns_per_second": 4423.6,
}

#: Conservative smoke-mode floor (oracle insns/s differentially
#: checked).  Smoke runs on this container reach ~10k; the committed
#: pre-packing core measured ~4.4k full / ~5k smoke, so 6k fails only
#: if the hot loop regresses most of the packed-core win.  CI's
#: bench-smoke job turns this into a hard perf gate.
SMOKE_MIN_INSNS_PER_SECOND = 6_000


def test_fuzz_throughput(benchmark, smoke):
    seeds = SMOKE_SEEDS if smoke else SEEDS

    def run():
        started = time.perf_counter()
        fuzz = run_fuzz(seeds, small=smoke)
        return fuzz, time.perf_counter() - started

    fuzz, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fuzz.ok, [p.workload for p in fuzz.failed]

    per_family: dict[str, list] = {family: [] for family in FAMILIES}
    for report in fuzz.programs:
        family = report.workload.split(":")[1].split("@")[0]
        per_family[family].append(report.instructions)
    total_insns = sum(p.instructions for p in fuzz.programs)
    insns_per_second = total_insns / elapsed
    speedup = insns_per_second / BASELINE["insns_per_second"]
    lines = [
        "Differential fuzz throughput",
        f"programs: {len(fuzz.programs)}  (families x seeds "
        f"{len(FAMILIES)} x {len(seeds)})",
        f"before (per-entry trace): "
        f"{BASELINE['insns_per_second']:,.0f} oracle insns/s "
        f"({BASELINE['elapsed_seconds']:.2f} s for "
        f"{BASELINE['programs']} programs)",
        f"after  (packed columns) : {elapsed:.2f} s  "
        f"({len(fuzz.programs) / elapsed:.2f} programs/s, "
        f"{insns_per_second:,.0f} oracle insns/s differentially "
        f"checked, {speedup:.2f}x over the recorded baseline)",
        "",
        f"{'family':10s} {'programs':>8s} {'insns/program':>14s}",
    ]
    for family, counts in per_family.items():
        mean = sum(counts) / len(counts) if counts else 0
        lines.append(f"{family:10s} {len(counts):8d} {mean:14.0f}")
    publish("synth_fuzz_throughput", "\n".join(lines), smoke, data={
        "programs": len(fuzz.programs), "seeds": len(seeds),
        "elapsed_seconds": round(elapsed, 4),
        "programs_per_second": round(len(fuzz.programs) / elapsed, 4),
        "insns_per_second": round(insns_per_second, 1),
        "total_insns": total_insns,
        "before_packed_core": BASELINE,
        "speedup_over_baseline": round(speedup, 4),
        "per_family": {family: {"programs": len(counts),
                                "mean_insns": round(sum(counts)
                                                    / len(counts), 1)
                                if counts else 0}
                       for family, counts in per_family.items()},
    })
    if smoke:
        # Perf gate for CI's bench-smoke job: a drop below the floor
        # means the table-driven hot core regressed, not noise.
        assert insns_per_second >= SMOKE_MIN_INSNS_PER_SECOND, (
            f"smoke fuzz throughput {insns_per_second:,.0f} insns/s "
            f"fell below the {SMOKE_MIN_INSNS_PER_SECOND:,d} floor")
