"""Dynamic (in-flight) instruction state for the timing model.

A :class:`DynInstr` carries everything the pipeline tracks about one
dynamic instruction: the oracle values copied straight out of the
packed trace columns (seq, pc, opcode id, result, effective address,
branch outcome, next pc), physical register operands after
rename/optimization, scheduler routing, readiness bookkeeping, the
optimizer outcome flags (early execution, removed load, known
address), and the cycle timestamps used to compute latencies.

The hot stages read the direct fields — ``op`` (small-integer opcode
id, indexing the flat tables in :mod:`repro.isa.opcodes`), ``result``,
``addr``, ``taken`` — and never materialize a
:class:`~repro.functional.trace.TraceEntry`.  The :attr:`entry` view
is still available (built lazily from the packed trace row) for
diagnostics and for callers that predate the packed format.

Field conventions: ``addr`` is ``-1`` for non-memory instructions;
``taken`` is ``-1`` for non-control instructions, else ``0``/``1``.
"""

from __future__ import annotations

from ..functional.trace import NO_ADDR, NO_TAKEN, PackedTrace, TraceEntry
from ..isa.opcodes import (OP_CLASS_BY_ID, OP_IS_CONTROL, OP_IS_LOAD,
                           OP_IS_STORE, OP_MEM_SIZE, OP_QUEUE, OPCODE_ID,
                           OpClass)


class DynInstr:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "_trace", "_row", "_entry",
        "seq", "pc", "op", "instr", "reg_srcs",
        "result", "addr", "taken", "next_pc", "mem_size",
        "is_load", "is_store", "is_control",
        "sched_class", "queue_idx", "src_pregs", "dst_preg", "prev_preg",
        "deps_remaining", "store_dep",
        "early", "early_value", "removed_load", "addr_known",
        "mispredicted", "early_resolved", "btb_bubble", "misspec_flush",
        "fetch_cycle", "rename_cycle", "issue_cycle", "complete_cycle",
        "completed", "retired", "exec_latency",
    )

    def __init__(self, entry: TraceEntry, fetch_cycle: int):
        # Entry-based construction, kept for callers (and tests) that
        # build instructions from individual TraceEntry objects.  The
        # pipeline's fetch stage uses :meth:`from_packed` instead.
        self._trace = None
        self._row = -1
        self._entry = entry
        op = OPCODE_ID[entry.instr.opcode]
        self.op = op
        self.seq = entry.seq
        self.pc = entry.pc
        self.instr = entry.instr
        self.reg_srcs = entry.instr.reg_sources()
        self.result = entry.result
        addr = entry.addr
        self.addr = NO_ADDR if addr is None else addr
        taken = entry.taken
        self.taken = NO_TAKEN if taken is None else (1 if taken else 0)
        self.next_pc = entry.next_pc
        self.mem_size = OP_MEM_SIZE[op]
        self.is_load = OP_IS_LOAD[op]
        self.is_store = OP_IS_STORE[op]
        self.is_control = OP_IS_CONTROL[op]
        self.sched_class: OpClass = OP_CLASS_BY_ID[op]
        self.queue_idx = OP_QUEUE[op]
        self.fetch_cycle = fetch_cycle
        self._init_pipeline_state()

    @classmethod
    def from_packed(cls, trace: PackedTrace, row: int,
                    fetch_cycle: int) -> "DynInstr":
        """Build from one packed-trace row without materializing views."""
        di = object.__new__(cls)
        di._trace = trace
        di._row = row
        di._entry = None
        op = trace.ops[row]
        di.op = op
        di.seq = trace.seqs[row]
        di.pc = trace.pcs[row]
        iidx = trace.iidx[row]
        di.instr = trace.instrs[iidx]
        di.reg_srcs = trace.reg_srcs[iidx]
        di.result = trace.results[row]
        di.addr = trace.addrs[row]
        di.taken = trace.takens[row]
        di.next_pc = trace.next_pcs[row]
        di.mem_size = OP_MEM_SIZE[op]
        di.is_load = OP_IS_LOAD[op]
        di.is_store = OP_IS_STORE[op]
        di.is_control = OP_IS_CONTROL[op]
        di.sched_class = OP_CLASS_BY_ID[op]
        di.queue_idx = OP_QUEUE[op]
        di.fetch_cycle = fetch_cycle
        # Pipeline-state defaults, inlined from _init_pipeline_state —
        # this constructor runs once per fetched instruction.
        di.src_pregs = ()
        di.dst_preg = None
        di.prev_preg = None
        di.deps_remaining = 0
        di.store_dep = None
        di.early = False
        di.early_value = None
        di.removed_load = False
        di.addr_known = False
        di.mispredicted = False
        di.early_resolved = False
        di.btb_bubble = False
        di.misspec_flush = False
        di.rename_cycle = -1
        di.issue_cycle = -1
        di.complete_cycle = -1
        di.completed = False
        di.retired = False
        di.exec_latency = 0
        return di

    def _init_pipeline_state(self) -> None:
        self.src_pregs: tuple[int, ...] = ()
        self.dst_preg: int | None = None
        self.prev_preg: int | None = None
        self.deps_remaining = 0
        self.store_dep: "DynInstr | None" = None
        self.early = False
        self.early_value: int | None = None
        self.removed_load = False
        self.addr_known = False
        self.mispredicted = False
        self.early_resolved = False
        self.btb_bubble = False
        self.misspec_flush = False
        self.rename_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.completed = False
        self.retired = False
        self.exec_latency = 0

    @property
    def entry(self) -> TraceEntry:
        """The full oracle view, materialized lazily from the trace."""
        e = self._entry
        if e is None:
            e = self._entry = self._trace.entry(self._row)
        return e

    @property
    def opcode(self):
        return self.instr.opcode

    def __repr__(self) -> str:
        flags = []
        if self.early:
            flags.append("early")
        if self.removed_load:
            flags.append("rle")
        if self.mispredicted:
            flags.append("mispred")
        flag_text = f" [{','.join(flags)}]" if flags else ""
        return (f"DynInstr(#{self.seq} pc={self.pc:#x} "
                f"{self.instr}{flag_text})")
