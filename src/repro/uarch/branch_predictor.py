"""Front-end branch prediction: gshare + BTB + return-address stack.

Matches the paper's Table 2 front end: an 18-bit gshare direction
predictor and a 1K-entry BTB.  A small return-address stack handles
``jsr``/``ret`` pairs (standard for this era of front end; without it
every return would be a full misprediction, which no contemporary
machine of the paper's vintage exhibits).

The predictor is used trace-driven: the pipeline asks for a prediction
at fetch, compares it against the oracle outcome from the trace, and
trains the predictor immediately.  Immediate update is the standard
trace-driven approximation of speculative-history + retire-time
training.
"""

from __future__ import annotations

from ..isa.opcodes import OP_IS_BRANCH, OPCODE_ID, Opcode
from ..isa.instructions import Instruction

_JSR_ID = OPCODE_ID[Opcode.JSR]
_RET_ID = OPCODE_ID[Opcode.RET]
_JMP_ID = OPCODE_ID[Opcode.JMP]


class GsharePredictor:
    """Gshare direction predictor with 2-bit saturating counters."""

    def __init__(self, history_bits: int = 18):
        self._history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        # Sparse pattern-history table; untouched counters start weakly
        # taken (2), which favours loop branches the way hardware
        # tables warmed by prior context would.
        self._pht: dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at *pc*."""
        return self._pht.get(self._index(pc), 2) >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift the global history."""
        index = self._index(pc)
        counter = self._pht.get(index, 2)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._pht[index] = counter
        self._history = ((self._history << 1) | int(taken)) & self._mask


class BranchTargetBuffer:
    """Direct-mapped BTB holding taken-branch targets."""

    def __init__(self, entries: int = 1024):
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self._entries = entries
        self._tags: dict[int, tuple[int, int]] = {}  # index -> (tag, target)

    def _split(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word % self._entries, word // self._entries

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for *pc*, or None on a miss."""
        index, tag = self._split(pc)
        entry = self._tags.get(index)
        if entry is not None and entry[0] == tag:
            return entry[1]
        return None

    def install(self, pc: int, target: int) -> None:
        """Record *target* as the taken target of the branch at *pc*."""
        index, tag = self._split(pc)
        self._tags[index] = (tag, target)


class ReturnAddressStack:
    """Bounded return-address stack for jsr/ret prediction."""

    def __init__(self, entries: int = 16):
        self._entries = entries
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) == self._entries:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> int | None:
        if self._stack:
            return self._stack.pop()
        return None


class FrontEndPredictor:
    """Composite front-end predictor driving the fetch stage.

    :meth:`predict` classifies each control instruction and reports
    whether the machine would have fetched down the correct path and
    whether the fetch group must pay a BTB-miss bubble.
    """

    def __init__(self, history_bits: int = 18, btb_entries: int = 1024,
                 ras_entries: int = 16):
        self.gshare = GsharePredictor(history_bits)
        self.btb = BranchTargetBuffer(btb_entries)
        self.ras = ReturnAddressStack(ras_entries)
        self.cond_branches = 0
        self.cond_mispredicts = 0
        self.indirect_jumps = 0
        self.indirect_mispredicts = 0
        self.btb_misses = 0

    def predict(self, instr: Instruction, actual_taken: bool,
                actual_target: int) -> tuple[bool, bool]:
        """Predict the control instruction at fetch.

        Returns ``(mispredicted, btb_bubble)``: *mispredicted* means the
        front end goes down the wrong path and must wait for branch
        resolution; *btb_bubble* means the direction/target was right
        but the target had to be produced at decode (small refetch
        bubble).
        """
        return self.predict_op(OPCODE_ID[instr.opcode], instr,
                               actual_taken, actual_target)

    def predict_op(self, op: int, instr: Instruction, actual_taken: bool,
                   actual_target: int) -> tuple[bool, bool]:
        """:meth:`predict` with the opcode id already in hand.

        The fetch stage reads *op* straight from the packed trace's
        opcode column, so classification is integer table lookups.
        """
        pc = instr.pc
        if OP_IS_BRANCH[op]:
            predicted_taken = self.gshare.predict(pc)
            self.gshare.update(pc, actual_taken)
            self.cond_branches += 1
            if predicted_taken != actual_taken:
                self.cond_mispredicts += 1
                if actual_taken:
                    self.btb.install(pc, actual_target)
                return True, False
            if actual_taken:
                target = self.btb.lookup(pc)
                self.btb.install(pc, actual_target)
                if target != actual_target:
                    self.btb_misses += 1
                    return False, True
            return False, False
        if op == _JSR_ID:
            self.ras.push(pc + 4)
            target = self.btb.lookup(pc)
            self.btb.install(pc, actual_target)
            if target != actual_target:
                self.btb_misses += 1
                return False, True
            return False, False
        if op == _RET_ID:
            self.indirect_jumps += 1
            predicted = self.ras.pop()
            if predicted != actual_target:
                self.indirect_mispredicts += 1
                return True, False
            return False, False
        if op == _JMP_ID:
            self.indirect_jumps += 1
            predicted = self.btb.lookup(pc)
            self.btb.install(pc, actual_target)
            if predicted != actual_target:
                self.indirect_mispredicts += 1
                return True, False
            return False, False
        # Direct unconditional branch: target known at decode at worst.
        target = self.btb.lookup(pc)
        self.btb.install(pc, actual_target)
        if target != actual_target:
            self.btb_misses += 1
            return False, True
        return False, False
