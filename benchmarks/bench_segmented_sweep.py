"""Segmented-sweep scaling: one long workload across all workers.

The flat sweep engine shards by workload, so a grid dominated by a
single long kernel is bound by one worker no matter how many cores
exist.  This benchmark runs exactly that worst case — one scaled-up
mcf kernel, three machine variants — and shows `--segment-insns`
fanning it out: the trace is split into fixed-instruction segments,
(config x segment) units spread across the pool, and per-segment
partial stats merge into whole-run stats.  A warm re-run against the
same store must perform zero emulation and zero segment simulations.
"""

from __future__ import annotations

import os
import tempfile
import time

from conftest import publish

from repro.engine.campaign import Campaign, parse_axis
from repro.engine.pool import run_sweep
from repro.engine.segments import run_segmented_sweep
from repro.uarch.config import default_config

WORKLOAD = "mcf"
SCALE = 8
SEGMENT_INSNS = 20_000
#: --smoke budget: a short trace split into a handful of segments.
SMOKE_SCALE = 2
SMOKE_SEGMENT_INSNS = 5_000

EXACT_FIELDS = ("retired", "fetched", "loads", "mem_ops",
                "cond_branches", "indirect_jumps")


def _campaign(scale) -> Campaign:
    return Campaign.from_axes(
        name="bench-segmented", workloads=[WORKLOAD], scales=[scale],
        base=default_config().with_optimizer(),
        axes=[parse_axis("optimizer.vf_delay=0,1")],
        include_baseline=True)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_segmented_sweep_speedup(benchmark, smoke):
    scale = SMOKE_SCALE if smoke else SCALE
    segment_insns = SMOKE_SEGMENT_INSNS if smoke else SEGMENT_INSNS
    points = _campaign(scale).points()
    ncpu = os.cpu_count() or 1
    with tempfile.TemporaryDirectory() as flat_store, \
            tempfile.TemporaryDirectory() as serial_store, \
            tempfile.TemporaryDirectory() as parallel_store:
        # flat engine: one workload == one shard == one busy worker
        flat, flat_s = _timed(
            lambda: run_sweep(points, jobs=ncpu, store_dir=flat_store))
        serial, serial_s = _timed(
            lambda: run_segmented_sweep(points, segment_insns, jobs=1,
                                        store_dir=serial_store))
        parallel, parallel_s = benchmark.pedantic(
            lambda: _timed(
                lambda: run_segmented_sweep(points, segment_insns,
                                            jobs=ncpu,
                                            store_dir=parallel_store)),
            rounds=1, iterations=1)
        warm, warm_s = _timed(
            lambda: run_segmented_sweep(points, segment_insns, jobs=ncpu,
                                        store_dir=parallel_store))

    # segmented results are deterministic across job counts and reruns
    assert [r.stats.to_json() for r in serial.results] == \
        [r.stats.to_json() for r in parallel.results] == \
        [r.stats.to_json() for r in warm.results]
    # the warm run served everything from the store
    assert warm.counters["emulations"] == 0
    assert warm.counters["segment_simulations"] == 0
    # instruction/event counters match the monolithic timing run exactly
    for seg_result, flat_result in zip(parallel.results, flat.results):
        for name in EXACT_FIELDS:
            assert getattr(seg_result.stats, name) == \
                getattr(flat_result.stats, name), name
    if ncpu >= 2 and not smoke:
        # the whole point: segments beat the one-worker-per-workload
        # bound on a long single-workload grid (tiny smoke traces are
        # dominated by pool startup, so the timing claim is full-only)
        assert parallel_s < serial_s

    segments = parallel.counters["segments"]
    lines = [
        f"single-workload grid: {len(points)} points "
        f"({WORKLOAD}@{scale}, "
        f"{parallel.results[0].stats.retired} instructions, "
        f"{segments} segments of {segment_insns})",
        f"flat jobs={ncpu:<2d} (cold)           : {flat_s:8.2f} s "
        f"(workload-sharded: one busy worker)",
        f"segmented serial, cold      : {serial_s:8.2f} s  (jobs=1)",
        f"segmented pool jobs={ncpu:<2d}, cold  : {parallel_s:8.2f} s   "
        f"speedup {serial_s / parallel_s:.2f}x over serial, "
        f"{flat_s / parallel_s:.2f}x over flat",
        f"segmented steady-state, warm store: {warm_s:8.2f} s   "
        f"({warm.counters['segment_stats_hits']} segment-stats hits, "
        f"0 emulations, 0 simulations)",
    ]
    publish("segmented_sweep", "\n".join(lines), smoke, data={
        "points": len(points), "workload": WORKLOAD, "scale": scale,
        "instructions": parallel.results[0].stats.retired,
        "segments": segments, "segment_insns": segment_insns,
        "jobs": ncpu,
        "flat_cold_seconds": round(flat_s, 4),
        "serial_cold_seconds": round(serial_s, 4),
        "pool_cold_seconds": round(parallel_s, 4),
        "warm_steady_state_seconds": round(warm_s, 4),
        "speedup_over_serial": round(serial_s / parallel_s, 4),
        "speedup_over_flat": round(flat_s / parallel_s, 4),
        "warm_counters": dict(warm.counters),
    })
