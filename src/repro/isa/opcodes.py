"""Opcode definitions and static per-opcode metadata.

Each opcode carries an :class:`OpSpec` describing everything the rest of
the system needs to know statically:

* which functional-unit class executes it (:class:`OpClass`),
* its execution latency in cycles,
* whether it is *simple* in the paper's sense — a single-cycle operation
  that the optimizer's rename-stage ALUs are allowed to execute early
  (Section 2, footnote 1 of the paper),
* memory access size and signedness for loads/stores,
* the branch condition for control-flow instructions.

The opcode set is deliberately Alpha-flavoured (the paper's workloads
were Alpha binaries): compare-against-zero conditional branches, scaled
adds (``s4add``/``s8add``) that feed the optimizer's
``(reg << scale) ± offset`` symbolic form, and explicit-size loads and
stores.
"""

from __future__ import annotations

import enum
import time as _time
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class; maps to the paper's four schedulers."""

    INT_SIMPLE = "int_simple"  # simple IALU, 1 cycle
    INT_COMPLEX = "int_complex"  # complex IALU (mul/div)
    FP = "fp"  # FP ALU
    MEM = "mem"  # address generation + D-cache
    BRANCH = "branch"  # executes on a simple IALU
    MISC = "misc"  # nop / halt


class BranchCond(enum.Enum):
    """Condition tested by conditional branches (register vs. zero)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    GE = "ge"
    LE = "le"
    GT = "gt"
    ALWAYS = "always"


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    mnemonic: str
    op_class: OpClass
    latency: int = 1
    simple: bool = True
    num_srcs: int = 2
    has_dst: bool = True
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_jump: bool = False  # unconditional control flow (br/jsr/ret/jmp)
    is_indirect: bool = False  # target comes from a register
    mem_size: int = 0
    mem_signed: bool = True
    cond: BranchCond | None = None
    commutative: bool = False
    writes_fp: bool = False


class Opcode(enum.Enum):
    """All opcodes understood by the assembler, emulator, and pipeline."""

    # --- integer ALU -------------------------------------------------
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    BIC = "bic"  # a & ~b
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    S4ADD = "s4add"  # (a << 2) + b
    S8ADD = "s8add"  # (a << 3) + b
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"
    CMPULE = "cmpule"
    MOV = "mov"  # register or immediate move
    SEXTB = "sextb"
    SEXTW = "sextw"
    SEXTL = "sextl"
    # --- integer complex ---------------------------------------------
    MUL = "mul"
    DIV = "div"  # signed division, truncating toward zero
    REM = "rem"
    # --- floating point ----------------------------------------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    FNEG = "fneg"
    FCMPEQ = "fcmpeq"  # writes 1.0 / 0.0 into an FP register
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    ITOF = "itof"  # convert integer register to FP value
    FTOI = "ftoi"  # truncate FP value to integer register
    # --- memory -------------------------------------------------------
    LDB = "ldb"
    LDBU = "ldbu"
    LDW = "ldw"
    LDWU = "ldwu"
    LDL = "ldl"
    LDLU = "ldlu"
    LDQ = "ldq"
    LDF = "ldf"  # load 8-byte IEEE double into an FP register
    STB = "stb"
    STW = "stw"
    STL = "stl"
    STQ = "stq"
    STF = "stf"  # store an FP register as an 8-byte IEEE double
    LDA = "lda"  # address calculation: dst = base + disp (an add)
    # --- control flow --------------------------------------------------
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    FBEQ = "fbeq"  # branch if FP register == 0.0
    FBNE = "fbne"
    BR = "br"
    JSR = "jsr"  # call: link register <- return address, jump to label
    RET = "ret"  # indirect jump through a register (no link)
    JMP = "jmp"  # indirect jump through a register (no link)
    # --- misc ----------------------------------------------------------
    NOP = "nop"
    HALT = "halt"


def _alu(mnemonic: str, commutative: bool = False, num_srcs: int = 2) -> OpSpec:
    return OpSpec(mnemonic, OpClass.INT_SIMPLE, latency=1, simple=True,
                  num_srcs=num_srcs, commutative=commutative)


def _cplx(mnemonic: str, latency: int, commutative: bool = False) -> OpSpec:
    return OpSpec(mnemonic, OpClass.INT_COMPLEX, latency=latency,
                  simple=False, commutative=commutative)


def _fp(mnemonic: str, latency: int, num_srcs: int = 2) -> OpSpec:
    return OpSpec(mnemonic, OpClass.FP, latency=latency, simple=False,
                  num_srcs=num_srcs, writes_fp=True)


def _load(mnemonic: str, size: int, signed: bool = True,
          fp: bool = False) -> OpSpec:
    return OpSpec(mnemonic, OpClass.MEM, latency=1, simple=False,
                  num_srcs=1, is_load=True, mem_size=size,
                  mem_signed=signed, writes_fp=fp)


def _store(mnemonic: str, size: int) -> OpSpec:
    return OpSpec(mnemonic, OpClass.MEM, latency=1, simple=False,
                  num_srcs=2, has_dst=False, is_store=True, mem_size=size)


def _branch(mnemonic: str, cond: BranchCond) -> OpSpec:
    return OpSpec(mnemonic, OpClass.BRANCH, latency=1, simple=True,
                  num_srcs=1, has_dst=False, is_branch=True, cond=cond)


OP_SPECS: dict[Opcode, OpSpec] = {
    Opcode.ADD: _alu("add", commutative=True),
    Opcode.SUB: _alu("sub"),
    Opcode.AND: _alu("and", commutative=True),
    Opcode.OR: _alu("or", commutative=True),
    Opcode.XOR: _alu("xor", commutative=True),
    Opcode.BIC: _alu("bic"),
    Opcode.SLL: _alu("sll"),
    Opcode.SRL: _alu("srl"),
    Opcode.SRA: _alu("sra"),
    Opcode.S4ADD: _alu("s4add"),
    Opcode.S8ADD: _alu("s8add"),
    Opcode.CMPEQ: _alu("cmpeq", commutative=True),
    Opcode.CMPNE: _alu("cmpne", commutative=True),
    Opcode.CMPLT: _alu("cmplt"),
    Opcode.CMPLE: _alu("cmple"),
    Opcode.CMPULT: _alu("cmpult"),
    Opcode.CMPULE: _alu("cmpule"),
    Opcode.MOV: _alu("mov", num_srcs=1),
    Opcode.SEXTB: _alu("sextb", num_srcs=1),
    Opcode.SEXTW: _alu("sextw", num_srcs=1),
    Opcode.SEXTL: _alu("sextl", num_srcs=1),
    Opcode.MUL: _cplx("mul", latency=3, commutative=True),
    Opcode.DIV: _cplx("div", latency=20),
    Opcode.REM: _cplx("rem", latency=20),
    Opcode.FADD: _fp("fadd", latency=4),
    Opcode.FSUB: _fp("fsub", latency=4),
    Opcode.FMUL: _fp("fmul", latency=4),
    Opcode.FDIV: _fp("fdiv", latency=12),
    Opcode.FMOV: _fp("fmov", latency=1, num_srcs=1),
    Opcode.FNEG: _fp("fneg", latency=1, num_srcs=1),
    Opcode.FCMPEQ: _fp("fcmpeq", latency=4),
    Opcode.FCMPLT: _fp("fcmplt", latency=4),
    Opcode.FCMPLE: _fp("fcmple", latency=4),
    Opcode.ITOF: _fp("itof", latency=4, num_srcs=1),
    Opcode.FTOI: OpSpec("ftoi", OpClass.FP, latency=4, simple=False,
                        num_srcs=1),
    Opcode.LDB: _load("ldb", 1, signed=True),
    Opcode.LDBU: _load("ldbu", 1, signed=False),
    Opcode.LDW: _load("ldw", 2, signed=True),
    Opcode.LDWU: _load("ldwu", 2, signed=False),
    Opcode.LDL: _load("ldl", 4, signed=True),
    Opcode.LDLU: _load("ldlu", 4, signed=False),
    Opcode.LDQ: _load("ldq", 8, signed=True),
    Opcode.LDF: _load("ldf", 8, signed=True, fp=True),
    Opcode.STB: _store("stb", 1),
    Opcode.STW: _store("stw", 2),
    Opcode.STL: _store("stl", 4),
    Opcode.STQ: _store("stq", 8),
    Opcode.STF: _store("stf", 8),
    Opcode.LDA: _alu("lda", num_srcs=1),
    Opcode.BEQ: _branch("beq", BranchCond.EQ),
    Opcode.BNE: _branch("bne", BranchCond.NE),
    Opcode.BLT: _branch("blt", BranchCond.LT),
    Opcode.BGE: _branch("bge", BranchCond.GE),
    Opcode.BLE: _branch("ble", BranchCond.LE),
    Opcode.BGT: _branch("bgt", BranchCond.GT),
    Opcode.FBEQ: OpSpec("fbeq", OpClass.BRANCH, latency=1, simple=False,
                        num_srcs=1, has_dst=False, is_branch=True,
                        cond=BranchCond.EQ),
    Opcode.FBNE: OpSpec("fbne", OpClass.BRANCH, latency=1, simple=False,
                        num_srcs=1, has_dst=False, is_branch=True,
                        cond=BranchCond.NE),
    Opcode.BR: OpSpec("br", OpClass.BRANCH, latency=1, simple=True,
                      num_srcs=0, has_dst=False, is_jump=True,
                      cond=BranchCond.ALWAYS),
    Opcode.JSR: OpSpec("jsr", OpClass.BRANCH, latency=1, simple=True,
                       num_srcs=0, has_dst=True, is_jump=True,
                       cond=BranchCond.ALWAYS),
    Opcode.RET: OpSpec("ret", OpClass.BRANCH, latency=1, simple=True,
                       num_srcs=1, has_dst=False, is_jump=True,
                       is_indirect=True, cond=BranchCond.ALWAYS),
    Opcode.JMP: OpSpec("jmp", OpClass.BRANCH, latency=1, simple=True,
                       num_srcs=1, has_dst=False, is_jump=True,
                       is_indirect=True, cond=BranchCond.ALWAYS),
    Opcode.NOP: OpSpec("nop", OpClass.MISC, latency=1, simple=True,
                       num_srcs=0, has_dst=False),
    Opcode.HALT: OpSpec("halt", OpClass.MISC, latency=1, simple=False,
                        num_srcs=0, has_dst=False),
}

#: Mnemonic -> Opcode lookup for the assembler.
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {
    spec.mnemonic: op for op, spec in OP_SPECS.items()
}


def spec_of(opcode: Opcode) -> OpSpec:
    """Return the :class:`OpSpec` for *opcode*."""
    return OP_SPECS[opcode]


# ---------------------------------------------------------------------------
# Integer-indexed dispatch tables
# ---------------------------------------------------------------------------
# The hot loops (emulator, pipeline stages, optimizer rename) dispatch on
# small-integer opcode ids against flat tuples instead of hashing enum
# members into ``OP_SPECS`` and chasing ``OpSpec`` attributes per dynamic
# instruction.  The tables are built exactly once, at import.

_build_started = _time.perf_counter()

#: Opcodes in definition order; the index of an opcode here is its id.
OPCODES_BY_ID: tuple[Opcode, ...] = tuple(Opcode)
NUM_OPCODES: int = len(OPCODES_BY_ID)
#: Opcode -> stable small-integer id (definition order).
OPCODE_ID: dict[Opcode, int] = {op: i for i, op in enumerate(OPCODES_BY_ID)}

#: Scheduler-queue ids, mirroring ``uarch.scheduler``: BRANCH and MISC
#: ops execute on the simple-int scheduler.
QUEUE_INT, QUEUE_COMPLEX, QUEUE_FP, QUEUE_MEM = range(4)
_CLASS_QUEUE = {
    OpClass.INT_SIMPLE: QUEUE_INT,
    OpClass.BRANCH: QUEUE_INT,
    OpClass.MISC: QUEUE_INT,
    OpClass.INT_COMPLEX: QUEUE_COMPLEX,
    OpClass.FP: QUEUE_FP,
    OpClass.MEM: QUEUE_MEM,
}


def _table(field):
    return tuple(field(OP_SPECS[op]) for op in OPCODES_BY_ID)


OP_SPEC_BY_ID: tuple[OpSpec, ...] = _table(lambda s: s)
OP_CLASS_BY_ID: tuple[OpClass, ...] = _table(lambda s: s.op_class)
OP_LATENCY: tuple[int, ...] = _table(lambda s: s.latency)
OP_SIMPLE: tuple[bool, ...] = _table(lambda s: s.simple)
OP_NUM_SRCS: tuple[int, ...] = _table(lambda s: s.num_srcs)
OP_HAS_DST: tuple[bool, ...] = _table(lambda s: s.has_dst)
OP_IS_LOAD: tuple[bool, ...] = _table(lambda s: s.is_load)
OP_IS_STORE: tuple[bool, ...] = _table(lambda s: s.is_store)
OP_IS_BRANCH: tuple[bool, ...] = _table(lambda s: s.is_branch)
OP_IS_JUMP: tuple[bool, ...] = _table(lambda s: s.is_jump)
OP_IS_INDIRECT: tuple[bool, ...] = _table(lambda s: s.is_indirect)
OP_IS_MEM: tuple[bool, ...] = _table(lambda s: s.is_load or s.is_store)
OP_IS_CONTROL: tuple[bool, ...] = _table(lambda s: s.is_branch or s.is_jump)
OP_MEM_SIZE: tuple[int, ...] = _table(lambda s: s.mem_size)
OP_MEM_SIGNED: tuple[bool, ...] = _table(lambda s: s.mem_signed)
OP_COND: tuple[BranchCond | None, ...] = _table(lambda s: s.cond)
OP_WRITES_FP: tuple[bool, ...] = _table(lambda s: s.writes_fp)
OP_QUEUE: tuple[int, ...] = _table(lambda s: _CLASS_QUEUE[s.op_class])

#: Wall-clock seconds spent building the dispatch tables above (reported
#: through the ``repro_dispatch_table_build_seconds`` telemetry gauge).
DISPATCH_TABLE_BUILD_SECONDS: float = _time.perf_counter() - _build_started
