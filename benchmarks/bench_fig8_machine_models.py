"""Regenerates Figure 8: optimization on other machine models.

Paper reference: the optimizer helps the execution-bound machine far
more than widening fetch alone; on the balanced machine continuous
optimization matches or beats doubling the fetch width.
Representative subset: the first two workloads of each suite
(sensitivity studies use a subset to bound harness runtime).
"""

from conftest import publish, rows_data

from repro.experiments import machine_models


def test_fig8_machine_models(benchmark, smoke):
    per_suite = 1 if smoke else 2
    rows = benchmark.pedantic(machine_models.run, rounds=1, iterations=1,
                              kwargs={"workloads_per_suite": per_suite})
    assert len(rows) == 3
    if not smoke:
        for row in rows:
            assert row.bars["exec bound + opt"] > \
                row.bars["exec bound"] - 0.02
    publish("fig8_machine_models", machine_models.format(rows), smoke,
            data={"rows": rows_data(rows)})
