"""Figure 6: speedup of continuous optimization over the baseline.

One bar per benchmark plus a per-suite average, exactly as the paper's
three Figure 6 graphs (SPECint, SPECfp, mediabench).  The paper
reports speedups in the range 0.98-1.28.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import default_config
from ..workloads import SUITES, get_workload
from .report import format_table
from .runner import geomean, prewarm, run_workload, suite_lists


@dataclass(frozen=True)
class SpeedupRow:
    """One benchmark's Figure 6 bar."""

    workload: str
    abbrev: str
    suite: str
    baseline_cycles: int
    optimized_cycles: int

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.optimized_cycles


def run(scale: int = 1, workloads: list[str] | None = None,
        jobs: int | None = None,
        workloads_per_suite: int | None = None) -> list[SpeedupRow]:
    """Measure Figure 6 for the given workloads (default: all 22).

    ``workloads_per_suite`` (ignored when *workloads* is explicit)
    bounds the run to each suite's first N kernels — the benchmark
    harness's ``--smoke`` budget.
    """
    base_cfg = default_config()
    opt_cfg = base_cfg.with_optimizer()
    names = workloads
    if names is None:
        lists = suite_lists(workloads_per_suite)
        names = [w.name for wl in lists.values() for w in wl]
    prewarm(names, [base_cfg, opt_cfg], scale, jobs)
    rows = []
    for name in names:
        workload = get_workload(name)
        base = run_workload(name, base_cfg, scale)
        opt = run_workload(name, opt_cfg, scale)
        rows.append(SpeedupRow(workload=workload.name,
                               abbrev=workload.abbrev, suite=workload.suite,
                               baseline_cycles=base.cycles,
                               optimized_cycles=opt.cycles))
    return rows


def suite_averages(rows: list[SpeedupRow]) -> dict[str, float]:
    """Per-suite geometric-mean speedup (the paper's 'avg' bars)."""
    averages = {}
    for suite in SUITES:
        values = [row.speedup for row in rows if row.suite == suite]
        if values:
            averages[suite] = geomean(values)
    return averages


def format(rows: list[SpeedupRow]) -> str:
    """Render the Figure 6 series as text."""
    table_rows: list[list[object]] = [
        [row.suite, row.abbrev, row.baseline_cycles, row.optimized_cycles,
         row.speedup]
        for row in rows
    ]
    for suite, average in suite_averages(rows).items():
        table_rows.append([suite, "avg", "-", "-", average])
    return format_table(
        "Figure 6: speedup of continuous optimization over baseline",
        ["suite", "bench", "base cycles", "opt cycles", "speedup"],
        table_rows)
