"""Content-addressed on-disk artifact store for traces and stats.

Artifacts are keyed by a stable SHA-256 of their identity:

* **traces** — ``(kind=trace, format, workload, scale)``.  The oracle
  trace of a workload is configuration-independent, so every machine
  variant in a sweep shares one stored emulation.
* **stats** — ``(kind=stats, format, workload, scale, config)`` where
  ``config`` is :meth:`MachineConfig.canonical_json`.  A timing result
  is valid for exactly one machine configuration.

Traces are pickled (they contain :class:`Instruction` objects); stats
are canonical JSON.  Both are written atomically (temp file +
``os.replace``) so concurrent workers sharing one store can never
observe a torn artifact — at worst two workers race to write the same
content to the same key, which is benign.

``FORMAT_VERSION`` is baked into every key: changing the trace or
stats schema automatically invalidates stale artifacts instead of
deserializing garbage.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from ..functional.emulator import TraceEntry
from ..uarch.config import MachineConfig, canonical_json
from ..uarch.stats import PipelineStats

#: Bump when the TraceEntry / PipelineStats schema changes.
FORMAT_VERSION = 1

#: Fixed pickle protocol so identical traces serialize byte-identically
#: regardless of the interpreter's default.
PICKLE_PROTOCOL = 4


def _digest(identity: dict) -> str:
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


def trace_key(workload: str, scale: int) -> str:
    """Stable content key for a workload's oracle trace."""
    return _digest({"kind": "trace", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale})


def stats_key(workload: str, scale: int, config: MachineConfig) -> str:
    """Stable content key for one simulation's stats."""
    return _digest({"kind": "stats", "format": FORMAT_VERSION,
                    "workload": workload, "scale": scale,
                    "config": config.config_dict()})


class ArtifactStore:
    """Persists oracle traces and pipeline stats across runs.

    Layout::

        <root>/traces/<sha256>.pkl   pickled list[TraceEntry]
        <root>/stats/<sha256>.json   canonical PipelineStats JSON

    The store keeps hit/miss counters so callers (the sweep engine,
    the CLI) can report how much work persistence saved.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._traces = self.root / "traces"
        self._stats = self.root / "stats"
        self._traces.mkdir(parents=True, exist_ok=True)
        self._stats.mkdir(parents=True, exist_ok=True)
        self.trace_hits = 0
        self.trace_misses = 0
        self.stats_hits = 0
        self.stats_misses = 0

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------

    def load_trace(self, workload: str,
                   scale: int) -> list[TraceEntry] | None:
        """The stored oracle trace, or ``None`` on a miss."""
        path = self._traces / f"{trace_key(workload, scale)}.pkl"
        if not path.exists():
            self.trace_misses += 1
            return None
        with path.open("rb") as fh:
            trace = pickle.load(fh)
        self.trace_hits += 1
        return trace

    def save_trace(self, workload: str, scale: int,
                   trace: list[TraceEntry]) -> Path:
        """Persist an oracle trace; returns the artifact path."""
        path = self._traces / f"{trace_key(workload, scale)}.pkl"
        payload = pickle.dumps(trace, protocol=PICKLE_PROTOCOL)
        self._atomic_write(path, payload)
        return path

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def load_stats(self, workload: str, scale: int,
                   config: MachineConfig) -> PipelineStats | None:
        """The stored simulation stats, or ``None`` on a miss."""
        path = self._stats / f"{stats_key(workload, scale, config)}.json"
        if not path.exists():
            self.stats_misses += 1
            return None
        stats = PipelineStats.from_json(path.read_text())
        self.stats_hits += 1
        return stats

    def save_stats(self, workload: str, scale: int, config: MachineConfig,
                   stats: PipelineStats) -> Path:
        """Persist simulation stats; returns the artifact path."""
        path = self._stats / f"{stats_key(workload, scale, config)}.json"
        self._atomic_write(path, stats.to_json().encode())
        return path

    # ------------------------------------------------------------------
    # maintenance / reporting
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Hit/miss counters accumulated by this store instance."""
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "stats_hits": self.stats_hits,
            "stats_misses": self.stats_misses,
        }

    def artifact_count(self) -> dict[str, int]:
        """How many artifacts of each kind are on disk."""
        return {
            "traces": sum(1 for _ in self._traces.glob("*.pkl")),
            "stats": sum(1 for _ in self._stats.glob("*.json")),
        }

    def clear(self) -> None:
        """Delete every stored artifact (keeps the directories)."""
        for path in (*self._traces.glob("*.pkl"),
                     *self._stats.glob("*.json")):
            path.unlink()

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
