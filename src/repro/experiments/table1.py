"""Table 1: the experimental workload inventory.

Lists every benchmark with its suite and simulated dynamic instruction
count, mirroring the paper's Table 1 (whose counts, 96M-1000M, are
scaled down here per DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import format_table
from .runner import get_trace, prewarm_traces, suite_lists


@dataclass(frozen=True)
class Table1Row:
    """One workload's inventory line."""

    suite: str
    name: str
    abbrev: str
    description: str
    instructions: int


def run(scale: int = 1, jobs: int | None = None,
        workloads_per_suite: int | None = None) -> list[Table1Row]:
    """Build the workload inventory with measured instruction counts.

    ``workloads_per_suite`` bounds the inventory to each suite's first
    N kernels (the benchmark harness's ``--smoke`` budget).
    """
    selected = [w for wl in suite_lists(workloads_per_suite).values()
                for w in wl]
    prewarm_traces([w.name for w in selected], scale, jobs)
    rows = []
    for workload in selected:
        trace = get_trace(workload.name, scale)
        rows.append(Table1Row(suite=workload.suite, name=workload.name,
                              abbrev=workload.abbrev,
                              description=workload.description,
                              instructions=len(trace)))
    return rows


def format(rows: list[Table1Row]) -> str:
    """Render the Table 1 inventory as text."""
    table_rows = [[row.suite, f"{row.name} ({row.abbrev})",
                   row.description, row.instructions]
                  for row in rows]
    return format_table(
        "Table 1: experimental workload",
        ["type of app.", "name", "kernel", "total insts."],
        table_rows)
