"""Dependency-free metrics registry: the engine's telemetry layer.

Every layer of the stack — the functional emulator, the timing
pipeline, the artifact store, the sweep pool, the segmented engine,
and the streaming service — records into one process-wide
:data:`TELEMETRY` registry holding three instrument kinds:

* **counters** — monotonically increasing event/byte totals
  (``repro_sim_runs_total``, ``repro_store_put_bytes_total``,
  ``repro_requests_rejected_total{reason=...}``),
* **gauges** — last-observed values with *peak* merge semantics
  (``repro_job_queue_depth``, ``repro_sim_insns_per_second``),
* **histograms** — fixed log-scale bucket distributions of seconds
  (``repro_pool_shard_execute_seconds``,
  ``repro_job_phase_seconds{phase="queue"}``).

Design constraints, in order:

1. **Cheap enough to leave on.**  Instrument objects are cached per
   ``(name, labels)`` so the hot path is one dict lookup plus an
   integer add; timing uses ``time.perf_counter_ns``; there are *no
   locks* anywhere.  Instrumentation sits at per-run / per-shard /
   per-artifact granularity — never per instruction or per cycle — so
   the overhead on a real sweep is well under the 2% budget.  Under
   the service's executor threads concurrent ``+=`` may rarely lose an
   increment; telemetry trades that for lock-free reads and writes
   (job lifecycle counters are only touched on the event loop thread
   and stay exact).
2. **Associative merge.**  :meth:`MetricsRegistry.merge` folds a
   :meth:`~MetricsRegistry.snapshot` into the registry the same way
   :meth:`repro.uarch.stats.PipelineStats.merge` folds partial stats:
   counters and histogram buckets add, gauges take the max (peak
   semantics).  Pool and segment workers call
   :meth:`~MetricsRegistry.drain` (snapshot + reset) and ship the
   snapshot back through the existing result path, so worker telemetry
   aggregates on the driver without any extra IPC.
3. **Kill switch.**  ``REPRO_TELEMETRY=0`` in the environment disables
   the process-wide registry: every instrument lookup returns a shared
   no-op object and ``snapshot()`` is empty.  Worker processes inherit
   the variable, so one setting silences a whole sweep.

The multi-tenant service layer reuses the same three instrument kinds
for its per-tenant families: ``repro_requests_rejected_total`` with a
``reason`` label (``auth`` / ``quota`` / ``rate`` / ``capacity``),
``repro_tenant_store_evictions_total{tenant=...}``, and the
``repro_tenant_active_jobs`` / ``repro_tenant_rate_tokens`` /
``repro_tenant_store_bytes`` gauges — no new registry machinery.

Rendering: :meth:`~MetricsRegistry.to_prometheus` emits the
Prometheus text exposition format (the ``GET /metrics`` endpoint),
``snapshot()`` is the JSON form (``GET /metrics?format=json`` and the
``repro metrics`` subcommand), and :func:`format_profile` renders a
per-stage timing tree for the CLI's global ``--profile`` flag.
"""

from __future__ import annotations

import os
import time

#: Histogram bucket upper bounds: powers of two from ~1 microsecond to
#: ~68 minutes.  Fixed and log-scale so two snapshots always merge
#: bucket-by-bucket and relative error is bounded at every magnitude.
BUCKET_BOUNDS: tuple[float, ...] = tuple(2.0 ** k for k in range(-20, 13))


def _label_key(labels: dict) -> str:
    """Canonical label string: sorted ``k="v"`` pairs, '' when bare."""
    if not labels:
        return ""
    return ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))


class Counter:
    """A monotonic event/byte total.  ``inc()`` is the whole API."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-observed value; merges by max (peak semantics)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed log-scale bucket distribution (of seconds, by convention)."""

    __slots__ = ("buckets", "sum", "count")

    def __init__(self):
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)  # +1 overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = 0
        for bound in BUCKET_BOUNDS:
            if value <= bound:
                break
            index += 1
        self.buckets[index] += 1
        self.sum += value
        self.count += 1


class _Timer:
    """Context manager: observes elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_started_ns", "elapsed")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        self._started_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = (time.perf_counter_ns() - self._started_ns) / 1e9
        self._histogram.observe(self.elapsed)


class _NullInstrument:
    """Shared no-op standing in for every instrument when disabled."""

    __slots__ = ()
    value = 0
    elapsed = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """Per-process metric accumulation with associative merge."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[tuple[str, str], Counter] = {}
        self._gauges: dict[tuple[str, str], Gauge] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}

    # -- instrument lookup (cached; the hot path) ----------------------

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str, **labels) -> Histogram:
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        return histogram

    def timer(self, name: str, **labels):
        """Context manager timing a block into ``histogram(name)``."""
        if not self.enabled:
            return _NULL
        return _Timer(self.histogram(name, **labels))

    # -- snapshot / merge / drain --------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument (labels pre-canonical)."""
        counters: dict[str, dict[str, int]] = {}
        for (name, labels), counter in self._counters.items():
            counters.setdefault(name, {})[labels] = counter.value
        gauges: dict[str, dict[str, float]] = {}
        for (name, labels), gauge in self._gauges.items():
            gauges.setdefault(name, {})[labels] = gauge.value
        histograms: dict[str, dict[str, dict]] = {}
        for (name, labels), histogram in self._histograms.items():
            histograms.setdefault(name, {})[labels] = {
                "buckets": list(histogram.buckets),
                "sum": histogram.sum,
                "count": histogram.count,
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` in (associative, like stats merge).

        Counters and histogram buckets add; gauges take the max, so a
        merged gauge reads as the *peak* across contributors — the
        right semantics for queue depths and throughput high-water
        marks shipped back from workers.
        """
        if not snapshot or not self.enabled:
            return
        for name, by_labels in snapshot.get("counters", {}).items():
            for labels, value in by_labels.items():
                key = (name, labels)
                counter = self._counters.get(key)
                if counter is None:
                    counter = self._counters[key] = Counter()
                counter.value += value
        for name, by_labels in snapshot.get("gauges", {}).items():
            for labels, value in by_labels.items():
                key = (name, labels)
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = self._gauges[key] = Gauge()
                gauge.value = max(gauge.value, value)
        for name, by_labels in snapshot.get("histograms", {}).items():
            for labels, data in by_labels.items():
                key = (name, labels)
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = Histogram()
                for index, bucket in enumerate(data["buckets"]):
                    histogram.buckets[index] += bucket
                histogram.sum += data["sum"]
                histogram.count += data["count"]

    def drain(self) -> dict | None:
        """Snapshot + reset: how workers ship telemetry to the driver.

        Returns ``None`` when disabled (or empty) so the result path
        ships nothing extra in the common quiet cases.
        """
        if not self.enabled:
            return None
        if not (self._counters or self._gauges or self._histograms):
            return None
        snapshot = self.snapshot()
        self.reset()
        return snapshot

    def reset(self) -> None:
        """Drop every instrument (tests; the drain path)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- rendering -----------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (``GET /metrics``)."""
        lines: list[str] = []

        def sample(name: str, labels: str, value) -> str:
            label_part = f"{{{labels}}}" if labels else ""
            if isinstance(value, float):
                value = f"{value:.9g}"
            return f"{name}{label_part} {value}"

        for name in sorted({n for n, _ in self._counters}):
            lines.append(f"# TYPE {name} counter")
            for (metric, labels), counter in sorted(self._counters.items()):
                if metric == name:
                    lines.append(sample(name, labels, counter.value))
        for name in sorted({n for n, _ in self._gauges}):
            lines.append(f"# TYPE {name} gauge")
            for (metric, labels), gauge in sorted(self._gauges.items()):
                if metric == name:
                    lines.append(sample(name, labels, gauge.value))
        for name in sorted({n for n, _ in self._histograms}):
            lines.append(f"# TYPE {name} histogram")
            for (metric, labels), hist in sorted(self._histograms.items()):
                if metric != name:
                    continue
                cumulative = 0
                for index, bucket in enumerate(hist.buckets):
                    cumulative += bucket
                    if not bucket:
                        continue  # sparse: skip empty buckets
                    bound = (f"{BUCKET_BOUNDS[index]:.9g}"
                             if index < len(BUCKET_BOUNDS) else "+Inf")
                    le = (f'{labels},le="{bound}"' if labels
                          else f'le="{bound}"')
                    lines.append(sample(f"{name}_bucket", le, cumulative))
                le = f'{labels},le="+Inf"' if labels else 'le="+Inf"'
                lines.append(sample(f"{name}_bucket", le, cumulative))
                lines.append(sample(f"{name}_sum", labels, hist.sum))
                lines.append(sample(f"{name}_count", labels, hist.count))
        return "\n".join(lines) + ("\n" if lines else "")


def percentile_from_histogram(data: dict, q: float) -> float:
    """Approximate quantile *q* (0..1) from one snapshot histogram.

    Returns the upper bound of the bucket holding the q-th
    observation — a coarse estimate bounded by the log-scale bucket
    width.  Exact percentiles (the load harness) should be computed
    from raw samples instead; this exists for quick snapshot reads.
    """
    count = data["count"]
    if count == 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for index, bucket in enumerate(data["buckets"]):
        cumulative += bucket
        if cumulative >= rank and bucket:
            if index < len(BUCKET_BOUNDS):
                return BUCKET_BOUNDS[index]
            break
    return data["sum"] / count if count else 0.0


def format_snapshot(snapshot: dict) -> str:
    """Human-readable snapshot (the ``repro metrics`` subcommand)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            for labels, value in sorted(counters[name].items()):
                entry = f"{name}{{{labels}}}" if labels else name
                lines.append(f"  {entry:48s} {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            for labels, value in sorted(gauges[name].items()):
                entry = f"{name}{{{labels}}}" if labels else name
                lines.append(f"  {entry:48s} {value:.4g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            for labels, data in sorted(histograms[name].items()):
                suffix = f"{{{labels}}}" if labels else ""
                mean = data["sum"] / data["count"] if data["count"] else 0.0
                p95 = percentile_from_histogram(data, 0.95)
                lines.append(f"  {name}{suffix}  count={data['count']} "
                             f"total={data['sum']:.4f}s "
                             f"mean={mean:.6f}s p95<={p95:.6f}s")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def format_profile(snapshot: dict) -> str:
    """Per-stage timing tree for the CLI's global ``--profile`` flag.

    Timer histograms are grouped by name prefix (``repro_<stage>_…``)
    and sorted by total time, so the dominant stage reads first::

        profile (wall time by stage):
          sim        total 2.3142s  count 12  mean 0.192850s
            repro_sim_run_seconds            2.3142s x12
          emu        total 0.4410s  count 3   mean 0.147000s
            ...
    """
    histograms = snapshot.get("histograms", {})
    stages: dict[str, list[tuple[str, str, dict]]] = {}
    for name, by_labels in histograms.items():
        parts = name.split("_")
        stage = parts[1] if len(parts) > 1 and parts[0] == "repro" \
            else parts[0]
        for labels, data in by_labels.items():
            stages.setdefault(stage, []).append((name, labels, data))
    if not stages:
        return "profile: no timings recorded"
    totals = {stage: sum(d["sum"] for _, _, d in entries)
              for stage, entries in stages.items()}
    lines = ["profile (wall time by stage):"]
    for stage in sorted(stages, key=lambda s: -totals[s]):
        entries = stages[stage]
        count = sum(d["count"] for _, _, d in entries)
        mean = totals[stage] / count if count else 0.0
        lines.append(f"  {stage:10s} total {totals[stage]:.4f}s  "
                     f"count {count}  mean {mean:.6f}s")
        for name, labels, data in sorted(entries,
                                         key=lambda e: -e[2]["sum"]):
            entry = f"{name}{{{labels}}}" if labels else name
            lines.append(f"    {entry:46s} "
                         f"{data['sum']:.4f}s x{data['count']}")
    return "\n".join(lines)


def telemetry_enabled() -> bool:
    """Whether the environment leaves telemetry on (the default)."""
    return os.environ.get("REPRO_TELEMETRY", "1") != "0"


#: The process-wide registry every instrumented layer records into.
#: Workers inherit the module (and the env gate) on fork/spawn; their
#: accumulations come home via ``drain()`` snapshots on the existing
#: result paths.
TELEMETRY = MetricsRegistry(enabled=telemetry_enabled())
