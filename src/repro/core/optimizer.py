"""The continuous optimizer: an optimizing renamer for the pipeline.

This is the paper's contribution.  :class:`OptimizingRenamer` replaces
the baseline renamer in the rename stage and, for every dynamic
instruction:

1. resolves each source against the augmented RAT (symbolic values of
   the form ``(preg << scale) ± offset``) and the known-value table
   fed by value feedback;
2. applies CP/RA (:mod:`repro.core.cpra`) — possibly executing the
   instruction entirely within the optimizer (*early execution*),
   resolving mispredicted branches at rename, or rewriting the
   instruction's dependence to an earlier producer;
3. for memory operations with rename-time addresses, consults the
   Memory Bypass Cache (:mod:`repro.core.mbc`) to eliminate redundant
   loads and forward stores;
4. enforces the intra-bundle dependence-depth limits of Section 6.2
   (chained additions, chained memory operations);
5. verifies every produced value against the oracle trace — the
   paper's strict expression and value checking (Section 4.2).

Operating modes (Figure 9): with ``enable_opt`` off, only value
feedback is active — sources become known solely through fed-back
execution results, instructions with fully known inputs still execute
early, but no symbolic rewriting, constant propagation through the
RAT, or RLE/SF happens.  This is the paper's "eager bypassing"
feedback-only configuration.

Physical-register lifetimes follow the reference-counting scheme
(Section 3.1): RAT symbolic bases and MBC entries pin their registers,
and the optimizer sheds that state under register pressure (dropping a
hint is always safe).
"""

from __future__ import annotations

from ..functional.alu import to_signed64
from ..isa.instructions import Imm
from ..isa.opcodes import (OP_COND, OP_SPEC_BY_ID, OPCODE_ID, OPCODES_BY_ID,
                           QUEUE_INT, OpClass, Opcode)
from ..isa.registers import NUM_INT_REGS, is_int_reg, is_zero_reg
from ..uarch.config import MachineConfig
from ..uarch.dyninstr import DynInstr
from ..uarch.regfile import OutOfRegisters, PhysRegFile
from ..uarch.rename import BaselineRenamer
from ..uarch.stats import PipelineStats
from . import cpra, symbolic
from .feedback import ValueFeedbackChannel
from .mbc import MemoryBypassCache
from .symbolic import SymVal

_INT_COND_BRANCHES = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT,
})

_PENDING_INSERT = 0
_PENDING_INVALIDATE = 1

# Handler selection per opcode id, computed once: replaces the
# enum/spec-attribute if-chain in the rename entry point with one
# table lookup.  The arm order below mirrors the original chain, so
# FP conditional branches (fbeq/fbne) and nop land on the plain path.
_RK_BRANCH, _RK_JUMP, _RK_LOAD, _RK_STORE, _RK_INT_ALU, _RK_PLAIN = range(6)


def _classify(opcode: Opcode) -> int:
    spec = OP_SPEC_BY_ID[OPCODE_ID[opcode]]
    if opcode in _INT_COND_BRANCHES:
        return _RK_BRANCH
    if spec.is_jump:
        return _RK_JUMP
    if spec.is_load:
        return _RK_LOAD
    if spec.is_store:
        return _RK_STORE
    if (spec.op_class in (OpClass.INT_SIMPLE, OpClass.INT_COMPLEX)
            and opcode is not Opcode.NOP):
        return _RK_INT_ALU
    return _RK_PLAIN


_RENAME_KIND = tuple(_classify(op) for op in OPCODES_BY_ID)
_LDA_ID = OPCODE_ID[Opcode.LDA]
_LDF_ID = OPCODE_ID[Opcode.LDF]
_STF_ID = OPCODE_ID[Opcode.STF]
_BR_ID = OPCODE_ID[Opcode.BR]
_JSR_ID = OPCODE_ID[Opcode.JSR]

#: Resolved expression for the hardwired-zero registers (shared tuple;
#: ``_expr_of`` returns it without allocating).
_ZERO_EXPR = (symbolic.ZERO, 0, 0)


class VerificationError(Exception):
    """The optimizer produced a value that disagrees with the oracle."""


class _OptEntry:
    """Symbolic state of one integer architectural register."""

    __slots__ = ("sym", "sym_ref", "bundle_id", "add_depth", "mem_chain")

    def __init__(self, sym: SymVal):
        self.sym = sym
        self.sym_ref: int | None = None  # preg pinned by sym.base
        self.bundle_id = -1  # bundle that set the depth tags
        self.add_depth = 0
        self.mem_chain = 0


class OptimizingRenamer(BaselineRenamer):
    """Rename stage with the continuous optimizer installed."""

    def __init__(self, prf: PhysRegFile, config: MachineConfig):
        super().__init__(prf)
        self._config = config
        self._ocfg = config.optimizer
        self.feedback = ValueFeedbackChannel(prf, self._ocfg.vf_delay)
        self.mbc = MemoryBypassCache(self._ocfg.mbc_entries, prf)
        # Pending MBC writes: applied at the next bundle boundary so no
        # dependence within a rename packet is satisfied by RLE/SF
        # (Section 3.2).  Each pending insert holds a register
        # reference so the base cannot be recycled before commit.
        self._mbc_pending: list[tuple[int, int, int, SymVal | None, int]] = []
        self._pending_refs: list[int] = []
        self._bundle_id = 0
        # Symbolic state per integer architectural register; starts as
        # the plain physical mapping.
        self._entries: list[_OptEntry | None] = [None] * NUM_INT_REGS
        for arch in range(NUM_INT_REGS):
            if is_zero_reg(arch):
                continue
            self._entries[arch] = _OptEntry(
                symbolic.plain(self.rat.lookup(arch)))
        # statistics
        self.stat_early = 0
        self.stat_rewritten = 0
        self.stat_strength_reductions = 0
        self.stat_branch_inferences = 0
        self.stat_mbc_misspeculations = 0
        self.stat_depth_rejections = 0

    # ==================================================================
    # bundle boundary
    # ==================================================================

    def begin_bundle(self, cycle: int) -> None:
        if self._ocfg.enable_feedback:
            self.feedback.drain(cycle)
        if self._mbc_pending:
            for kind, addr, size, sym, expected, is_fp in self._mbc_pending:
                if kind == _PENDING_INSERT:
                    self.mbc.insert(addr, size, sym, expected, is_fp=is_fp)
                else:
                    self.mbc.invalidate_overlap(addr, size)
            self._mbc_pending.clear()
            for preg in self._pending_refs:
                self._prf.release(preg)
            self._pending_refs.clear()
        self._bundle_id += 1

    # ==================================================================
    # rename entry point
    # ==================================================================

    def rename(self, di: DynInstr, cycle: int) -> None:
        dst = di.instr.dst
        if (dst is not None and not is_zero_reg(dst)
                and not self._prf.can_allocate()):
            raise OutOfRegisters("no free physical registers")
        di.rename_cycle = cycle

        kind = _RENAME_KIND[di.op]
        if kind == _RK_INT_ALU:
            self._rename_int_alu(di)
        elif kind == _RK_LOAD:
            self._rename_load(di)
        elif kind == _RK_BRANCH:
            self._rename_branch(di)
        elif kind == _RK_STORE:
            self._rename_store(di)
        elif kind == _RK_JUMP:
            self._rename_jump(di)
        else:
            # FP operations, FP branches, nop: plain rename.
            self._rename_plain(di)

    # ------------------------------------------------------------------
    # source resolution
    # ------------------------------------------------------------------

    def _expr_of(self, arch: int) -> tuple[SymVal, int, int]:
        """Resolved symbolic value + intra-bundle depth tags of *arch*."""
        if is_zero_reg(arch):
            return _ZERO_EXPR
        entry = self._entries[arch]
        sym = entry.sym
        if sym[0] is not None and self._ocfg.enable_feedback:
            known = self.feedback.lookup(sym[0])
            if known is not None:
                folded = symbolic.fold(sym, known)
                self._set_entry_sym(arch, folded)
                sym = folded
        if entry.bundle_id == self._bundle_id:
            return sym, entry.add_depth, entry.mem_chain
        return sym, 0, 0

    def _source_exprs(self, di: DynInstr) -> tuple[list[SymVal], int, int]:
        """Resolve all sources; returns (exprs, max_depth, max_mem_chain)."""
        exprs: list[SymVal] = []
        depth = 0
        mem_chain = 0
        expr_of = self._expr_of
        for src in di.instr.srcs:
            if type(src) is Imm:
                exprs.append(symbolic.const(src.value))
                continue
            sym, src_depth, src_chain = expr_of(src.index)
            exprs.append(sym)
            if src_depth > depth:
                depth = src_depth
            if src_chain > mem_chain:
                mem_chain = src_chain
        return exprs, depth, mem_chain

    # ------------------------------------------------------------------
    # RAT symbolic-state updates
    # ------------------------------------------------------------------

    def _set_entry_sym(self, arch: int, sym: SymVal,
                       add_depth: int = 0, mem_chain: int = 0) -> None:
        """Replace the symbolic value of *arch*, managing base pins."""
        entry = self._entries[arch]
        mapping = self.rat.lookup(arch)
        new_ref: int | None = None
        if sym.base is not None and sym.base != mapping:
            self._prf.add_ref(sym.base)
            new_ref = sym.base
        if entry.sym_ref is not None:
            self._prf.release(entry.sym_ref)
        entry.sym = sym
        entry.sym_ref = new_ref
        if add_depth or mem_chain:
            entry.bundle_id = self._bundle_id
            entry.add_depth = add_depth
            entry.mem_chain = mem_chain
        else:
            entry.bundle_id = -1
            entry.add_depth = 0
            entry.mem_chain = 0

    def _allocate_dst(self, di: DynInstr, sym: SymVal | None,
                      add_depth: int = 0, mem_chain: int = 0) -> int | None:
        """Allocate the destination register and install its new state."""
        instr = di.instr
        if instr.dst is None or is_zero_reg(instr.dst):
            return None
        new_preg = self._prf.allocate()
        di.prev_preg = self.rat.remap(instr.dst, new_preg)
        di.dst_preg = new_preg
        if is_int_reg(instr.dst):
            if sym is None or not self._ocfg.enable_opt:
                sym = symbolic.plain(new_preg)
                add_depth = 0
                mem_chain = 0
            self._set_entry_sym(instr.dst, sym, add_depth, mem_chain)
        return new_preg

    def _take_deps(self, di: DynInstr, pregs: list[int]) -> None:
        for preg in pregs:
            self._prf.add_ref(preg)
        di.src_pregs = tuple(pregs)

    def _mapping_deps(self, di: DynInstr) -> list[int]:
        """Physical mappings of all register sources (the plain path)."""
        deps = []
        for arch in di.reg_srcs:
            preg = self.rat.lookup(arch)
            if preg is not None:
                deps.append(preg)
        return deps

    # ------------------------------------------------------------------
    # verification (Section 4.2: strict expression and value checking)
    # ------------------------------------------------------------------

    def _verify(self, di: DynInstr, produced: int | float,
                expected: int | float, what: str) -> None:
        if not self._ocfg.verify:
            return
        if isinstance(produced, int) and isinstance(expected, int):
            produced = to_signed64(produced)
            expected = to_signed64(expected)
        if produced != expected:
            raise VerificationError(
                f"{what} mismatch for {di}: optimizer produced "
                f"{produced!r}, oracle says {expected!r}")

    # ==================================================================
    # instruction-category handlers
    # ==================================================================

    def _rename_int_alu(self, di: DynInstr) -> None:
        instr = di.instr
        opcode = instr.opcode
        exprs, depth, mem_chain = self._source_exprs(di)
        if di.op == _LDA_ID:
            opcode = Opcode.ADD
            exprs = [exprs[0], symbolic.const(instr.disp)]
        outcome = cpra.transform(opcode, exprs)
        if outcome.uses_alu and depth > self._ocfg.add_depth:
            # This transformation would chain one more serial addition
            # onto this cycle's optimizer ALUs than the hardware has.
            self.stat_depth_rejections += 1
            outcome = cpra.Outcome(kind=cpra.Kind.PLAIN)
        if not self._ocfg.enable_opt and not outcome.is_early:
            # Feedback-only mode: no symbolic rewriting.
            outcome = cpra.Outcome(kind=cpra.Kind.PLAIN)
        if outcome.strength_reduced:
            self.stat_strength_reductions += 1
            di.sched_class = OpClass.INT_SIMPLE
            di.queue_idx = QUEUE_INT
        if outcome.is_early:
            self._verify(di, outcome.value, di.result, "early value")
            di.early = True
            di.early_value = outcome.value
            self.stat_early += 1
            new_depth = depth + 1 if outcome.uses_alu else depth
            dst = self._allocate_dst(di, outcome.sym, add_depth=new_depth,
                                     mem_chain=mem_chain)
            if dst is not None and self._ocfg.enable_opt:
                # Recording the computed value is constant propagation;
                # in feedback-only mode (Figure 9) the result instead
                # returns through the normal delayed feedback path.
                self.feedback.record_known(dst, outcome.value)
            return
        if outcome.is_rewritten:
            self.stat_rewritten += 1
            sym = outcome.sym
            new_depth = depth + 1 if outcome.uses_alu else depth
            deps = [] if sym.base is None else [sym.base]
            self._take_deps(di, deps)
            self._allocate_dst(di, sym, add_depth=new_depth,
                               mem_chain=mem_chain)
            return
        self._take_deps(di, self._mapping_deps(di))
        self._allocate_dst(di, None)

    def _rename_branch(self, di: DynInstr) -> None:
        instr = di.instr
        cond_reg = instr.srcs[0].index
        sym, depth, _ = self._expr_of(cond_reg)
        taken = cpra.resolve_branch(OP_COND[di.op], sym)
        # The branch test itself is zero-detect logic, not an adder, so
        # it may consume a value produced by this bundle's last allowed
        # addition level (hence the +1).
        if taken is not None and depth <= self._ocfg.add_depth + 1:
            self._verify(di, int(taken), di.taken,
                         "early branch direction")
            di.early = True
            self.stat_early += 1
        else:
            if taken is not None:
                self.stat_depth_rejections += 1
            self._take_deps(di, self._mapping_deps(di))
        if self._ocfg.enable_opt:
            implied = cpra.branch_implied_value(instr.opcode,
                                                di.taken == 1)
            if implied is not None and not is_zero_reg(cond_reg):
                current = self._entries[cond_reg].sym
                if not current.is_const:
                    self._set_entry_sym(cond_reg, symbolic.const(implied))
                    self.stat_branch_inferences += 1

    def _rename_jump(self, di: DynInstr) -> None:
        instr = di.instr
        op = di.op
        if op == _BR_ID:
            di.early = True
            self.stat_early += 1
            return
        if op == _JSR_ID:
            # The link value is a decode-time constant.
            return_pc = instr.pc + 4
            self._verify(di, return_pc, di.result, "jsr link value")
            di.early = True
            self.stat_early += 1
            sym = symbolic.const(return_pc) if self._ocfg.enable_opt else None
            dst = self._allocate_dst(di, sym)
            if dst is not None and self._ocfg.enable_opt:
                self.feedback.record_known(dst, return_pc)
            return
        # ret / jmp: indirect through an integer register.
        target_reg = instr.srcs[0].index
        sym, depth, _ = self._expr_of(target_reg)
        if sym.is_const and depth <= self._ocfg.add_depth + 1:
            self._verify(di, sym.const_value, di.next_pc,
                         "early indirect target")
            di.early = True
            self.stat_early += 1
            return
        self._take_deps(di, self._mapping_deps(di))

    def _rename_load(self, di: DynInstr) -> None:
        instr = di.instr
        base_reg = instr.srcs[0].index
        base_sym, depth, mem_chain = self._expr_of(base_reg)
        addr_sym = symbolic.add_const(base_sym, instr.disp)
        addr_usable = (depth <= self._ocfg.add_depth
                       and mem_chain <= self._ocfg.mem_depth)
        if addr_sym.is_const and addr_usable:
            self._verify(di, addr_sym.const_value, di.addr,
                         "rename-time load address")
            di.addr_known = True
            is_fp_load = di.op == _LDF_ID
            eligible = (self._ocfg.enable_opt and self._ocfg.enable_rle_sf
                        and instr.dst is not None
                        and not is_zero_reg(instr.dst)
                        and (is_fp_load or is_int_reg(instr.dst)))
            if eligible:
                bypassed = (self._try_bypass_fp_load(di) if is_fp_load
                            else self._try_bypass_load(di))
                if bypassed:
                    return
            # MBC miss (or not eligible): install this load's
            # destination for future redundant-load elimination.
            dst = self._allocate_dst(di, None)
            if eligible and dst is not None:
                expected = (float(di.result) if is_fp_load
                            else int(di.result))
                self._pend_insert(di.addr, di.mem_size,
                                  symbolic.plain(dst), expected,
                                  is_fp=is_fp_load)
            return
        # Address not available at rename: agen depends on the
        # (possibly reassociated) base register.
        if self._ocfg.enable_opt and addr_sym.base is not None:
            self._take_deps(di, [addr_sym.base])
        else:
            self._take_deps(di, self._mapping_deps(di))
        self._allocate_dst(di, None)

    def _try_bypass_load(self, di: DynInstr) -> bool:
        """Attempt RLE/SF; returns True if the load was eliminated."""
        size = di.mem_size
        addr = di.addr
        line = self.mbc.lookup(addr, size)
        if line is None or line.is_fp:
            return False
        if line.expected_value != int(di.result):
            # Speculative staleness: an unknown-address store modified
            # this location after the entry was installed (Section 3.2's
            # "proceed speculatively and recover" mode).
            self.mbc.invalidate_entry(addr, size)
            self.stat_mbc_misspeculations += 1
            di.misspec_flush = True
            return False
        sym = line.sym
        if not sym.is_const and self._ocfg.enable_feedback:
            known = self.feedback.lookup(sym.base)
            if known is not None:
                sym = symbolic.fold(sym, known)
        di.removed_load = True
        if sym.is_const:
            self._verify(di, sym.const_value, di.result,
                         "forwarded load value")
            di.early = True
            di.early_value = sym.const_value
            self.stat_early += 1
            dst = self._allocate_dst(di, sym, mem_chain=1)
            if dst is not None:
                self.feedback.record_known(dst, sym.const_value)
            return True
        if sym.is_plain:
            # The move is optimized away entirely via physical register
            # reuse (the paper's citation [15], Jourdan et al.): the
            # destination architectural register is remapped onto the
            # previous memory operation's register.  No execution at all.
            self._remap_to_existing(di, sym.base)
            self._set_entry_sym(di.instr.dst, symbolic.plain(sym.base),
                                mem_chain=1)
            return True
        # Offset/scaled forward: becomes a single-cycle move computing
        # (base << scale) + offset on a simple ALU.
        di.sched_class = OpClass.INT_SIMPLE
        di.queue_idx = QUEUE_INT
        self._take_deps(di, [sym.base])
        self._allocate_dst(di, sym, mem_chain=1)
        return True

    def _remap_to_existing(self, di: DynInstr, preg: int) -> None:
        """Collapse *di* into a RAT remap onto an existing register."""
        di.early = True
        self.stat_early += 1
        self._prf.add_ref(preg)  # the new architectural-mapping reference
        di.prev_preg = self.rat.remap(di.instr.dst, preg)
        di.dst_preg = None

    def _try_bypass_fp_load(self, di: DynInstr) -> bool:
        """RLE/SF for FP loads: forward the previous operation's register.

        No symbolic form exists for FP values, but the load can still
        become a one-cycle FP register move of the matching entry's
        physical register (never an early execution).
        """
        size = di.mem_size
        addr = di.addr
        line = self.mbc.lookup(addr, size)
        if line is None or not line.is_fp:
            return False
        if line.expected_value != float(di.result):
            self.mbc.invalidate_entry(addr, size)
            self.stat_mbc_misspeculations += 1
            di.misspec_flush = True
            return False
        di.removed_load = True
        # As for integer RLE/SF, the move is optimized away by
        # remapping the FP destination onto the existing register.
        self._remap_to_existing(di, line.sym.base)
        return True

    def _rename_store(self, di: DynInstr) -> None:
        instr = di.instr
        base_reg = instr.srcs[1].index
        base_sym, depth, mem_chain = self._expr_of(base_reg)
        addr_sym = symbolic.add_const(base_sym, instr.disp)
        addr_usable = (depth <= self._ocfg.add_depth
                       and mem_chain <= self._ocfg.mem_depth)
        deps: list[int] = []
        if addr_sym.is_const and addr_usable:
            self._verify(di, addr_sym.const_value, di.addr,
                         "rename-time store address")
            di.addr_known = True
        elif self._ocfg.enable_opt and addr_sym.base is not None:
            deps.append(addr_sym.base)
        else:
            mapping = self.rat.lookup(base_reg)
            if mapping is not None:
                deps.append(mapping)
        # Data operand: forwarded symbolically into the MBC, but the
        # store unit itself reads the plain physical register unless
        # the data is a known constant.
        data_src = instr.srcs[0]
        data_sym: SymVal | None = None
        if is_int_reg(data_src.index):
            data_sym, _, _ = self._expr_of(data_src.index)
            if not data_sym.is_const:
                mapping = self.rat.lookup(data_src.index)
                if mapping is not None:
                    deps.append(mapping)
        else:
            mapping = self.rat.lookup(data_src.index)
            if mapping is not None:
                deps.append(mapping)
        self._take_deps(di, deps)
        if (di.addr_known and self._ocfg.enable_opt
                and self._ocfg.enable_rle_sf):
            # The emulator records a store's data value as the row's
            # result, so ``di.result`` is the store value.
            if di.op == _STF_ID:
                # FP store forwarding: record the data register so a
                # later FP load becomes a register move.
                mapping = self.rat.lookup(data_src.index)
                self._pend_insert(di.addr, di.mem_size,
                                  symbolic.plain(mapping),
                                  float(di.result), is_fp=True)
                return
            if data_sym is None:
                self._mbc_pending.append(
                    (_PENDING_INVALIDATE, di.addr, di.mem_size,
                     None, 0, False))
                return
            if data_sym.is_const:
                self._verify(di, data_sym.const_value,
                             int(di.result),
                             "store-forward data value")
            self._pend_insert(di.addr, di.mem_size, data_sym,
                              int(di.result))

    def _pend_insert(self, addr: int, size: int, sym: SymVal,
                     expected: int | float, is_fp: bool = False) -> None:
        self._mbc_pending.append(
            (_PENDING_INSERT, addr, size, sym, expected, is_fp))
        if sym.base is not None:
            self._prf.add_ref(sym.base)
            self._pending_refs.append(sym.base)

    def _rename_plain(self, di: DynInstr) -> None:
        self._take_deps(di, self._mapping_deps(di))
        self._allocate_dst(di, None)

    # ==================================================================
    # pipeline callbacks
    # ==================================================================

    def on_complete(self, di: DynInstr, cycle: int) -> None:
        for preg in di.src_pregs:
            self._prf.release(preg)
        if di.dst_preg is None or not self._ocfg.enable_feedback:
            return
        result = di.result
        if (isinstance(result, int) and is_int_reg(di.instr.dst)
                and self._prf.is_live(di.dst_preg)):
            self.feedback.publish(di.dst_preg, to_signed64(result), cycle)

    def on_store_executed(self, di: DynInstr) -> None:
        if (di.addr_known and self._ocfg.enable_opt
                and self._ocfg.enable_rle_sf):
            # The MBC was already updated with this store at rename.
            return
        self.mbc.invalidate_overlap(di.addr, di.mem_size)

    def relieve_pressure(self) -> bool:
        """Shed optimizer state (hints) to free physical registers."""
        while self._prf.num_free == 0:
            if not self.mbc.evict_lru():
                break
        if self._prf.num_free > 0:
            return True
        for arch in range(NUM_INT_REGS):
            entry = self._entries[arch]
            if entry is None or entry.sym_ref is None:
                continue
            self._set_entry_sym(arch, symbolic.plain(self.rat.lookup(arch)))
            if self._prf.num_free > 0:
                return True
        return False

    def collect_stats(self, stats: PipelineStats) -> None:
        stats.mbc_hits = self.mbc.hits
        stats.mbc_misses = self.mbc.misses
        stats.mbc_invalidations = self.mbc.invalidations
        stats.extra.update({
            "opt_early": self.stat_early,
            "opt_rewritten": self.stat_rewritten,
            "opt_strength_reductions": self.stat_strength_reductions,
            "opt_branch_inferences": self.stat_branch_inferences,
            "opt_mbc_misspeculations": self.stat_mbc_misspeculations,
            "opt_depth_rejections": self.stat_depth_rejections,
            "opt_values_fed_back": self.feedback.values_fed_back,
        })
