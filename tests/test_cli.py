"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "untoast" in out
        assert out.count("\n") == 22

    def test_run_command(self, capsys):
        assert main(["run", "untoast"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "baseline" in out

    def test_run_by_abbreviation(self, capsys):
        assert main(["run", "untst"]) == 0
        assert "untoast" in capsys.readouterr().out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "doom3"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_fig9_with_subset(self, capsys):
        assert main(["--per-suite", "1", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "feedback + opt" in out

    def test_fig11_with_subset(self, capsys):
        assert main(["--per-suite", "1", "fig11"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("list", "run", "table1", "table3", "fig6", "fig8",
                        "fig9", "fig10", "fig11", "fig12", "all"):
            assert command in text
