"""Unit tests for the sparse memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.functional import Memory


class TestBasicAccess:
    def test_unwritten_reads_zero(self):
        assert Memory().load(0x1000, 8) == 0

    def test_store_load_roundtrip(self):
        mem = Memory()
        mem.store(0x1000, 0x1234, 8)
        assert mem.load(0x1000, 8) == 0x1234

    def test_little_endian_byte_order(self):
        mem = Memory()
        mem.store(0x1000, 0x0102, 2)
        assert mem.load(0x1000, 1) == 0x02
        assert mem.load(0x1001, 1) == 0x01

    def test_signed_byte_load(self):
        mem = Memory()
        mem.store(0x10, 0xFF, 1)
        assert mem.load(0x10, 1, signed=True) == -1
        assert mem.load(0x10, 1, signed=False) == 255

    def test_signed_word_load(self):
        mem = Memory()
        mem.store(0x10, 0x8000, 2)
        assert mem.load(0x10, 2, signed=True) == -32768

    def test_store_truncates_to_size(self):
        mem = Memory()
        mem.store(0x10, 0x1FF, 1)
        assert mem.load(0x10, 1, signed=False) == 0xFF
        assert mem.load(0x11, 1) == 0  # neighbour untouched

    def test_negative_value_store(self):
        mem = Memory()
        mem.store(0x10, -1, 8)
        assert mem.load(0x10, 8, signed=False) == 2 ** 64 - 1

    def test_overlapping_stores(self):
        mem = Memory()
        mem.store(0x10, 0x1122334455667788, 8)
        mem.store(0x12, 0xAA, 1)
        assert mem.load(0x10, 8, signed=False) == 0x1122334455AA7788

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Memory().load(-8, 8)
        with pytest.raises(ValueError):
            Memory().store(-8, 0, 8)

    def test_initial_image(self):
        mem = Memory({0x100: 0x2A})
        assert mem.load(0x100, 1) == 42

    def test_footprint_and_snapshot(self):
        mem = Memory()
        mem.store(0x10, 0xFFFF, 2)
        assert mem.footprint() == 2
        snap = mem.snapshot()
        assert snap[0x10] == 0xFF
        snap[0x10] = 0  # mutation must not leak back
        assert mem.load(0x10, 1, signed=False) == 0xFF


class TestDoubles:
    def test_double_roundtrip(self):
        mem = Memory()
        mem.store_double(0x20, 3.14159)
        assert mem.load_double(0x20) == 3.14159

    def test_negative_double(self):
        mem = Memory()
        mem.store_double(0x20, -2.5)
        assert mem.load_double(0x20) == -2.5

    def test_double_bits(self):
        mem = Memory()
        assert mem.double_to_bits(0.0) == 0
        assert mem.double_to_bits(1.0) == 0x3FF0000000000000


class TestProperties:
    @given(st.integers(min_value=0, max_value=2 ** 40),
           st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_quad_roundtrip(self, addr, value):
        mem = Memory()
        mem.store(addr, value, 8)
        assert mem.load(addr, 8, signed=True) == value

    @given(st.integers(min_value=0, max_value=1000),
           st.lists(st.tuples(st.integers(0, 63),
                              st.integers(0, 255)), max_size=20))
    def test_last_writer_wins(self, base, writes):
        mem = Memory()
        expected = {}
        for offset, value in writes:
            mem.store(base + offset, value, 1)
            expected[offset] = value
        for offset, value in expected.items():
            assert mem.load(base + offset, 1, signed=False) == value
