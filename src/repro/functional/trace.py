"""Oracle trace formats: per-entry records and the packed SoA encoding.

Two representations of the same dynamic instruction stream live here:

* :class:`TraceEntry` — one frozen record per retired instruction,
  the original (and still public) per-entry view.
* :class:`PackedTrace` — the storage format the emulator produces and
  the pipeline consumes: parallel integer columns (``array('q')`` /
  ``array('b')``) for seq, pc, opcode id, effective address, branch
  outcome and next-pc, plus object columns for results and source
  values, and a shared static-instruction table.  Entries materialize
  lazily into :class:`TraceEntry` views on demand (``trace[i]``),
  slices stay packed, and the columns pickle far more compactly than
  a list of frozen dataclasses — which is what the artifact store and
  the segment planner ship across worker processes.

The hot loops never touch :class:`TraceEntry`: the emulator appends
straight into the columns and the pipeline's fetch stage reads them
by index, dispatching on small-integer opcode ids against the flat
tables in :mod:`repro.isa.opcodes`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..isa.instructions import Instruction
from ..isa.opcodes import (DISPATCH_TABLE_BUILD_SECONDS, OPCODE_ID, Opcode)

#: Column sentinels: ``addrs`` uses -1 for "no effective address" and
#: ``takens`` uses -1 for "not a control instruction" (0/1 otherwise).
NO_ADDR = -1
NO_TAKEN = -1


@dataclass(frozen=True)
class TraceEntry:
    """One dynamically executed instruction with its oracle values."""

    seq: int
    pc: int
    instr: Instruction
    src_values: tuple[int | float, ...]
    result: int | float | None
    addr: int | None
    taken: bool | None
    next_pc: int

    @property
    def opcode(self) -> Opcode:
        return self.instr.opcode

    @property
    def is_load(self) -> bool:
        return self.instr.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.spec.is_store

    @property
    def is_control(self) -> bool:
        return self.instr.is_control

    @property
    def store_value(self) -> int | float:
        """The value a store writes to memory."""
        if not self.is_store:
            raise ValueError("store_value on a non-store")
        return self.src_values[0]


#: Lazily bound telemetry registry (the functional layer must not
#: import :mod:`repro.engine` at module level; see emulator.py).
_TELEMETRY = None

#: Cumulative one-time table-build cost reported through telemetry:
#: the ISA dispatch tables plus every per-program pre-decode.
_dispatch_build_seconds = DISPATCH_TABLE_BUILD_SECONDS


def _telemetry():
    global _TELEMETRY
    if _TELEMETRY is None:
        from ..engine.telemetry import TELEMETRY
        _TELEMETRY = TELEMETRY
    return _TELEMETRY


def note_dispatch_build(seconds: float) -> None:
    """Fold per-program decode-table build time into the build gauge."""
    global _dispatch_build_seconds
    _dispatch_build_seconds += seconds


def note_packed_build(trace: "PackedTrace") -> None:
    """Record telemetry for one freshly built packed trace."""
    telemetry = _telemetry()
    if telemetry.enabled:
        telemetry.counter("repro_trace_packed_builds_total").inc()
        telemetry.counter("repro_trace_packed_entries_total").inc(len(trace))
        telemetry.counter("repro_trace_packed_bytes_total").inc(
            trace.column_bytes())
        telemetry.gauge("repro_dispatch_table_build_seconds").set(
            _dispatch_build_seconds)


class PackedTrace:
    """Structure-of-arrays trace: integer columns + lazy entry views.

    Behaves as an immutable sequence of :class:`TraceEntry`:
    ``len()``, integer indexing (materializes one view), slicing
    (returns a :class:`PackedTrace` sharing the static-instruction
    table), iteration, and equality against entry lists.
    """

    __slots__ = ("instrs", "reg_srcs", "seqs", "pcs", "ops", "iidx",
                 "addrs", "takens", "next_pcs", "results", "srcvals")

    def __init__(self, instrs: list[Instruction],
                 reg_srcs: list[tuple[int, ...]] | None = None):
        #: Static-instruction table; ``iidx`` indexes into it.  For
        #: emulator-built traces this is the program's instruction list.
        self.instrs = instrs
        #: Pre-computed ``Instruction.reg_sources()`` per table entry
        #: (the rename stage reads these once per dynamic instruction).
        self.reg_srcs = (reg_srcs if reg_srcs is not None
                         else [i.reg_sources() for i in instrs])
        self.seqs = array("q")
        self.pcs = array("q")
        self.ops = array("B")
        self.iidx = array("q")
        self.addrs = array("q")
        self.takens = array("b")
        self.next_pcs = array("q")
        self.results: list[int | float | None] = []
        self.srcvals: list[tuple[int | float, ...]] = []

    # -- sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.seqs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.slice(index)
        return self.entry(index)

    def entry(self, i: int) -> TraceEntry:
        """Materialize the :class:`TraceEntry` view of row *i*."""
        addr = self.addrs[i]
        taken = self.takens[i]
        return TraceEntry(
            seq=self.seqs[i], pc=self.pcs[i],
            instr=self.instrs[self.iidx[i]],
            src_values=self.srcvals[i], result=self.results[i],
            addr=None if addr == NO_ADDR else addr,
            taken=None if taken == NO_TAKEN else bool(taken),
            next_pc=self.next_pcs[i])

    def slice(self, sl: slice) -> "PackedTrace":
        """A packed sub-trace sharing this trace's instruction table."""
        out = PackedTrace.__new__(PackedTrace)
        out.instrs = self.instrs
        out.reg_srcs = self.reg_srcs
        out.seqs = self.seqs[sl]
        out.pcs = self.pcs[sl]
        out.ops = self.ops[sl]
        out.iidx = self.iidx[sl]
        out.addrs = self.addrs[sl]
        out.takens = self.takens[sl]
        out.next_pcs = self.next_pcs[sl]
        out.results = self.results[sl]
        out.srcvals = self.srcvals[sl]
        return out

    def __iter__(self) -> Iterator[TraceEntry]:
        entry = self.entry
        for i in range(len(self.seqs)):
            yield entry(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, PackedTrace):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        if isinstance(other, (list, tuple)):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return (f"PackedTrace({len(self)} entries, "
                f"{len(self.instrs)} static instructions)")

    # -- construction / conversion ------------------------------------

    @classmethod
    def from_entries(cls, entries: Iterable[TraceEntry]) -> "PackedTrace":
        """Pack an iterable of :class:`TraceEntry` (legacy format)."""
        instrs: list[Instruction] = []
        index_of: dict[int, int] = {}
        out = cls(instrs, reg_srcs=[])
        seq_ap = out.seqs.append
        pc_ap = out.pcs.append
        op_ap = out.ops.append
        ii_ap = out.iidx.append
        addr_ap = out.addrs.append
        taken_ap = out.takens.append
        npc_ap = out.next_pcs.append
        res_ap = out.results.append
        src_ap = out.srcvals.append
        opcode_id = OPCODE_ID
        for e in entries:
            instr = e.instr
            key = id(instr)
            ii = index_of.get(key)
            if ii is None:
                ii = index_of[key] = len(instrs)
                instrs.append(instr)
                out.reg_srcs.append(instr.reg_sources())
            seq_ap(e.seq)
            pc_ap(e.pc)
            op_ap(opcode_id[instr.opcode])
            ii_ap(ii)
            addr = e.addr
            addr_ap(NO_ADDR if addr is None else addr)
            taken = e.taken
            taken_ap(NO_TAKEN if taken is None else (1 if taken else 0))
            npc_ap(e.next_pc)
            res_ap(e.result)
            src_ap(e.src_values)
        note_packed_build(out)
        return out

    def to_entries(self) -> list[TraceEntry]:
        """Materialize the whole trace as legacy entry objects."""
        return list(self)

    # -- sizing / pickling --------------------------------------------

    def column_bytes(self) -> int:
        """Bytes held by the packed integer columns (not the objects)."""
        cols = (self.seqs, self.pcs, self.ops, self.iidx, self.addrs,
                self.takens, self.next_pcs)
        return sum(len(col) * col.itemsize for col in cols)

    def __getstate__(self):
        return (self.instrs, self.reg_srcs, self.seqs, self.pcs, self.ops,
                self.iidx, self.addrs, self.takens, self.next_pcs,
                self.results, self.srcvals)

    def __setstate__(self, state):
        (self.instrs, self.reg_srcs, self.seqs, self.pcs, self.ops,
         self.iidx, self.addrs, self.takens, self.next_pcs,
         self.results, self.srcvals) = state
