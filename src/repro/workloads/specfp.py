"""SPECfp2000 kernel stand-ins.

One kernel per SPECfp benchmark in the paper's Table 1.  The FP
register file is not tracked by the optimizer's integer tables (as in
the paper), so these kernels exercise what the paper reports for
SPECfp: very high rename-time address generation (affine loop
addressing), early execution of loop control, and load removal for
integer-side tables.
"""

from __future__ import annotations

from .common import Workload, lcg_step


def _seed_doubles(label: str, count: int, state: str, tmp: str,
                  ptr: str, cnt: str, ftmp: str = "f20") -> str:
    """Fill *count* doubles at *label* with small pseudo-random values."""
    return (f"        ldi   {cnt}, {count}\n"
            f"        ldi   {ptr}, {label}\n"
            f"fseed_{label}:\n"
            + lcg_step(state, tmp)
            + f"        and   {tmp}, {state}, 1023\n"
            f"        sub   {tmp}, {tmp}, 512\n"
            f"        itof  {ftmp}, {tmp}\n"
            f"        stf   {ftmp}, 0({ptr})\n"
            f"        lda   {ptr}, 8({ptr})\n"
            f"        sub   {cnt}, {cnt}, 1\n"
            f"        bne   {cnt}, fseed_{label}\n")


def ammp_source(scale: int) -> str:
    """Pairwise particle force accumulation (ammp's non-bonded loop)."""
    particles = 64
    rounds = 12 * scale
    return f"""
.data
px:     .space {particles * 8}
pf:     .space {particles * 8}
result: .quad 0
.text
        ldi   r3, 24681
{_seed_doubles('px', particles, 'r3', 'r5', 'r4', 'r1')}
        ldi   r15, {rounds}
        clr   r16
round:  clr   r6
outer:  ldi   r7, px
        s8add r8, r6, r7
        ldf   f1, 0(r8)
        add   r9, r6, 1
        and   r9, r9, {particles - 1}
        s8add r10, r9, r7
        ldf   f2, 0(r10)
        fsub  f3, f1, f2
        fmul  f4, f3, f3
        fadd  f4, f4, f2
        fmul  f5, f4, f3
        ldi   r11, pf
        s8add r12, r6, r11
        ldf   f6, 0(r12)
        fadd  f6, f6, f5
        stf   f6, 0(r12)
        add   r6, r6, 1
        cmplt r13, r6, {particles}
        bne   r13, outer
        add   r16, r16, r6
        sub   r15, r15, 1
        bne   r15, round
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def applu_source(scale: int) -> str:
    """2D 5-point SSOR-style relaxation sweep (applu's smoother)."""
    dim = 16
    sweeps = 6 * scale
    return f"""
.data
grid:   .space {dim * dim * 8}
quarter: .double 0.25
result: .quad 0
.text
        ldi   r3, 11235
{_seed_doubles('grid', dim * dim, 'r3', 'r5', 'r4', 'r1')}
        ldf   f10, quarter(r31)
        ldi   r15, {sweeps}
        clr   r16
sweep:  ldi   r9, grid
        lda   r9, {dim * 8 + 8}(r9)
        ldi   r6, {dim - 2}
rowl:   ldi   r7, {dim - 2}
coll:   ldf   f1, 8(r9)
        ldf   f2, -8(r9)
        fadd  f1, f1, f2
        ldf   f2, {dim * 8}(r9)
        fadd  f1, f1, f2
        ldf   f2, {-dim * 8}(r9)
        fadd  f1, f1, f2
        fmul  f1, f1, f10
        stf   f1, 0(r9)
        add   r16, r16, 1
        lda   r9, 8(r9)
        sub   r7, r7, 1
        bne   r7, coll
        lda   r9, 16(r9)
        sub   r6, r6, 1
        bne   r6, rowl
        sub   r15, r15, 1
        bne   r15, sweep
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def art_source(scale: int) -> str:
    """Neural-network layer evaluation (art's F1/F2 dot products)."""
    inputs = 48
    neurons = 24 * scale
    return f"""
.data
wts:    .space {inputs * 8}
ins:    .space {inputs * 8}
result: .quad 0
.text
        ldi   r3, 36912
{_seed_doubles('wts', inputs, 'r3', 'r5', 'r4', 'r1')}
{_seed_doubles('ins', inputs, 'r3', 'r5', 'r4', 'r1')}
        ldi   r15, {neurons}
        clr   r16
neuron:
{lcg_step('r3', 'r5')}
        and   r5, r3, {inputs - 1}
        ldi   r7, ins
        s8add r8, r5, r7
        and   r5, r3, 2047
        sub   r5, r5, 1024
        itof  f6, r5
        stf   f6, 0(r8)
        ldi   r6, wts
        ldi   r1, {inputs}
        fsub  f3, f3, f3
dot:    ldf   f1, 0(r6)
        ldf   f2, 0(r7)
        fmul  f4, f1, f2
        fadd  f3, f3, f4
        lda   r6, 8(r6)
        lda   r7, 8(r7)
        sub   r1, r1, 1
        bne   r1, dot
        add   r16, r16, 2
        fcmplt f5, f3, f31
        fbne  f5, neg
        add   r16, r16, 1
neg:    sub   r15, r15, 1
        bne   r15, neuron
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def equake_source(scale: int) -> str:
    """Sparse matrix-vector product (equake's smvp kernel)."""
    nnz = 512
    rounds = 4 * scale
    return f"""
.data
cols:   .space {nnz * 8}
vals:   .space {nnz * 8}
vec:    .space 512
out:    .space 512
result: .quad 0
.text
        ldi   r3, 55221
        ldi   r1, {nnz}
        ldi   r4, cols
icfill:
{lcg_step('r3', 'r5')}
        and   r5, r3, 63
        stq   r5, 0(r4)
        lda   r4, 8(r4)
        sub   r1, r1, 1
        bne   r1, icfill
{_seed_doubles('vals', nnz, 'r3', 'r5', 'r4', 'r1')}
{_seed_doubles('vec', 64, 'r3', 'r5', 'r4', 'r1')}
        ldi   r15, {rounds}
        clr   r16
round:  ldi   r6, cols
        ldi   r7, vals
        ldi   r8, vec
        ldi   r9, out
        ldi   r1, {nnz}
nz:     ldq   r10, 0(r6)
        ldf   f1, 0(r7)
        s8add r11, r10, r8
        ldf   f2, 0(r11)
        fmul  f3, f1, f2
        and   r12, r10, 63
        s8add r13, r12, r9
        ldf   f4, 0(r13)
        fadd  f4, f4, f3
        stf   f4, 0(r13)
        lda   r6, 8(r6)
        lda   r7, 8(r7)
        add   r16, r16, 1
        sub   r1, r1, 1
        bne   r1, nz
        sub   r15, r15, 1
        bne   r15, round
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def mesa_source(scale: int) -> str:
    """4x4 matrix vertex transform (mesa's transform pipeline)."""
    verts = 180 * scale
    return f"""
.data
mat:    .space 128
vin:    .space 32
vout:   .space 32
result: .quad 0
.text
        ldi   r3, 77441
{_seed_doubles('mat', 16, 'r3', 'r5', 'r4', 'r1')}
        ldi   r15, {verts}
        clr   r16
vert:
{lcg_step('r3', 'r5')}
        and   r6, r3, 255
        itof  f1, r6
{lcg_step('r3', 'r5')}
        and   r6, r3, 255
        itof  f2, r6
{lcg_step('r3', 'r5')}
        and   r6, r3, 255
        itof  f3, r6
        ldi   r7, mat
        ldi   r8, vout
        ldi   r9, 4
rowt:   ldf   f4, 0(r7)
        fmul  f5, f4, f1
        ldf   f4, 8(r7)
        fmul  f6, f4, f2
        fadd  f5, f5, f6
        ldf   f4, 16(r7)
        fmul  f6, f4, f3
        fadd  f5, f5, f6
        ldf   f4, 24(r7)
        fadd  f5, f5, f4
        stf   f5, 0(r8)
        lda   r7, 32(r7)
        lda   r8, 8(r8)
        sub   r9, r9, 1
        bne   r9, rowt
        add   r16, r16, 1
        sub   r15, r15, 1
        bne   r15, vert
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


def mgrid_source(scale: int) -> str:
    """3D 7-point stencil relaxation (mgrid's resid/psinv kernels)."""
    dim = 8
    sweeps = 6 * scale
    plane = dim * dim * 8
    return f"""
.data
cube:   .space {dim * dim * dim * 8}
result: .quad 0
.text
        ldi   r3, 98765
{_seed_doubles('cube', dim * dim * dim, 'r3', 'r5', 'r4', 'r1')}
        ldi   r15, {sweeps}
        clr   r16
sweep:  ldi   r11, cube
        lda   r11, {plane + dim * 8 + 8}(r11)
        ldi   r6, {dim - 2}
zl:     ldi   r7, {dim - 2}
yl:     ldi   r8, {dim - 2}
xl:     ldf   f1, 0(r11)
        ldf   f2, 8(r11)
        fadd  f1, f1, f2
        ldf   f2, -8(r11)
        fadd  f1, f1, f2
        ldf   f2, {dim * 8}(r11)
        fadd  f1, f1, f2
        ldf   f2, {-dim * 8}(r11)
        fadd  f1, f1, f2
        ldf   f2, {plane}(r11)
        fadd  f1, f1, f2
        ldf   f2, {-plane}(r11)
        fadd  f1, f1, f2
        stf   f1, 0(r11)
        add   r16, r16, 1
        lda   r11, 8(r11)
        sub   r8, r8, 1
        bne   r8, xl
        lda   r11, 16(r11)
        sub   r7, r7, 1
        bne   r7, yl
        lda   r11, {dim * 16}(r11)
        sub   r6, r6, 1
        bne   r6, zl
        sub   r15, r15, 1
        bne   r15, sweep
        ldi   r14, result
        stq   r16, 0(r14)
        halt
"""


WORKLOADS = [
    Workload("ammp", "amp", "SPECfp",
             "pairwise particle force accumulation", ammp_source),
    Workload("applu", "app", "SPECfp",
             "2D 5-point relaxation sweep", applu_source),
    Workload("art", "art", "SPECfp",
             "neural-network dot products", art_source),
    Workload("equake", "eqk", "SPECfp",
             "sparse matrix-vector product", equake_source),
    Workload("mesa", "msa", "SPECfp",
             "4x4 matrix vertex transform", mesa_source),
    Workload("mgrid", "mgd", "SPECfp",
             "3D 7-point stencil relaxation", mgrid_source),
]
