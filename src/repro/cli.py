"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                 list the 22 workloads with suites
``run <workload>``       baseline-vs-optimized comparison for one kernel
``table1`` / ``table3``  regenerate the paper's tables
``fig6`` / ``fig8`` / ``fig9`` / ``fig10`` / ``fig11`` / ``fig12``
                         regenerate the paper's figures
``all``                  everything above, in order
``sweep``                run an arbitrary design-space grid (JSON out)
``search``               design-space search: find the best config in
                         a dimension space (grid/random/halving)
``autotune``             recover Figure 10's best config via search
``fuzz``                 differential-check seeded synthetic programs
                         (emulator vs pipeline, optimizer on/off,
                         segmented vs monolithic)
``serve``                async streaming results service: run sweeps,
                         searches, segmented sweeps, and fuzz
                         campaigns as named concurrent jobs over one
                         shared store (JSON-lines event streams over
                         HTTP)
``watch``                tail one job's event stream from a running
                         ``repro serve`` (reconnects with backoff on
                         transient drops, resuming from the last-seen
                         event)
``worker``               connect to a lease server (``repro serve
                         --workers-port`` or ``repro --backend
                         workers``) and execute work units against a
                         local store replica
``metrics``              fetch and render a running service's
                         telemetry snapshot (``GET /metrics``)
``store gc`` / ``store info``
                         maintain the artifact store (LRU size cap)

Global options: ``--jobs N`` fans simulation out across N worker
processes (0 = all cores); ``--store DIR`` persists oracle traces and
stats in a content-addressed artifact store so re-runs are near-free;
``--segment-insns N`` / ``--segment-mode`` / ``--sample-period`` /
``--warmup-insns`` select a segmented-simulation policy — fixed-size
segments that parallelize *within* a workload, adaptive sizing from
the workload length, or sampled simulation with extrapolated stats
and error bounds (see README "Segmented simulation" for the
semantics); ``--store-max-bytes N`` enforces an
LRU size cap on the store after each sweep.  ``--backend
inline|pool|workers`` pins the execution backend every simulation
routes through (default: inline when serial, a process pool when
``--jobs`` fans out); ``--backend workers`` opens a lease server
(``--workers-port``, default ephemeral) that ``repro worker
--connect host:port`` processes execute for — see README
"Distributed execution".  Sensitivity figures
accept ``--per-suite N`` to bound runtime (default: all workloads; the
benchmark harness uses 2).  ``--scale N`` grows the dynamic
instruction counts of every kernel.  ``--profile`` prints a per-stage
wall-time tree (from the telemetry registry) on stderr after any
command; ``REPRO_TELEMETRY=0`` in the environment disables telemetry
collection entirely.

``sweep`` examples::

    repro --jobs 4 --store .repro-store sweep --suite SPECint \\
        --axis optimizer.vf_delay=0,1,5,10 --optimized --baseline
    repro sweep --workloads mcf,gzip --axis sched_entries=8,16,32
    repro --jobs 0 --store .repro-store --segment-insns 100000 \\
        sweep --workloads mcf --scales 64
    repro --store .repro-store store gc --max-bytes 500000000

``search`` examples::

    repro --jobs 4 --store .repro-store search --workloads mcf,gcc \\
        --dim optimizer.enabled=false,true --dim sched_entries=8..32:8 \\
        --strategy halving --budget 8
    repro search --suite mediabench --dim optimizer.add_depth=0..3 \\
        --strategy random --budget 4 --seed 7 --objective weighted-ipc \\
        --weight untoast=4

``fuzz`` examples::

    repro fuzz --seeds 0:50
    repro fuzz --budget-small --seeds 0:4 --families mixed,branchy

``serve`` / ``watch`` examples::

    repro --store .repro-store --jobs 4 serve --port 8787
    curl -X POST http://127.0.0.1:8787/jobs -d \\
        '{"kind": "sweep", "workloads": ["mcf"], \\
          "axes": ["optimizer.enabled=false,true"]}'
    repro watch j1 --url http://127.0.0.1:8787
    curl http://127.0.0.1:8787/metrics        # Prometheus text
    repro metrics --url http://127.0.0.1:8787 # human rendering

``worker`` examples (distributed execution)::

    repro --store .repro-store serve --workers-port 9900 --resume
    repro worker --connect 127.0.0.1:9900     # as many as you like
    repro --backend workers --workers-port 9900 sweep --suite SPECint \\
        --axis optimizer.enabled=false,true   # serve-less lease server

Synthetic workloads (``synth:<family>@seed=N[,param=V,...]``) are
first-class workload names everywhere a paper kernel is accepted::

    repro sweep --suite synth --axis optimizer.enabled=false,true
    repro run synth:ptrchase@seed=3
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import quick_compare
from .engine.backend import BACKEND_NAMES
from .engine.campaign import Campaign, parse_axis, split_workloads
from .engine.events import format_event
from .engine.pool import run_sweep
from .engine.search import (DEFAULT_RUNG_INSNS, DEFAULT_RUNG_PERIOD,
                            OBJECTIVES, RUNG_MODES, STRATEGIES,
                            SearchSpace, format_result, make_objective,
                            resolve_search_workloads, run_search)
from .engine.segments import SEGMENT_MODES, SegmentPolicy
from .engine.store import ArtifactStore
from .experiments import (autotune, depth, feedback, latency,
                          machine_models, runner, speedup, table1, table3,
                          vf_delay)
from .uarch.config import default_config
from .workloads import ALL_WORKLOADS, get_workload, synth

_FIGURES = {
    "fig8": machine_models,
    "fig9": feedback,
    "fig10": depth,
    "fig11": latency,
    "fig12": vf_delay,
}


def _cmd_list(_args) -> int:
    for workload in ALL_WORKLOADS:
        print(f"{workload.suite:11s}  {workload.name:13s} "
              f"({workload.abbrev})  {workload.description}")
    for name in synth.DEFAULT_ROSTER:
        workload = get_workload(name)
        print(f"{workload.suite:11s}  {workload.name:26s} "
              f"{workload.description}")
    return 0


def _cmd_run(args) -> int:
    result = quick_compare(args.workload, scale=args.scale)
    base = result["baseline"]
    opt = result["optimized"]
    print(f"workload : {result['workload']}")
    print(f"baseline : {base.cycles} cycles (IPC {base.ipc:.3f})")
    print(f"optimized: {opt.cycles} cycles (IPC {opt.ipc:.3f})")
    print(f"speedup  : {result['speedup']:.3f}")
    print(f"early    : {result['early_executed_pct']:.1f}%   "
          f"recovered: {result['mispredicts_recovered_pct']:.1f}%   "
          f"addr-gen: {result['addr_generated_pct']:.1f}%   "
          f"lds-removed: {result['loads_removed_pct']:.1f}%")
    return 0


def _cmd_table(module):
    def run(args) -> int:
        rows = module.run(scale=args.scale, jobs=args.jobs)
        print(module.format(rows))
        return 0
    return run


def _cmd_figure(module):
    def run(args) -> int:
        rows = module.run(scale=args.scale,
                          workloads_per_suite=args.per_suite,
                          jobs=args.jobs)
        print(module.format(rows))
        return 0
    return run


def _cmd_fig6(args) -> int:
    rows = speedup.run(scale=args.scale, jobs=args.jobs)
    print(speedup.format(rows))
    return 0


def _cmd_all(args) -> int:
    for handler in (_cmd_table(table1), _cmd_table(table3), _cmd_fig6,
                    *(_cmd_figure(mod) for mod in _FIGURES.values())):
        handler(args)
        print()
    return 0


def _check_store_cap(args) -> None:
    """Enforce ``--store-max-bytes`` on the store after a sweep."""
    if args.store is None or args.store_max_bytes is None:
        return
    report = ArtifactStore(args.store).gc(args.store_max_bytes)
    if report["evicted"]:
        print(f"store over {args.store_max_bytes} bytes; evicted "
              f"{report['evicted']} LRU artifacts "
              f"({report['freed_bytes']} bytes freed, "
              f"{report['remaining_bytes']} remaining)", file=sys.stderr)


def _usage_error(command: str, error: Exception) -> int:
    """Report a bad-arguments failure the way argparse does (exit 2)."""
    print(f"repro {command}: error: {error}", file=sys.stderr)
    return 2


def _build_segment_policy(args) -> SegmentPolicy | None:
    """The global segmentation options as one validated policy.

    Returns ``None`` when no segmentation flag was given (monolithic
    simulation).  Bad combinations — adaptive with a size, sampled
    without one, a sample period outside sampled mode — surface here,
    at parse time, as the :class:`SegmentPolicy` validation errors.
    """
    if (args.segment_mode is None and args.segment_insns is None
            and args.sample_period is None
            and args.warmup_insns is None):
        return None
    mode = args.segment_mode
    if mode is None:
        if args.segment_insns is None:
            raise ValueError("--sample-period/--warmup-insns need "
                             "--segment-mode sampled")
        mode = "fixed"  # bare --segment-insns keeps its old meaning
    return SegmentPolicy(mode=mode, segment_insns=args.segment_insns,
                         sample_period=args.sample_period,
                         warmup_insns=args.warmup_insns or 0)


#: ``--workloads`` splitting lives beside the campaign spec code now
#: (the service's job specs need it too); the name is kept for the
#: handlers below.
_split_workloads = split_workloads


def _parse_scales(args) -> list[int]:
    """The --scales list, falling back to the global --scale option."""
    if args.scales is None:
        return [args.scale]
    try:
        return [int(s) for s in args.scales.split(",")]
    except ValueError:
        raise ValueError(f"bad --scales {args.scales!r}; expected "
                         f"comma-separated integers") from None


def _cmd_sweep(args) -> int:
    base = default_config()
    if args.optimized:
        base = base.with_optimizer()
    try:
        scales = _parse_scales(args)
        axes = [parse_axis(spec) for spec in args.axis or []]
        campaign = Campaign.from_axes(
            workloads=_split_workloads(args.workloads)
            if args.workloads else None,
            suite=args.suite, scales=scales,
            base=base, axes=axes, include_baseline=args.baseline)
    except (ValueError, TypeError, AttributeError, KeyError) as error:
        # bad --axis syntax, unknown config path, wrong value type,
        # unknown workload: a readable one-liner, not a traceback
        return _usage_error("sweep", error)

    def progress(event) -> None:
        print(format_event(event), file=sys.stderr)

    result = run_sweep(campaign.points(), jobs=args.jobs,
                       store_dir=args.store,
                       progress=progress if not args.quiet else None,
                       segment_policy=args.segment_policy,
                       backend=args.run_backend)
    _check_store_cap(args)
    report = result.to_dict()
    report["campaign"] = {
        "workloads": list(campaign.workloads),
        "scales": list(campaign.scales),
        "variants": [label for label, _ in campaign.variants],
    }
    text = json.dumps(report, indent=2 if args.pretty else None,
                      sort_keys=False)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {len(result.results)} points to {args.out}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def _parse_weights(specs: list[str] | None) -> dict[str, float]:
    weights = {}
    for spec in specs or []:
        # rpartition: synth workload names legitimately contain '='
        # (synth:ilp@seed=0=2.5 weights synth:ilp@seed=0 at 2.5)
        name, sep, value = spec.rpartition("=")
        if not sep or not name or not value:
            raise ValueError(f"bad weight {spec!r}; expected "
                             f"'workload=value'")
        # canonicalize abbreviations (and reject unknown workloads):
        # scoring looks weights up by canonical name, so 'untst=4'
        # must weight 'untoast', not be silently ignored
        weights[get_workload(name.strip()).name] = float(value)
    return weights


def _search_progress(event) -> None:
    """Stream search progress to stderr, one line per evaluation."""
    if event.kind == "evaluation":
        print(format_event(event), file=sys.stderr)


def _cmd_search(args) -> int:
    if args.segment_insns is not None:
        # search evaluations run monolithic traces (halving has its own
        # truncation budget); silently ignoring the flag would fake
        # intra-workload sharding the user asked for
        return _usage_error("search", ValueError(
            "--segment-insns is not supported by search; use "
            "--rung-insns to control halving's truncated budgets"))
    if args.segment_mode is not None or args.sample_period is not None \
            or args.warmup_insns is not None:
        return _usage_error("search", ValueError(
            "the global segmentation options are not supported by "
            "search; use --rung-mode sampled for sampled halving "
            "rungs"))
    base = default_config()
    if args.optimized:
        base = base.with_optimizer()
    try:
        # all argument validation happens here; a failure inside the
        # search itself must surface as a traceback, not be disguised
        # as a usage error
        scales = tuple(_parse_scales(args))
        space = SearchSpace.from_specs(args.dim)
        workloads = resolve_search_workloads(
            _split_workloads(args.workloads) if args.workloads else None,
            args.suite)
        objective = make_objective(args.objective,
                                   _parse_weights(args.weight))
        if args.budget is not None and args.budget <= 0:
            raise ValueError(f"--budget must be > 0, got {args.budget}")
        if args.rung_insns <= 0:
            raise ValueError(f"--rung-insns must be > 0, "
                             f"got {args.rung_insns}")
        if args.rung_period < 2:
            raise ValueError(f"--rung-period must be >= 2, "
                             f"got {args.rung_period}")
    except (ValueError, TypeError, AttributeError, KeyError) as error:
        return _usage_error("search", error)
    result = run_search(
        space, workloads=workloads, scales=scales, base=base,
        strategy=args.strategy, budget=args.budget,
        objective=objective, seed=args.seed,
        rung_insns=args.rung_insns, rung_mode=args.rung_mode,
        rung_period=args.rung_period, jobs=args.jobs,
        store_dir=args.store,
        progress=None if args.quiet else _search_progress,
        backend=args.run_backend)
    _check_store_cap(args)
    report = json.dumps(result.to_dict(),
                        indent=2 if args.pretty else None)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"wrote {len(result.evaluations)} evaluations to "
              f"{args.out}", file=sys.stderr)
    if args.json:
        print(report)
    else:
        print(format_result(result, top=args.top))
    return 0


def _cmd_autotune(args) -> int:
    if args.segment_insns is not None:
        return _usage_error("autotune", ValueError(
            "--segment-insns is not supported by autotune"))
    if args.segment_mode is not None or args.sample_period is not None \
            or args.warmup_insns is not None:
        return _usage_error("autotune", ValueError(
            "the global segmentation options are not supported by "
            "autotune"))
    per_suite = 2 if args.per_suite is None else args.per_suite
    if per_suite <= 0:
        return _usage_error("autotune", ValueError(
            f"--per-suite must be > 0, got {per_suite}"))
    report = autotune.run(scale=args.scale,
                          workloads_per_suite=per_suite,
                          jobs=args.jobs, strategy=args.strategy,
                          seed=args.seed, store_dir=args.store,
                          progress=None if args.quiet
                          else _search_progress)
    print(autotune.format(report))
    return 0 if report.matches_paper else 1


def _parse_seed_range(text: str) -> range:
    lo_text, sep, hi_text = text.partition(":")
    try:
        if sep:
            lo, hi = int(lo_text), int(hi_text)
        else:
            lo, hi = 0, int(lo_text)
    except ValueError:
        raise ValueError(f"bad --seeds {text!r}; expected 'LO:HI' "
                         f"(half-open) or a bare count") from None
    if hi <= lo:
        raise ValueError(f"empty seed range {text!r}")
    return range(lo, hi)


def _cmd_fuzz(args) -> int:
    from .engine.differential import (DEFAULT_SEGMENT_INSNS,
                                      format_report, run_fuzz)
    from .workloads.synth import FAMILIES
    try:
        seeds = _parse_seed_range(args.seeds)
        if args.families:
            families = tuple(f.strip() for f in args.families.split(","))
            unknown = [f for f in families if f not in FAMILIES]
            if unknown:
                raise ValueError(f"unknown families {unknown}; "
                                 f"known: {list(FAMILIES)}")
        else:
            families = FAMILIES
    except ValueError as error:
        return _usage_error("fuzz", error)

    def progress(event):
        print(format_event(event), file=sys.stderr)

    fuzz = run_fuzz(seeds, families=families, scale=args.scale,
                    small=args.budget_small,
                    segment_insns=args.segment_insns
                    or DEFAULT_SEGMENT_INSNS,
                    progress=None if args.quiet else progress,
                    jobs=args.jobs, backend=args.run_backend)
    if args.json:
        print(json.dumps(fuzz.to_dict(),
                         indent=2 if args.pretty else None))
    else:
        print(format_report(fuzz))
    return 0 if fuzz.ok else 1


def _require_store(args) -> ArtifactStore:
    if args.store is None:
        raise SystemExit("store commands need the global --store DIR "
                         "option (e.g. repro --store .repro-store "
                         "store gc --max-bytes 1000000)")
    return ArtifactStore(args.store)


def _cmd_store_gc(args) -> int:
    store = _require_store(args)
    report = store.gc(args.max_bytes)
    print(json.dumps(report))
    return 0


def _cmd_store_info(args) -> int:
    store = _require_store(args)
    print(json.dumps({"root": str(store.root),
                      "total_bytes": store.total_bytes(),
                      "artifacts": store.artifact_count(),
                      "orphaned": store.orphan_info()}))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .engine.service import (TenantLimits, parse_auth_tokens,
                                 run_service)

    def announce(host: str, port: int, store_dir: str) -> None:
        # announced on stdout (and flushed) so scripts — CI's service
        # smoke job — can parse the ephemeral port
        print(f"serving on http://{host}:{port} (store: {store_dir})",
              flush=True)

    # --auth-token flags and the REPRO_AUTH_TOKENS env var (comma
    # separated) merge: the env var suits process managers that keep
    # secrets out of argv, the flag suits tests and one-offs
    specs = list(args.auth_token or [])
    specs += os.environ.get("REPRO_AUTH_TOKENS", "").split(",")
    try:
        auth_tokens = parse_auth_tokens(specs)
        tenant_limits = TenantLimits(
            max_active_jobs=args.tenant_max_jobs,
            rate_per_second=args.tenant_rate,
            burst=args.tenant_burst,
            max_store_bytes=args.tenant_store_bytes)
        backend = args.backend
        if backend == "workers":
            if args.workers_port is None:
                raise ValueError(
                    "--backend workers needs --workers-port to open "
                    "the lease server")
            backend = None  # --workers-port constructs the backend
        if args.resume and args.store is None:
            raise ValueError("--resume re-queues jobs from the store "
                             "journal; it needs the global --store DIR")
    except ValueError as error:
        return _usage_error("serve", error)
    try:
        return asyncio.run(run_service(
            store_dir=args.store, jobs=args.jobs,
            max_concurrent_jobs=args.max_jobs, host=args.host,
            port=args.port, announce=announce,
            auth_tokens=auth_tokens, tenant_limits=tenant_limits,
            backend=backend, workers_port=args.workers_port,
            resume=args.resume))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        return 0
    except (OSError, ValueError) as error:
        # a busy port, unbindable --host, or bad --max-jobs deserves
        # the same one-line treatment every other bad CLI input gets
        return _usage_error("serve", error)


def _cmd_watch(args) -> int:
    from .engine.service import watch_job

    def on_event(event) -> None:
        if args.json:
            print(event.to_json_line(), flush=True)
        else:
            print(format_event(event), flush=True)

    def on_reconnect(attempt: int, error: Exception) -> None:
        print(f"repro watch: connection lost ({error}); reconnecting "
              f"(attempt {attempt}/{args.retries})", file=sys.stderr,
              flush=True)

    try:
        last = watch_job(args.url, args.job, on_event,
                         timeout=args.timeout, token=args.token,
                         retries=args.retries,
                         on_reconnect=on_reconnect)
    except ValueError as error:
        # ServiceError (bad job id, HTTP errors) subclasses
        # ValueError; a bare ValueError is an unknown event kind from
        # a newer server — either way, a clean exit beats a traceback
        print(f"repro watch: error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as error:
        print(f"repro watch: cannot reach {args.url}: {error}",
              file=sys.stderr)
        return 2
    if last is not None and last.kind in ("job-finished", "job-failed"):
        print(_watch_summary(args.job, last), file=sys.stderr)
        return 0 if last.kind == "job-finished" else 1
    # the stream ended without a terminal event: a severed connection
    # or server restart, not a job verdict — report a client error
    print(f"repro watch: stream for {args.job} ended without a "
          f"terminal event", file=sys.stderr)
    return 2


def _watch_summary(job_id: str, last) -> str:
    """One-line job verdict printed after the stream ends.

    On stderr so ``--json`` consumers piping stdout still get pure
    JSON lines.  Wall time and instruction counts come from the
    terminal event's result when the job body reports them (search
    jobs report no retired-instruction total).
    """
    if last.kind == "job-failed":
        state = ("cancelled" if getattr(last, "cancelled", False)
                 else "failed")
        return f"job {job_id} {state}: {last.error}"
    result = last.result or {}
    parts = [f"job {job_id} finished"]
    if result.get("elapsed_seconds") is not None:
        parts.append(f"{result['elapsed_seconds']}s wall")
    if result.get("retired_insns") is not None:
        parts.append(f"{result['retired_insns']} insns simulated")
    if result.get("estimated"):
        # a sampled-mode job's numbers are extrapolations; the verdict
        # line must say so, with the worst per-point 95% CI
        error = result.get("max_relative_error", 0.0)
        parts.append(f"estimated (sampled, ±{error * 100:.2f}%)")
    return ": ".join([parts[0], ", ".join(parts[1:])]) if parts[1:] \
        else parts[0]


def _cmd_worker(args) -> int:
    from .engine.backend import run_worker

    def announce(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    try:
        run_worker(args.connect, store_dir=args.replica,
                   name=args.name, max_units=args.max_units,
                   announce=None if args.quiet else announce)
    except ValueError as error:
        # a malformed --connect spec, before any socket is opened
        return _usage_error("worker", error)
    except KeyboardInterrupt:
        print("repro worker: interrupted", file=sys.stderr)
        return 0
    except (ConnectionError, OSError) as error:
        print(f"repro worker: cannot serve {args.connect}: {error}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_metrics(args) -> int:
    from .engine.service import request_json
    from .engine.telemetry import format_snapshot
    try:
        snapshot = request_json(args.url, "GET", "/metrics?format=json",
                                timeout=args.timeout, token=args.token)
    except ValueError as error:
        # ServiceError subclasses ValueError (bad URL, HTTP errors)
        print(f"repro metrics: error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as error:
        print(f"repro metrics: cannot reach {args.url}: {error}",
              file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(snapshot, indent=2 if args.pretty else None))
        else:
            print(format_snapshot(snapshot))
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error, but
        # point stdout at devnull so the interpreter's exit-time
        # flush doesn't raise a second time
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Continuous Optimization' (ISCA 2005)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--per-suite", type=int, default=None,
                        help="limit sensitivity figures to N workloads "
                             "per suite")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation "
                             "(0 = all cores, default 1)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persistent artifact store directory "
                             "(traces + stats survive across runs)")
    parser.add_argument("--backend", default=None,
                        choices=list(BACKEND_NAMES),
                        help="execution backend for every simulation: "
                             "inline (in-process, serial), pool "
                             "(process pool sized by --jobs), or "
                             "workers (open a lease server — see "
                             "--workers-port — that `repro worker "
                             "--connect` processes execute for); "
                             "default: inline when serial, pool when "
                             "--jobs fans out")
    parser.add_argument("--workers-port", type=int, default=None,
                        metavar="PORT",
                        help="with --backend workers (or serve): TCP "
                             "port for the work-unit lease server "
                             "(0 or unset = ephemeral; the bound port "
                             "is announced on stderr)")
    parser.add_argument("--segment-insns", type=int, default=None,
                        metavar="N",
                        help="split every trace into N-instruction "
                             "segments simulated independently and "
                             "merged (parallelizes within a workload; "
                             "cycle counts carry per-segment cold-start "
                             "+ drain overhead); alone it means "
                             "--segment-mode fixed")
    parser.add_argument("--segment-mode", default=None,
                        choices=list(SEGMENT_MODES),
                        help="segmentation policy: fixed "
                             "(--segment-insns sized), adaptive "
                             "(size chosen from workload length and "
                             "--jobs; no --segment-insns), or sampled "
                             "(simulate every --sample-period'th "
                             "segment and extrapolate with error "
                             "bounds)")
    parser.add_argument("--sample-period", type=int, default=None,
                        metavar="P",
                        help="sampled mode: simulate every P'th "
                             "segment (default 4); results are "
                             "estimates marked with confidence "
                             "intervals")
    parser.add_argument("--warmup-insns", type=int, default=None,
                        metavar="N",
                        help="sampled mode: emulate N extra "
                             "instructions before each sampled segment "
                             "to warm microarchitectural state "
                             "(excluded from its counted window)")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        metavar="N",
                        help="after each sweep, LRU-evict store "
                             "artifacts until the store is <= N bytes")
    parser.add_argument("--profile", action="store_true",
                        help="after the command, print a per-stage "
                             "wall-time tree from the telemetry "
                             "registry on stderr")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list workloads").set_defaults(
        handler=_cmd_list)
    run_parser = sub.add_parser("run", help="compare one workload")
    run_parser.add_argument("workload")
    run_parser.set_defaults(handler=_cmd_run)
    sub.add_parser("table1").set_defaults(handler=_cmd_table(table1))
    sub.add_parser("table3").set_defaults(handler=_cmd_table(table3))
    sub.add_parser("fig6").set_defaults(handler=_cmd_fig6)
    for name, module in _FIGURES.items():
        sub.add_parser(name).set_defaults(handler=_cmd_figure(module))
    sub.add_parser("all", help="every table and figure").set_defaults(
        handler=_cmd_all)
    sweep = sub.add_parser(
        "sweep", help="run a (workload x scale x config) grid",
        description="Run an arbitrary design-space grid and emit JSON "
                    "results (per-point stats plus cache-hit counters).")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated names/abbreviations "
                            "(default: all 22); use ';' as the "
                            "separator when listing parameterized "
                            "synth names that contain commas")
    sweep.add_argument("--suite", default=None,
                       help="sweep one suite (SPECint/SPECfp/mediabench)")
    sweep.add_argument("--scales", default=None,
                       help="comma-separated scale factors (default: the "
                            "global --scale value)")
    sweep.add_argument("--axis", action="append", metavar="PATH=V1,V2,...",
                       help="config axis, e.g. optimizer.vf_delay=0,1,5; "
                            "repeatable (axes take a cartesian product)")
    sweep.add_argument("--optimized", action="store_true",
                       help="enable the continuous optimizer on the "
                            "base config before applying axes")
    sweep.add_argument("--baseline", action="store_true",
                       help="also include the optimizer-off baseline "
                            "as a variant")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="write the JSON report here instead of stdout")
    sweep.add_argument("--pretty", action="store_true",
                       help="indent the JSON output")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-shard progress on stderr")
    sweep.set_defaults(handler=_cmd_sweep)
    search = sub.add_parser(
        "search", help="design-space search for the best config",
        description="Search a dimension space for the MachineConfig "
                    "maximizing an objective; streams per-evaluation "
                    "progress and, with --store, resumes a killed "
                    "search from its manifest.")
    search.add_argument("--dim", action="append", required=True,
                        metavar="PATH=LO..HI[:STEP]|PATH=V1,V2,...",
                        help="search dimension: int range "
                             "(sched_entries=8..32:8) or categorical "
                             "(optimizer.enabled=false,true); repeatable")
    search.add_argument("--workloads", default=None,
                        help="comma-separated names/abbreviations to "
                             "score candidates on (';' separator for "
                             "parameterized synth names with commas)")
    search.add_argument("--suite", default=None,
                        help="score candidates on one whole suite")
    search.add_argument("--scales", default=None,
                        help="comma-separated scale factors (default: "
                             "the global --scale value)")
    search.add_argument("--strategy", default="random",
                        choices=list(STRATEGIES),
                        help="grid (exhaustive), random (seeded "
                             "sampling), or halving (short-budget "
                             "rungs, full-run finals)")
    search.add_argument("--budget", type=int, default=None, metavar="N",
                        help="max candidates to consider (default: the "
                             "whole space)")
    search.add_argument("--objective", default="geomean-ipc",
                        choices=list(OBJECTIVES),
                        help="score to maximize across workloads")
    search.add_argument("--weight", action="append", metavar="WORKLOAD=W",
                        help="weighted-ipc workload weight; repeatable "
                             "(unlisted workloads weigh 1.0)")
    search.add_argument("--seed", type=int, default=0,
                        help="RNG seed for random/halving sampling")
    search.add_argument("--rung-insns", type=int,
                        default=DEFAULT_RUNG_INSNS, metavar="N",
                        help="halving's first-rung instruction budget "
                             "(doubles per rung; default "
                             f"{DEFAULT_RUNG_INSNS}); with --rung-mode "
                             "sampled, the segment size instead")
    search.add_argument("--rung-mode", default="limit",
                        choices=list(RUNG_MODES),
                        help="how halving rungs spend their budget: "
                             "limit truncates each trace to the rung "
                             "budget; sampled simulates every Nth "
                             "segment of the whole trace and "
                             "extrapolates (finals are exact either "
                             "way)")
    search.add_argument("--rung-period", type=int,
                        default=DEFAULT_RUNG_PERIOD, metavar="P",
                        help="sampled rungs' first sample period "
                             "(halves — doubling coverage — per rung, "
                             f"floored at 2; default "
                             f"{DEFAULT_RUNG_PERIOD})")
    search.add_argument("--optimized", action="store_true",
                        help="enable the continuous optimizer on the "
                             "base config before searching")
    search.add_argument("--top", type=int, default=5,
                        help="ranked candidates in the human report")
    search.add_argument("--json", action="store_true",
                        help="emit the JSON report on stdout instead "
                             "of the human summary")
    search.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    search.add_argument("--pretty", action="store_true",
                        help="indent the JSON report")
    search.add_argument("--quiet", action="store_true",
                        help="suppress per-evaluation progress on "
                             "stderr")
    search.set_defaults(handler=_cmd_search)
    autotune_parser = sub.add_parser(
        "autotune", help="recover Figure 10's best config via search",
        description="Search the optimizer's dependence-depth space on "
                    "mediabench and report whether the winner matches "
                    "the paper's Figure 10 (exit 1 if it does not).")
    autotune_parser.add_argument("--strategy", default="halving",
                                 choices=list(STRATEGIES))
    autotune_parser.add_argument("--seed", type=int, default=0)
    autotune_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-evaluation progress")
    autotune_parser.set_defaults(handler=_cmd_autotune)
    fuzz = sub.add_parser(
        "fuzz", help="differential-check synthetic programs",
        description="Generate seeded synthetic programs and check, "
                    "for each: emulator state == optimizer-on pipeline "
                    "retirement; optimizer on == optimizer off; "
                    "segmented == monolithic counters.  Exit 1 if any "
                    "check disagrees.")
    fuzz.add_argument("--seeds", default="0:8", metavar="LO:HI",
                      help="half-open seed range per family "
                           "(default 0:8; a bare N means 0:N)")
    fuzz.add_argument("--families", default=None,
                      help="comma-separated synth families "
                           "(default: all five)")
    fuzz.add_argument("--budget-small", action="store_true",
                      help="tiny program parameters (CI smoke budget)")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the JSON report instead of the "
                           "human summary")
    fuzz.add_argument("--pretty", action="store_true",
                      help="indent the JSON report")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress per-program progress on stderr")
    fuzz.set_defaults(handler=_cmd_fuzz)
    serve = sub.add_parser(
        "serve", help="async streaming results service",
        description="Run sweeps, searches, segmented sweeps, and fuzz "
                    "campaigns as named concurrent jobs over one "
                    "shared artifact store; JSON-lines event streams "
                    "over HTTP (POST /jobs, GET /jobs, "
                    "GET /jobs/<id>/events, DELETE /jobs/<id>).  Uses "
                    "the global --store and --jobs options.")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port (0 = ephemeral; the actual port "
                            "is announced on stdout; default 8787)")
    serve.add_argument("--max-jobs", type=int, default=4, metavar="N",
                       help="jobs executing concurrently; excess "
                            "submissions queue (default 4)")
    serve.add_argument("--auth-token", action="append", default=None,
                       metavar="TENANT:TOKEN",
                       help="require bearer-token auth; repeatable "
                            "(one entry per tenant token; a bare TOKEN "
                            "maps to tenant 'default').  Merged with "
                            "the comma-separated REPRO_AUTH_TOKENS "
                            "env var.  Without any, the server stays "
                            "open and anonymous")
    serve.add_argument("--tenant-max-jobs", type=int, default=8,
                       metavar="N",
                       help="per-tenant active-job quota (default 8; "
                            "only applies to authenticated tenants)")
    serve.add_argument("--tenant-rate", type=float, default=10.0,
                       metavar="R",
                       help="per-tenant POST /jobs token-bucket refill "
                            "rate per second (<= 0 disables; "
                            "default 10)")
    serve.add_argument("--tenant-burst", type=int, default=20,
                       metavar="N",
                       help="per-tenant token-bucket burst size "
                            "(default 20)")
    serve.add_argument("--tenant-store-bytes", type=int, default=None,
                       metavar="N",
                       help="per-tenant store byte budget, LRU-enforced "
                            "on the tenant's own namespace after each "
                            "finished job (default: unbounded)")
    # SUPPRESS: absent, the subparser must not clobber the global
    # --workers-port value already parsed into the namespace
    serve.add_argument("--workers-port", type=int,
                       default=argparse.SUPPRESS, metavar="PORT",
                       help="open a work-unit lease server on PORT "
                            "(0 = ephemeral) and execute every job on "
                            "connected `repro worker` processes")
    serve.add_argument("--resume", action="store_true",
                       help="re-queue the store journal's unfinished "
                            "jobs (submitted but not finished when the "
                            "last server stopped) before serving; "
                            "needs the global --store")
    serve.set_defaults(handler=_cmd_serve)
    watch = sub.add_parser(
        "watch", help="tail one job's event stream",
        description="Connect to a running `repro serve` and stream a "
                    "job's events (history first, then live) until "
                    "the job ends.  Exit 0 on job-finished, 1 on "
                    "job-failed/cancelled, 2 on client errors.")
    watch.add_argument("job", help="job id (e.g. j1)")
    watch.add_argument("--url", default="http://127.0.0.1:8787",
                       help="service base URL "
                            "(default http://127.0.0.1:8787)")
    watch.add_argument("--json", action="store_true",
                       help="print raw JSON-lines events instead of "
                            "the human rendering")
    watch.add_argument("--timeout", type=float, default=600.0,
                       help="socket timeout in seconds (default 600)")
    watch.add_argument("--token",
                       default=os.environ.get("REPRO_AUTH_TOKEN"),
                       help="bearer token for an auth-enabled service "
                            "(default: the REPRO_AUTH_TOKEN env var)")
    watch.add_argument("--retries", type=int, default=5, metavar="N",
                       help="reconnect attempts after a mid-stream "
                            "connection drop (exponential backoff, "
                            "resuming from the last-seen event; "
                            "0 disables; default 5)")
    watch.set_defaults(handler=_cmd_watch)
    worker = sub.add_parser(
        "worker", help="execute work units for a lease server",
        description="Connect to a work-unit lease server (`repro "
                    "serve --workers-port` or `repro --backend "
                    "workers`), lease units, execute them against a "
                    "local store replica synced by content hash, and "
                    "ship results back; loops until the server "
                    "releases the worker.  Exit 1 if the server is "
                    "unreachable.")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="lease server address (as announced by "
                             "the server)")
    worker.add_argument("--name", default=None,
                        help="worker name in events and metrics "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--replica", default=None, metavar="DIR",
                        help="local store replica directory (default: "
                             "a temporary replica removed on exit; a "
                             "persistent one makes blob pulls "
                             "incremental across runs)")
    worker.add_argument("--max-units", type=int, default=None,
                        metavar="N",
                        help="exit after executing N units (default: "
                             "loop until released)")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-unit progress on stderr")
    worker.set_defaults(handler=_cmd_worker)
    metrics = sub.add_parser(
        "metrics", help="fetch a running service's telemetry",
        description="Fetch GET /metrics?format=json from a running "
                    "`repro serve` and render the snapshot (counters, "
                    "gauges, histogram summaries).  Exit 2 if the "
                    "service is unreachable.")
    metrics.add_argument("--url", default="http://127.0.0.1:8787",
                         help="service base URL "
                              "(default http://127.0.0.1:8787)")
    metrics.add_argument("--json", action="store_true",
                         help="print the raw JSON snapshot instead of "
                              "the human rendering")
    metrics.add_argument("--pretty", action="store_true",
                         help="indent the JSON snapshot")
    metrics.add_argument("--timeout", type=float, default=30.0,
                         help="socket timeout in seconds (default 30)")
    metrics.add_argument("--token",
                         default=os.environ.get("REPRO_AUTH_TOKEN"),
                         help="bearer token for an auth-enabled "
                              "service (default: the REPRO_AUTH_TOKEN "
                              "env var; /metrics itself is served "
                              "unauthenticated)")
    metrics.set_defaults(handler=_cmd_metrics)
    store = sub.add_parser(
        "store", help="artifact-store maintenance",
        description="Maintain the --store directory: inspect its size "
                    "or LRU-evict artifacts down to a byte cap.")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used artifacts")
    store_gc.add_argument("--max-bytes", type=int, required=True,
                          help="target store size in bytes")
    store_gc.set_defaults(handler=_cmd_store_gc)
    store_sub.add_parser("info", help="store size and artifact counts") \
        .set_defaults(handler=_cmd_store_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        args.segment_policy = _build_segment_policy(args)
    except ValueError as error:
        # bad flag combination (adaptive with a size, a sample period
        # outside sampled mode, ...): exit 2 like any other bad input
        return _usage_error(args.command, error)
    owned_backend = None
    if args.backend == "workers" and args.command not in ("serve",
                                                          "worker"):
        # a serve-less lease server for this one command: announce the
        # connect address so workers can be attached from elsewhere
        # (serve builds its own; worker is the other end of the wire)
        from .engine.backend import SocketWorkerBackend
        from .engine.pool import resolve_jobs
        owned_backend = SocketWorkerBackend(
            store_dir=args.store, port=args.workers_port or 0,
            parallelism=resolve_jobs(args.jobs),
            on_event=lambda event: print(format_event(event),
                                         file=sys.stderr, flush=True))
        print(f"leasing work units on "
              f"{owned_backend.host}:{owned_backend.port} (connect "
              f"workers with: repro worker --connect "
              f"{owned_backend.host}:{owned_backend.port})",
              file=sys.stderr, flush=True)
    # handlers and the experiment runner see the same backend: a live
    # instance for workers, the bare name otherwise (serve threads the
    # name itself — its lease server belongs to the event loop)
    args.run_backend = owned_backend if owned_backend is not None \
        else (None if args.backend == "workers" else args.backend)
    try:
        runner.configure(store_dir=args.store, jobs=args.jobs,
                         segment_policy=args.segment_policy,
                         backend=args.run_backend)
        code = args.handler(args)
    finally:
        if owned_backend is not None:
            owned_backend.close()
    if args.profile:
        from .engine.telemetry import TELEMETRY, format_profile
        print(format_profile(TELEMETRY.snapshot()), file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
