"""Unit and property tests for repro.functional.alu.

The ALU is shared by the emulator, the execution units, and the
optimizer's rename-stage ALUs, so its 64-bit semantics anchor the
whole reproduction's correctness.
"""

import pytest
from hypothesis import given, strategies as st

from repro.functional import alu
from repro.isa.opcodes import BranchCond, Opcode

i64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


class TestWrapping:
    def test_to_signed64_identity_in_range(self):
        assert alu.to_signed64(42) == 42
        assert alu.to_signed64(-42) == -42

    def test_to_signed64_wraps_positive_overflow(self):
        assert alu.to_signed64(2 ** 63) == -(2 ** 63)

    def test_to_signed64_wraps_negative_overflow(self):
        assert alu.to_signed64(-(2 ** 63) - 1) == 2 ** 63 - 1

    def test_to_unsigned64(self):
        assert alu.to_unsigned64(-1) == 2 ** 64 - 1
        assert alu.to_unsigned64(5) == 5

    @given(i64)
    def test_signed_unsigned_roundtrip(self, value):
        assert alu.to_signed64(alu.to_unsigned64(value)) == value

    def test_sign_extend_byte(self):
        assert alu.sign_extend(0xFF, 1) == -1
        assert alu.sign_extend(0x7F, 1) == 127

    def test_sign_extend_word(self):
        assert alu.sign_extend(0x8000, 2) == -32768

    def test_zero_extend(self):
        assert alu.zero_extend(0xFF, 1) == 255
        assert alu.zero_extend(-1, 4) == 0xFFFFFFFF


class TestIntegerOps:
    @pytest.mark.parametrize("op,a,b,expected", [
        (Opcode.ADD, 2, 3, 5),
        (Opcode.ADD, 2 ** 63 - 1, 1, -(2 ** 63)),
        (Opcode.SUB, 3, 5, -2),
        (Opcode.SUB, -(2 ** 63), 1, 2 ** 63 - 1),
        (Opcode.AND, 0b1100, 0b1010, 0b1000),
        (Opcode.OR, 0b1100, 0b1010, 0b1110),
        (Opcode.XOR, 0b1100, 0b1010, 0b0110),
        (Opcode.BIC, 0b1111, 0b1010, 0b0101),
        (Opcode.SLL, 1, 4, 16),
        (Opcode.SLL, 1, 63, -(2 ** 63)),
        (Opcode.SRL, -1, 1, 2 ** 63 - 1),
        (Opcode.SRA, -8, 1, -4),
        (Opcode.S4ADD, 3, 5, 17),
        (Opcode.S8ADD, 3, 5, 29),
        (Opcode.MUL, 7, 6, 42),
        (Opcode.CMPEQ, 4, 4, 1),
        (Opcode.CMPEQ, 4, 5, 0),
        (Opcode.CMPNE, 4, 5, 1),
        (Opcode.CMPLT, -1, 0, 1),
        (Opcode.CMPLE, 5, 5, 1),
        (Opcode.CMPULT, -1, 0, 0),  # unsigned: -1 is huge
        (Opcode.CMPULE, 0, -1, 1),
        (Opcode.DIV, 7, 2, 3),
        (Opcode.DIV, -7, 2, -3),  # truncate toward zero
        (Opcode.DIV, 7, -2, -3),
        (Opcode.REM, 7, 2, 1),
        (Opcode.REM, -7, 2, -1),
        (Opcode.DIV, 5, 0, 0),  # defined, no trap
        (Opcode.REM, 5, 0, 0),
        (Opcode.LDA, 100, 8, 108),
    ])
    def test_binary_semantics(self, op, a, b, expected):
        assert alu.evaluate_int(op, a, b) == expected

    def test_shift_amount_masked_to_6_bits(self):
        assert alu.evaluate_int(Opcode.SLL, 1, 64) == 1
        assert alu.evaluate_int(Opcode.SRL, 4, 65) == 2

    @pytest.mark.parametrize("op,a,expected", [
        (Opcode.MOV, -5, -5),
        (Opcode.SEXTB, 0x1FF, -1),
        (Opcode.SEXTW, 0x18000, -32768),
        (Opcode.SEXTL, 0x80000000, -(2 ** 31)),
    ])
    def test_unary_semantics(self, op, a, expected):
        assert alu.evaluate_int(op, a) == expected

    def test_non_alu_opcode_rejected(self):
        with pytest.raises(ValueError):
            alu.evaluate_int(Opcode.LDQ, 1, 2)

    @given(i64, i64)
    def test_add_sub_inverse(self, a, b):
        total = alu.evaluate_int(Opcode.ADD, a, b)
        assert alu.evaluate_int(Opcode.SUB, total, b) == a

    @given(i64, i64)
    def test_results_stay_in_64_bit_range(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.S4ADD,
                   Opcode.S8ADD, Opcode.AND, Opcode.OR, Opcode.XOR):
            result = alu.evaluate_int(op, a, b)
            assert -(2 ** 63) <= result <= 2 ** 63 - 1

    @given(i64)
    def test_s4add_matches_shift_add(self, a):
        assert (alu.evaluate_int(Opcode.S4ADD, a, 7)
                == alu.to_signed64((a << 2) + 7))

    @given(i64, i64)
    def test_div_rem_reconstruct(self, a, b):
        quotient = alu.evaluate_int(Opcode.DIV, a, b)
        remainder = alu.evaluate_int(Opcode.REM, a, b)
        if b != 0:
            assert alu.to_signed64(quotient * b + remainder) == a


class TestFloatOps:
    def test_fadd(self):
        assert alu.evaluate_fp(Opcode.FADD, 1.5, 2.5) == 4.0

    def test_fsub(self):
        assert alu.evaluate_fp(Opcode.FSUB, 1.0, 2.5) == -1.5

    def test_fmul(self):
        assert alu.evaluate_fp(Opcode.FMUL, 3.0, -2.0) == -6.0

    def test_fdiv(self):
        assert alu.evaluate_fp(Opcode.FDIV, 3.0, 2.0) == 1.5

    def test_fdiv_by_zero_defined(self):
        assert alu.evaluate_fp(Opcode.FDIV, 3.0, 0.0) == 0.0

    def test_fcmp_writes_zero_or_one(self):
        assert alu.evaluate_fp(Opcode.FCMPLT, 1.0, 2.0) == 1.0
        assert alu.evaluate_fp(Opcode.FCMPLT, 2.0, 1.0) == 0.0
        assert alu.evaluate_fp(Opcode.FCMPEQ, 2.0, 2.0) == 1.0
        assert alu.evaluate_fp(Opcode.FCMPLE, 2.0, 2.0) == 1.0

    def test_fmov_fneg(self):
        assert alu.evaluate_fp(Opcode.FMOV, -1.5) == -1.5
        assert alu.evaluate_fp(Opcode.FNEG, -1.5) == 1.5

    def test_conversions(self):
        assert alu.convert_itof(-3) == -3.0
        assert alu.convert_ftoi(2.9) == 2
        assert alu.convert_ftoi(-2.9) == -2

    def test_ftoi_nan_and_inf_defined(self):
        assert alu.convert_ftoi(float("nan")) == 0
        assert alu.convert_ftoi(float("inf")) == 0
        assert alu.convert_ftoi(float("-inf")) == 0


class TestBranchConditions:
    @pytest.mark.parametrize("cond,value,expected", [
        (BranchCond.EQ, 0, True), (BranchCond.EQ, 1, False),
        (BranchCond.NE, 0, False), (BranchCond.NE, -1, True),
        (BranchCond.LT, -1, True), (BranchCond.LT, 0, False),
        (BranchCond.GE, 0, True), (BranchCond.GE, -1, False),
        (BranchCond.LE, 0, True), (BranchCond.LE, 1, False),
        (BranchCond.GT, 1, True), (BranchCond.GT, 0, False),
        (BranchCond.ALWAYS, 0, True),
    ])
    def test_conditions(self, cond, value, expected):
        assert alu.branch_taken(cond, value) is expected

    @given(i64)
    def test_complementary_conditions(self, value):
        assert (alu.branch_taken(BranchCond.EQ, value)
                != alu.branch_taken(BranchCond.NE, value))
        assert (alu.branch_taken(BranchCond.LT, value)
                != alu.branch_taken(BranchCond.GE, value))
        assert (alu.branch_taken(BranchCond.LE, value)
                != alu.branch_taken(BranchCond.GT, value))


class TestIsIntAluOp:
    def test_alu_ops_recognized(self):
        assert alu.is_int_alu_op(Opcode.ADD)
        assert alu.is_int_alu_op(Opcode.MOV)
        assert alu.is_int_alu_op(Opcode.LDA)

    def test_non_alu_ops_rejected(self):
        assert not alu.is_int_alu_op(Opcode.LDQ)
        assert not alu.is_int_alu_op(Opcode.BEQ)
        assert not alu.is_int_alu_op(Opcode.FADD)
