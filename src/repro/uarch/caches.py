"""Set-associative cache models and the two-level hierarchy.

Latency-oriented model matching the paper's Table 2: a 64 KB 4-way L1I,
a 32 KB 2-way L1D, a unified 1 MB 2-way L2, and flat 100-cycle memory.
Each access returns the total latency and updates LRU/fill state.
Bandwidth is modeled at the port level by the pipeline (2 D-cache
ports), not here; MSHR occupancy is not modeled, which matches the
original SimpleScalar-derived infrastructure's level of detail.
"""

from __future__ import annotations

from .config import CacheConfig


class Cache:
    """One set-associative, write-allocate, LRU cache level."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # Each set is an ordered list of tags, most recent last.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (
            self.config.num_sets.bit_length() - 1)

    def access(self, addr: int) -> bool:
        """Touch *addr*; fill on miss.  Returns True on a hit."""
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.assoc:
            ways.pop(0)
        return False

    def probe(self, addr: int) -> bool:
        """Check for *addr* without updating any state."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]

    def line_address(self, addr: int) -> int:
        """The line-aligned address containing *addr*."""
        return (addr >> self._line_shift) << self._line_shift

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 and flat main memory."""

    def __init__(self, il1: CacheConfig, dl1: CacheConfig, l2: CacheConfig,
                 memory_latency: int):
        self.il1 = Cache(il1, "il1")
        self.dl1 = Cache(dl1, "dl1")
        self.l2 = Cache(l2, "l2")
        self.memory_latency = memory_latency

    def _l2_or_memory(self, addr: int) -> int:
        if self.l2.access(addr):
            return self.l2.config.latency
        return self.l2.config.latency + self.memory_latency

    def ifetch(self, addr: int) -> int:
        """Instruction fetch at *addr*; returns total latency in cycles."""
        if self.il1.access(addr):
            return self.il1.config.latency
        return self.il1.config.latency + self._l2_or_memory(addr)

    def dread(self, addr: int) -> int:
        """Data read at *addr*; returns total latency in cycles."""
        if self.dl1.access(addr):
            return self.dl1.config.latency
        return self.dl1.config.latency + self._l2_or_memory(addr)

    def dwrite(self, addr: int) -> int:
        """Data write at *addr* (write-allocate); returns latency."""
        return self.dread(addr)
