"""Unit tests for repro.isa.registers."""

import pytest

from repro.isa import registers as R


class TestRegisterSpaces:
    def test_int_reg_indices(self):
        assert R.int_reg(0) == 0
        assert R.int_reg(31) == 31

    def test_fp_reg_indices_offset(self):
        assert R.fp_reg(0) == 32
        assert R.fp_reg(31) == 63

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            R.int_reg(32)
        with pytest.raises(ValueError):
            R.int_reg(-1)

    def test_fp_reg_out_of_range(self):
        with pytest.raises(ValueError):
            R.fp_reg(32)

    def test_is_int_reg(self):
        assert R.is_int_reg(0)
        assert R.is_int_reg(31)
        assert not R.is_int_reg(32)
        assert not R.is_int_reg(-1)

    def test_is_fp_reg(self):
        assert R.is_fp_reg(32)
        assert R.is_fp_reg(63)
        assert not R.is_fp_reg(31)
        assert not R.is_fp_reg(64)

    def test_zero_registers(self):
        assert R.is_zero_reg(R.ZERO_REG)
        assert R.is_zero_reg(R.FP_ZERO_REG)
        assert not R.is_zero_reg(0)
        assert not R.is_zero_reg(30)

    def test_conventions(self):
        assert R.RETURN_ADDR_REG == 26
        assert R.STACK_POINTER_REG == 30


class TestNames:
    def test_reg_name_int(self):
        assert R.reg_name(5) == "r5"
        assert R.reg_name(31) == "r31"

    def test_reg_name_fp(self):
        assert R.reg_name(32) == "f0"
        assert R.reg_name(63) == "f31"

    def test_reg_name_out_of_range(self):
        with pytest.raises(ValueError):
            R.reg_name(64)

    def test_parse_reg_int(self):
        assert R.parse_reg("r7") == 7
        assert R.parse_reg("R7") == 7
        assert R.parse_reg("  r31 ") == 31

    def test_parse_reg_fp(self):
        assert R.parse_reg("f2") == 34

    @pytest.mark.parametrize("bad", ["x1", "r", "f", "r32", "f99", "r1.5",
                                     "", "7", "rone"])
    def test_parse_reg_rejects(self, bad):
        with pytest.raises(ValueError):
            R.parse_reg(bad)

    def test_roundtrip_all_registers(self):
        for index in range(R.NUM_ARCH_REGS):
            assert R.parse_reg(R.reg_name(index)) == index
