"""Service load harness: N concurrent submitters against one server.

Drives a live :class:`~repro.engine.service.ServiceServer` (real HTTP
over a loopback socket, not in-process manager calls) with several
submitter threads, each POSTing jobs and watching their event streams
to completion.  Client-side job latencies (submit -> terminal event)
give exact p50/p95/p99; a sampler thread scrapes ``/metrics`` during
the run for the server's view (peak queue depth, finished counters).

The machine-readable result lands in
``benchmarks/results/BENCH_service_load.json`` — throughput,
latency percentiles, peak queue depth — both under pytest and when
run standalone::

    PYTHONPATH=src python benchmarks/bench_service_load.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import RESULTS_DIR, publish  # noqa: E402

#: All submitters share one store, so the first job pays emulation +
#: simulation and later jobs hit warm artifacts — a realistic mixed
#: latency distribution that also exercises the store/cache metrics.
JOB_SPEC = {"kind": "sweep", "workloads": ["untoast"]}

SMOKE_WORKERS, SMOKE_JOBS_EACH = 2, 2
FULL_WORKERS, FULL_JOBS_EACH = 4, 4

#: Counter families a loaded server's /metrics scrape must cover.
EXPECTED_METRICS = ("repro_jobs_submitted_total",
                    "repro_jobs_finished_total",
                    "repro_job_queue_depth",
                    "repro_store_put_bytes_total",
                    "repro_sim_runs_total")


class ServiceThread:
    """A JobManager + ServiceServer on a background asyncio loop."""

    def __init__(self, max_concurrent_jobs: int = 4):
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(max_concurrent_jobs)),
            daemon=True)
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service thread failed to start")

    async def _main(self, max_concurrent_jobs: int) -> None:
        from repro.engine.service import JobManager, ServiceServer
        manager = JobManager(jobs=1,
                             max_concurrent_jobs=max_concurrent_jobs)
        server = ServiceServer(manager, port=0)
        self.port = await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        serving = asyncio.create_task(server.serve_forever())
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            serving.cancel()
            await server.stop()
            await manager.close()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile over raw client-side samples."""
    if not sorted_values:
        return 0.0
    rank = round(q * (len(sorted_values) - 1))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


def _submitter(url: str, jobs_each: int, latencies: list[float],
               errors: list[str], lock: threading.Lock) -> None:
    from repro.engine.service import request_json, watch_job
    for _ in range(jobs_each):
        started = time.perf_counter()
        try:
            job = request_json(url, "POST", "/jobs", JOB_SPEC)
            last = watch_job(url, job["id"], lambda event: None,
                             timeout=300.0)
            elapsed = time.perf_counter() - started
            with lock:
                if last is None or last.kind != "job-finished":
                    errors.append(f"job {job['id']} ended "
                                  f"{getattr(last, 'kind', None)}")
                latencies.append(elapsed)
        except Exception as error:  # keep the other submitters going
            with lock:
                errors.append(f"{type(error).__name__}: {error}")


def _sample_metrics(url: str, stop: threading.Event,
                    peaks: dict) -> None:
    """Scrape /metrics?format=json during the run; track peak depth."""
    from repro.engine.service import request_json
    while not stop.is_set():
        try:
            snap = request_json(url, "GET", "/metrics?format=json",
                                timeout=10.0)
        except Exception:
            break  # server is shutting down
        depth = snap.get("gauges", {}) \
            .get("repro_job_queue_depth", {}).get("", 0)
        peaks["queue_depth"] = max(peaks.get("queue_depth", 0), depth)
        stop.wait(0.05)


def run_load(smoke: bool) -> dict:
    """Run the load scenario; returns the BENCH JSON payload."""
    from repro.engine.service import request_json
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    jobs_each = SMOKE_JOBS_EACH if smoke else FULL_JOBS_EACH
    latencies: list[float] = []
    errors: list[str] = []
    peaks: dict = {}
    lock = threading.Lock()
    service = ServiceThread()
    stop_sampler = threading.Event()
    started = time.perf_counter()
    try:
        sampler = threading.Thread(
            target=_sample_metrics,
            args=(service.url, stop_sampler, peaks), daemon=True)
        sampler.start()
        threads = [threading.Thread(
            target=_submitter,
            args=(service.url, jobs_each, latencies, errors, lock))
            for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop_sampler.set()
        sampler.join(5)
        snapshot = request_json(service.url, "GET",
                                "/metrics?format=json")
    finally:
        stop_sampler.set()
        service.close()
    if errors:
        raise AssertionError(f"load run had failures: {errors}")
    finished = snapshot["counters"] \
        .get("repro_jobs_finished_total", {}).get("", 0)
    latencies.sort()
    total_jobs = workers * jobs_each
    return {
        "smoke": smoke,
        "workers": workers,
        "jobs_per_worker": jobs_each,
        "jobs_total": total_jobs,
        "jobs_finished_total": finished,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_jobs_per_second": round(total_jobs / elapsed, 4),
        "latency_p50_seconds": round(_percentile(latencies, 0.50), 4),
        "latency_p95_seconds": round(_percentile(latencies, 0.95), 4),
        "latency_p99_seconds": round(_percentile(latencies, 0.99), 4),
        "latency_max_seconds": round(latencies[-1], 4)
        if latencies else 0.0,
        "peak_queue_depth": peaks.get("queue_depth", 0),
    }


def _format(payload: dict) -> str:
    return "\n".join([
        "Service load: concurrent submitters over HTTP",
        f"workers: {payload['workers']} x "
        f"{payload['jobs_per_worker']} jobs "
        f"({payload['jobs_total']} total, spec {JOB_SPEC})",
        f"elapsed: {payload['elapsed_seconds']:.2f} s  "
        f"({payload['throughput_jobs_per_second']:.2f} jobs/s)",
        f"latency: p50 {payload['latency_p50_seconds']:.3f} s   "
        f"p95 {payload['latency_p95_seconds']:.3f} s   "
        f"p99 {payload['latency_p99_seconds']:.3f} s   "
        f"max {payload['latency_max_seconds']:.3f} s",
        f"peak queue depth: {payload['peak_queue_depth']}",
    ])


def _publish(payload: dict, smoke: bool) -> None:
    publish("service_load", _format(payload), smoke, data=payload)
    # the canonical name, regardless of budget: downstream tooling
    # (and CI's load-smoke step) looks for BENCH_service_load.json
    if smoke:
        (RESULTS_DIR / "BENCH_service_load.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_service_load(smoke):
    payload = run_load(smoke)
    assert payload["jobs_finished_total"] >= payload["jobs_total"]
    for name in ("latency_p50_seconds", "latency_p95_seconds",
                 "latency_p99_seconds"):
        assert payload[name] >= 0.0
    assert payload["latency_p50_seconds"] \
        <= payload["latency_p95_seconds"] \
        <= payload["latency_p99_seconds"]
    _publish(payload, smoke)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-budget mode (CI's load-smoke step)")
    args = parser.parse_args(argv)
    payload = run_load(args.smoke)
    _publish(payload, args.smoke)
    print(_format(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
