"""Machine and optimizer configuration (Table 2 of the paper).

:class:`MachineConfig` defaults reproduce the paper's simulated machine:
4-wide fetch/decode/rename, 6-wide retire, an 18-bit gshare predictor
with a 1K-entry BTB, a 20-cycle minimum branch-resolution loop, four
8-entry schedulers, a 160-entry instruction window, 4 simple integer
ALUs + 1 complex + 2 FP + 2 agen, and a 64KB/32KB/1MB cache hierarchy
with 100-cycle memory.

:class:`OptimizerConfig` holds the continuous-optimization knobs that
the paper's sensitivity studies sweep: the number of extra rename
stages (Figure 11), the value-feedback transmission delay (Figure 12),
the intra-bundle dependence depths (Figure 10), and the MBC size.

The baseline machine (optimizer disabled) has two fewer rename stages,
exactly as in Section 4.2: enabling the optimizer adds
``optimizer.opt_stages`` cycles to the front end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace


def canonical_json(data: dict) -> str:
    """The repo-wide canonical JSON form: sorted keys, no whitespace.

    Every content-addressed key and persisted artifact must go through
    this one function so serialized identities can never drift apart.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class _StableKeyMixin:
    """Explicit cross-process identity for frozen config dataclasses.

    ``dataclass`` ``__hash__`` is only stable within one interpreter;
    anything persisted to disk or shipped to a worker process must key
    on an explicit canonical serialization instead.
    """

    def config_dict(self) -> dict:
        """A plain nested dict of every field (JSON-serializable)."""
        return asdict(self)

    def canonical_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace."""
        return canonical_json(self.config_dict())

    def cache_key(self) -> str:
        """A stable content hash of this configuration."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


@dataclass(frozen=True)
class CacheConfig(_StableKeyMixin):
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("cache size must be a multiple of "
                             "assoc * line size")
        num_sets = self.size_bytes // (self.assoc * self.line_bytes)
        if num_sets & (num_sets - 1):
            raise ValueError(f"number of sets must be a power of two, "
                             f"got {num_sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class OptimizerConfig(_StableKeyMixin):
    """Continuous-optimizer parameters (Sections 3 and 6)."""

    #: Master switch: False gives the paper's baseline machine.
    enabled: bool = False
    #: Symbolic CP/RA and RLE/SF transformations (Figure 9 disables
    #: this while keeping value feedback).
    enable_opt: bool = True
    #: RLE/SF via the Memory Bypass Cache; disable to ablate the memory
    #: optimizations while keeping CP/RA (used by the ablation bench).
    enable_rle_sf: bool = True
    #: Value feedback from the execution units (Section 2.2).
    enable_feedback: bool = True
    #: Extra rename pipeline stages the optimizer adds (Figure 11).
    opt_stages: int = 2
    #: Value-feedback transmission delay in cycles (Figure 12).
    vf_delay: int = 1
    #: Memory Bypass Cache capacity in entries (Section 3.2).
    mbc_entries: int = 128
    #: Chained intra-bundle additions allowed (Figure 10: 0 default).
    add_depth: int = 0
    #: Chained intra-bundle MBC queries allowed (Figure 10: 0 default).
    mem_depth: int = 0
    #: Strict expression/value checking against the oracle trace
    #: (Section 4.2).  Leave on; it is how the reproduction proves the
    #: optimizer never fabricates values.
    verify: bool = True


@dataclass(frozen=True)
class MachineConfig(_StableKeyMixin):
    """Full simulated machine configuration (paper Table 2)."""

    # widths
    fetch_width: int = 4
    rename_width: int = 4
    retire_width: int = 6
    # pipeline depths (cycles); chosen so that the minimum branch
    # misprediction resolution loop of the *baseline* machine is 20
    # cycles, per Table 2
    frontend_depth: int = 11  # fetch -> rename-entry
    rename_stages: int = 2
    dispatch_stages: int = 2  # rename-exit -> scheduler entry
    regread_stages: int = 2  # issue -> execute
    redirect_penalty: int = 1  # resolve -> first refetch
    # window
    sched_entries: int = 8  # per scheduler; four schedulers
    rob_size: int = 160
    num_pregs: int = 512  # unified physical register pool
    # functional units
    n_simple_ialu: int = 4
    n_complex_ialu: int = 1
    n_fpalu: int = 2
    n_agen: int = 2
    dcache_ports: int = 2
    # branch prediction
    gshare_bits: int = 18
    btb_entries: int = 1024
    ras_entries: int = 16
    btb_miss_penalty: int = 2
    # memory hierarchy
    il1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, assoc=4, line_bytes=64, latency=1))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, assoc=2, line_bytes=32, latency=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=1024 * 1024, assoc=2, line_bytes=128, latency=10))
    memory_latency: int = 100
    # the paper's contribution
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def effective_rename_stages(self) -> int:
        """Rename depth including the optimizer's extra stages."""
        extra = self.optimizer.opt_stages if self.optimizer.enabled else 0
        return self.rename_stages + extra

    def min_branch_penalty(self) -> int:
        """Minimum cycles from fetch of a mispredicted branch to refetch.

        This is the paper's "20 cycles (min) for BR res" figure for the
        baseline machine; the optimizer adds its extra rename stages.
        """
        return (self.frontend_depth + self.effective_rename_stages
                + self.dispatch_stages + 1  # one cycle in the scheduler
                + self.regread_stages + 1  # branch executes in 1 cycle
                + self.redirect_penalty)

    # ------------------------------------------------------------------
    # named variants used throughout the evaluation
    # ------------------------------------------------------------------

    def with_optimizer(self, **overrides) -> "MachineConfig":
        """This machine with continuous optimization enabled."""
        opt = replace(self.optimizer, enabled=True, **overrides)
        return replace(self, optimizer=opt)

    def without_optimizer(self) -> "MachineConfig":
        """This machine with the optimizer disabled (the baseline)."""
        return replace(self, optimizer=replace(self.optimizer,
                                               enabled=False))

    def fetch_bound(self) -> "MachineConfig":
        """Figure 8's fetch-bound variant: double the scheduler entries."""
        return replace(self, sched_entries=self.sched_entries * 2)

    def execution_bound(self) -> "MachineConfig":
        """Figure 8's execution-bound variant: 8-wide front end."""
        return replace(self, fetch_width=8, rename_width=8)


def default_config() -> MachineConfig:
    """The paper's baseline machine (Table 2), optimizer disabled."""
    return MachineConfig()


def optimized_config(**overrides) -> MachineConfig:
    """The paper's machine with continuous optimization enabled."""
    return MachineConfig().with_optimizer(**overrides)
