"""Unit tests for the functional emulator and trace format."""

import pytest

from repro.functional import (EmulationError, EmulationLimit, run_program)
from repro.isa import (STACK_BASE, TEXT_BASE, assemble)
from repro.isa.program import STACK_BASE as PROGRAM_STACK_BASE


def run(source: str, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestBasicExecution:
    def test_halt_immediately(self):
        result = run(".text\nhalt\n")
        assert result.halted
        assert result.instruction_count == 0

    def test_simple_arithmetic(self):
        result = run(""".text
        ldi r1, 6
        ldi r2, 7
        mul r3, r1, r2
        halt
""")
        assert result.int_regs[3] == 42
        assert result.instruction_count == 3

    def test_zero_register_reads_zero(self):
        result = run(""".text
        add r1, r31, 5
        halt
""")
        assert result.int_regs[1] == 5

    def test_zero_register_writes_ignored(self):
        result = run(""".text
        ldi r31, 99
        add r1, r31, 1
        halt
""")
        assert result.int_regs[1] == 1

    def test_stack_pointer_initialized(self):
        result = run(".text\nmov r1, r30\nhalt\n")
        assert result.int_regs[1] == PROGRAM_STACK_BASE == STACK_BASE

    def test_instruction_budget(self):
        with pytest.raises(EmulationLimit):
            run(".text\nspin: br spin\nhalt\n", max_instructions=100)


class TestControlFlow:
    def test_conditional_loop(self):
        result = run(""".text
        ldi r1, 5
        clr r2
loop:   add r2, r2, r1
        sub r1, r1, 1
        bne r1, loop
        halt
""")
        assert result.int_regs[2] == 15

    def test_not_taken_branch_falls_through(self):
        result = run(""".text
        clr r1
        bne r1, skip
        ldi r2, 1
skip:   halt
""")
        assert result.int_regs[2] == 1

    def test_jsr_links_and_ret_returns(self):
        result = run(""".text
        jsr func
        ldi r2, 10
        halt
func:   ldi r1, 5
        ret
""")
        assert result.int_regs[1] == 5
        assert result.int_regs[2] == 10
        assert result.int_regs[26] == TEXT_BASE + 4

    def test_jmp_indirect(self):
        result = run(""".text
        ldi r1, target
        jmp r1
        ldi r2, 99
target: halt
""")
        assert result.int_regs[2] == 0

    def test_branch_conditions(self):
        result = run(""".text
        ldi r1, -3
        clr r2
        blt r1, neg
        ldi r2, 1
neg:    bge r1, nonneg
        ldi r3, 7
nonneg: halt
""")
        assert result.int_regs[2] == 0  # blt taken
        assert result.int_regs[3] == 7  # bge not taken


class TestMemoryOps:
    def test_store_then_load(self):
        result = run(""".data
buf:    .space 8
.text
        ldi r1, buf
        ldi r2, 1234
        stq r2, 0(r1)
        ldq r3, 0(r1)
        halt
""")
        assert result.int_regs[3] == 1234

    def test_data_segment_initialization(self):
        result = run(""".data
vals:   .quad 11, 22
.text
        ldi r1, vals
        ldq r2, 0(r1)
        ldq r3, 8(r1)
        halt
""")
        assert result.int_regs[2] == 11
        assert result.int_regs[3] == 22

    def test_byte_sign_extension(self):
        result = run(""".data
b:      .byte 0xff
.text
        ldi r1, b
        ldb r2, 0(r1)
        ldbu r3, 0(r1)
        halt
""")
        assert result.int_regs[2] == -1
        assert result.int_regs[3] == 255

    def test_fp_load_store(self):
        result = run(""".data
d:      .double 2.5
out:    .space 8
.text
        ldi r1, d
        ldf f1, 0(r1)
        fadd f2, f1, f1
        ldi r2, out
        stf f2, 0(r2)
        halt
""")
        assert result.fp_regs[2] == 5.0
        assert result.memory.load_double(0x100008) == 5.0  # 'out' label

    def test_negative_address_raises(self):
        with pytest.raises(EmulationError):
            run(""".text
        ldi r1, -100
        ldq r2, 0(r1)
        halt
""")


class TestTraceEntries:
    def test_trace_records_pc_sequence(self):
        result = run(".text\nnop\nnop\nhalt\n")
        assert [e.pc for e in result.trace] == [TEXT_BASE, TEXT_BASE + 4]
        assert [e.seq for e in result.trace] == [0, 1]

    def test_branch_entry_fields(self):
        result = run(""".text
        ldi r1, 1
        bne r1, target
        nop
target: halt
""")
        branch = result.trace[1]
        assert branch.taken is True
        assert branch.next_pc == TEXT_BASE + 12
        assert branch.is_control

    def test_load_entry_has_address_and_value(self):
        result = run(""".data
v:      .quad 77
.text
        ldi r1, v
        ldq r2, 0(r1)
        halt
""")
        load = result.trace[1]
        assert load.is_load
        assert load.addr == 0x100000
        assert load.result == 77

    def test_store_entry_value(self):
        result = run(""".data
buf:    .space 8
.text
        ldi r1, buf
        ldi r2, 5
        stq r2, 0(r1)
        halt
""")
        store = result.trace[2]
        assert store.is_store
        assert store.store_value == 5

    def test_store_value_on_non_store_raises(self):
        result = run(".text\nnop\nhalt\n")
        with pytest.raises(ValueError):
            _ = result.trace[0].store_value

    def test_next_pc_chains(self):
        result = run(""".text
        ldi r1, 3
loop:   sub r1, r1, 1
        bne r1, loop
        halt
""")
        for earlier, later in zip(result.trace, result.trace[1:]):
            assert earlier.next_pc == later.pc
