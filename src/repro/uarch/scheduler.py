"""Issue schedulers and functional-unit pools.

The paper's machine has four 8-entry schedulers (integer, complex
integer, floating point, memory) feeding 4 simple integer ALUs, 1
complex integer ALU, 2 FP ALUs, and 2 address-generation units
(Table 2).  Conditional branches execute on the simple integer ALUs.

Each :class:`IssueQueue` holds dispatched instructions until their
physical-register (and memory-dependence) operands are ready, then
offers them oldest-first to its functional-unit pool.
"""

from __future__ import annotations

from ..isa.opcodes import OpClass
from .dyninstr import DynInstr

#: Scheduler bins; branches share the simple-integer scheduler and ALUs.
SCHED_INT = "int"
SCHED_COMPLEX = "complex"
SCHED_FP = "fp"
SCHED_MEM = "mem"

_CLASS_TO_SCHED = {
    OpClass.INT_SIMPLE: SCHED_INT,
    OpClass.BRANCH: SCHED_INT,
    OpClass.INT_COMPLEX: SCHED_COMPLEX,
    OpClass.FP: SCHED_FP,
    OpClass.MEM: SCHED_MEM,
    OpClass.MISC: SCHED_INT,
}


def scheduler_for(op_class: OpClass) -> str:
    """Which scheduler an operation class dispatches into."""
    return _CLASS_TO_SCHED[op_class]


class IssueQueue:
    """One out-of-order issue queue with a fixed entry count."""

    def __init__(self, name: str, entries: int, issue_width: int):
        self.name = name
        self.capacity = entries
        self.issue_width = issue_width
        self._entries: list[DynInstr] = []
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        return len(self._entries) < self.capacity

    def insert(self, di: DynInstr) -> None:
        if not self.has_space:
            raise RuntimeError(f"scheduler {self.name} overflow")
        self._entries.append(di)

    def select(self) -> list[DynInstr]:
        """Remove and return up to ``issue_width`` ready entries.

        Selection is oldest-first (by sequence number), which the
        in-order insertion already guarantees for the entry list.
        """
        selected: list[DynInstr] = []
        remaining: list[DynInstr] = []
        for di in self._entries:
            if di.deps_remaining == 0 and len(selected) < self.issue_width:
                selected.append(di)
            else:
                remaining.append(di)
        self._entries = remaining
        return selected

    def occupancy(self) -> int:
        return len(self._entries)


class SchedulerBank:
    """The four issue queues plus per-class issue-width limits."""

    def __init__(self, entries: int, n_simple: int, n_complex: int,
                 n_fp: int, n_agen: int):
        self.queues: dict[str, IssueQueue] = {
            SCHED_INT: IssueQueue(SCHED_INT, entries, n_simple),
            SCHED_COMPLEX: IssueQueue(SCHED_COMPLEX, entries, n_complex),
            SCHED_FP: IssueQueue(SCHED_FP, entries, n_fp),
            SCHED_MEM: IssueQueue(SCHED_MEM, entries, n_agen),
        }

    def queue_for(self, di: DynInstr) -> IssueQueue:
        return self.queues[scheduler_for(di.sched_class)]

    def select_all(self) -> list[DynInstr]:
        """One cycle of select across all queues."""
        issued: list[DynInstr] = []
        for queue in self.queues.values():
            issued.extend(queue.select())
        return issued

    def total_occupancy(self) -> int:
        return sum(len(queue) for queue in self.queues.values())
